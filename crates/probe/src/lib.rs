//! # wino-probe — observability for the Winograd pipeline
//!
//! Hierarchical spans with RAII guards, named atomic counters, and a
//! diagnostics channel, all gated behind one relaxed-atomic mode check
//! so the disabled path is a branch on a static and nothing else: no
//! allocation, no locking, no timestamp read.
//!
//! The paper's results section lives and dies on per-phase attribution
//! (Figure 6's optimized-vs-non-optimized kernel breakdown, Figure 9's
//! per-candidate autotuner timings), so every pipeline stage — filter
//! transform, input transform, batched SGEMM, output transform, tile
//! scatter/gather, and the GEMM panel loops — opens a [`span`], and
//! the work-stealing runtime exposes per-worker counters (tasks,
//! steals, parks) through [`counter`].
//!
//! ## Span model
//!
//! [`span`] returns a [`SpanGuard`]; the span covers guard creation to
//! drop. Guards nest lexically, and because each thread's clock reads
//! are monotonic and a child guard always drops before its parent,
//! same-thread spans are always properly bracketed. Events land in
//! per-thread buffers (one uncontended mutex each); exporters drain
//! every buffer and merge by timestamp.
//!
//! ## Control
//!
//! `WINO_TRACE=off|summary|json[:path]` parsed by [`init_from_env`]
//! (binaries), or [`set_mode`] directly (tests). Exported either as a
//! chrome://tracing-compatible JSON trace or a plain-text summary
//! table — see the [`export`] module.
//!
//! ## Fault injection
//!
//! The [`fault`] module is the deterministic `WINO_FAULT` injection
//! facility backing `wino-guard`'s recovery-path tests: hooks at four
//! sites (transform output, GEMM kernel, tuner candidate, cache
//! deserialization), each one relaxed atomic load when disarmed.

#![warn(missing_docs)]

pub mod export;
pub mod fault;
pub mod flight;
pub mod hist;

pub use export::{collect, ChromeTrace, Summary, SummaryRow, TraceData};
pub use hist::{hist_values, histogram, Histogram, HistogramHandle, HistogramSnapshot};

use parking_lot::{Mutex, RwLock};
use std::cell::{Cell, OnceCell};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// What the probe layer records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Nothing — every probe call is one relaxed atomic load.
    Off,
    /// Record spans/counters; exporters render the text summary table.
    Summary,
    /// Record spans/counters; exporters write a chrome://tracing JSON
    /// trace (and the summary is still available).
    Json,
}

/// The single static gate every hot-path probe call branches on.
/// 0 = off, 1 = summary, 2 = json.
static MODE: AtomicU8 = AtomicU8::new(0);

/// `true` when spans and counters are being recorded. The disabled
/// fast path of every probe entry point reduces to this one relaxed
/// load plus a branch.
#[inline(always)]
pub fn enabled() -> bool {
    MODE.load(Ordering::Relaxed) != 0
}

/// Second gate: metrics-only recording, armed by `wino-telemetry`
/// when `WINO_METRICS` is active. Distinct from [`MODE`] so a serving
/// process can collect counters/gauges/histograms indefinitely
/// without spans accumulating in the (unbounded) thread buffers.
static TELEMETRY: AtomicBool = AtomicBool::new(false);

/// `true` when metrics-only recording is armed (see [`set_telemetry`]).
#[inline(always)]
pub fn telemetry_enabled() -> bool {
    TELEMETRY.load(Ordering::Relaxed)
}

/// Arms or disarms metrics-only recording: counters, gauges, and
/// histograms record, but spans still only land in thread buffers
/// under an active [`Mode`]. Normally driven by
/// `wino-telemetry::init_from_env`.
pub fn set_telemetry(on: bool) {
    let _ = epoch();
    TELEMETRY.store(on, Ordering::Relaxed);
}

/// `true` when scalar stats (counters, gauges, histograms) record:
/// tracing on *or* telemetry on. Still two relaxed loads and a branch
/// on the all-off path.
#[inline(always)]
pub fn stats_enabled() -> bool {
    enabled() || telemetry_enabled()
}

/// Serializes [`reset`] against in-flight mutations of the resettable
/// state (span buffers, gauge pairs, diagnostics). Mutators take the
/// read side — shared, uncontended among themselves — and `reset`
/// takes the write side, so a reset never interleaves halfway through
/// a multi-word update. Counter and histogram increments stay plain
/// relaxed atomics to keep those hot paths lock-free; a reset racing
/// a counter add keeps or drops the whole increment (single word),
/// while exact histogram assertions require recording threads to be
/// quiesced first — the same contract `take_events` already has.
static STATE_LOCK: RwLock<()> = RwLock::new(());

/// Current recording mode.
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        0 => Mode::Off,
        1 => Mode::Summary,
        _ => Mode::Json,
    }
}

/// Switches the recording mode (primarily for tests; binaries use
/// [`init_from_env`]). Spans already open keep recording; events are
/// never recorded retroactively.
pub fn set_mode(mode: Mode) {
    // Pin the epoch before events can race to initialize it.
    let _ = epoch();
    let v = match mode {
        Mode::Off => 0,
        Mode::Summary => 1,
        Mode::Json => 2,
    };
    MODE.store(v, Ordering::Relaxed);
}

/// Parses `WINO_TRACE` (`off|summary|json[:path]`), applies the mode,
/// and remembers an explicit `json:path` target for
/// [`trace_path`]. Unknown values warn through [`diag`] and leave
/// tracing off.
pub fn init_from_env() -> Mode {
    let raw = std::env::var("WINO_TRACE").unwrap_or_default();
    let value = raw.trim();
    let mode = if value.is_empty() || value == "off" || value == "0" {
        Mode::Off
    } else if value == "summary" {
        Mode::Summary
    } else if value == "json" {
        set_trace_path(None);
        Mode::Json
    } else if let Some(path) = value.strip_prefix("json:") {
        set_trace_path(Some(path.to_string()));
        Mode::Json
    } else {
        diag(format!(
            "ignoring unknown WINO_TRACE value {value:?} (expected off|summary|json[:path])"
        ));
        Mode::Off
    };
    set_mode(mode);
    mode
}

fn trace_path_slot() -> &'static Mutex<Option<String>> {
    static PATH: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    PATH.get_or_init(|| Mutex::new(None))
}

/// Explicit trace-output path from `WINO_TRACE=json:path`, if any.
pub fn trace_path() -> Option<String> {
    trace_path_slot().lock().clone()
}

/// Overrides the trace-output path.
pub fn set_trace_path(path: Option<String>) {
    *trace_path_slot().lock() = path;
}

/// The process-wide time origin all span timestamps are relative to.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

pub(crate) fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// One finished span, as stored in the thread buffers and handed to
/// exporters.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Span name (a phase like `conv.input_transform`).
    pub name: &'static str,
    /// Small dense id of the recording thread (assigned on that
    /// thread's first event, stable for the thread's lifetime).
    pub tid: usize,
    /// Start, nanoseconds since the probe epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Lexical nesting depth on the recording thread (0 = top level).
    pub depth: usize,
    /// Free-form key/value annotations (chrome trace `args`).
    pub args: Vec<(&'static str, String)>,
}

impl SpanEvent {
    /// End timestamp, nanoseconds since the probe epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// Per-thread event buffer. The owning thread appends through an
/// uncontended mutex; exporters lock each buffer only while draining.
struct ThreadBuf {
    tid: usize,
    name: String,
    events: Mutex<Vec<SpanEvent>>,
    ring: Mutex<flight::Ring>,
}

struct Registry {
    buffers: Mutex<Vec<Arc<ThreadBuf>>>,
    counters: Mutex<Vec<(&'static str, &'static AtomicU64)>>,
    gauges: Mutex<Vec<(&'static str, &'static GaugeCell)>>,
    hists: Mutex<Vec<(&'static str, &'static hist::HistCell)>>,
    diagnostics: Mutex<Vec<String>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        buffers: Mutex::new(Vec::new()),
        counters: Mutex::new(Vec::new()),
        gauges: Mutex::new(Vec::new()),
        hists: Mutex::new(Vec::new()),
        diagnostics: Mutex::new(Vec::new()),
    })
}

thread_local! {
    static LOCAL_BUF: OnceCell<Arc<ThreadBuf>> = const { OnceCell::new() };
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

pub(crate) fn local_buf<R>(f: impl FnOnce(&ThreadBuf) -> R) -> R {
    LOCAL_BUF.with(|cell| {
        let buf = cell.get_or_init(|| {
            static NEXT_TID: AtomicUsize = AtomicUsize::new(0);
            let buf = Arc::new(ThreadBuf {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                name: std::thread::current()
                    .name()
                    .unwrap_or("unnamed")
                    .to_string(),
                events: Mutex::new(Vec::new()),
                ring: Mutex::new(flight::Ring::new()),
            });
            registry().buffers.lock().push(Arc::clone(&buf));
            buf
        });
        f(buf)
    })
}

/// RAII span guard: the span runs from creation to drop. Inactive
/// guards (probe disabled at creation) are a unit struct in a trench
/// coat — drop does nothing.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: &'static str,
    start_ns: u64,
    depth: usize,
    /// Whether the span lands in the thread buffer on drop (tracing
    /// was on at creation). Spans opened with only the flight
    /// recorder armed time themselves but feed the bounded ring only.
    record_buf: bool,
    args: Vec<(&'static str, String)>,
}

/// Opens a span named `name` on the current thread. When both tracing
/// and the flight recorder are off this is two relaxed loads, a
/// branch, and a `None` — nothing else.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() && !flight::enabled() {
        return SpanGuard { active: None };
    }
    span_slow(name)
}

#[cold]
fn span_slow(name: &'static str) -> SpanGuard {
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            start_ns: now_ns(),
            depth,
            record_buf: enabled(),
            args: Vec::new(),
        }),
    }
}

impl SpanGuard {
    /// `true` when this guard is recording (probe was enabled at
    /// creation).
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }

    /// Attaches a lazily-computed annotation; `value` is only invoked
    /// on active guards, so callers pay nothing when tracing is off.
    pub fn arg(&mut self, key: &'static str, value: impl FnOnce() -> String) {
        if let Some(active) = &mut self.active {
            active.args.push((key, value()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let end_ns = now_ns();
        let dur_ns = end_ns.saturating_sub(active.start_ns);
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        flight::note_span(active.name, end_ns, dur_ns);
        if !active.record_buf {
            return;
        }
        let _state = STATE_LOCK.read();
        local_buf(|buf| {
            buf.events.lock().push(SpanEvent {
                name: active.name,
                tid: buf.tid,
                start_ns: active.start_ns,
                dur_ns,
                depth: active.depth,
                args: active.args,
            });
        });
    }
}

/// Interns `name`, returning its process-wide counter cell. Equal
/// names alias the same cell, so interning is idempotent and the
/// registry stays bounded even when callers re-derive names.
fn intern_counter(name: &'static str) -> &'static AtomicU64 {
    let mut counters = registry().counters.lock();
    if let Some((_, cell)) = counters.iter().find(|(n, _)| *n == name) {
        return cell;
    }
    let cell: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
    counters.push((name, cell));
    cell
}

/// A named counter usable from `static` context. The name is resolved
/// to its interned cell on first use; afterwards [`Counter::add`] is a
/// relaxed load, a branch, and a relaxed `fetch_add`.
pub struct Counter {
    name: &'static str,
    cell: OnceLock<&'static AtomicU64>,
}

impl Counter {
    /// A counter handle for `name` (usable in a `static`).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Adds `n` when tracing or telemetry is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !stats_enabled() {
            return;
        }
        self.slot().fetch_add(n, Ordering::Relaxed);
        flight::note_count(self.name, n);
    }

    /// Current value (0 until first touched).
    pub fn get(&self) -> u64 {
        self.slot().load(Ordering::Relaxed)
    }

    fn slot(&self) -> &'static AtomicU64 {
        self.cell.get_or_init(|| intern_counter(self.name))
    }
}

/// A counter handle for a runtime-constructed name (e.g. per-worker
/// `runtime.worker3.steals`). The name is leaked once per *distinct*
/// string — interning dedupes repeats — so handles are cheap to clone
/// and [`CounterHandle::add`] matches [`Counter::add`]'s fast path.
#[derive(Clone, Copy)]
pub struct CounterHandle {
    name: &'static str,
    cell: &'static AtomicU64,
}

impl CounterHandle {
    /// Adds `n` when tracing or telemetry is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !stats_enabled() {
            return;
        }
        self.cell.fetch_add(n, Ordering::Relaxed);
        flight::note_count(self.name, n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Interns a dynamically-built counter name and returns its handle.
pub fn counter(name: &str) -> CounterHandle {
    let mut counters = registry().counters.lock();
    if let Some((n, cell)) = counters.iter().find(|(n, _)| *n == name) {
        return CounterHandle { name: n, cell };
    }
    let name: &'static str = Box::leak(name.to_string().into_boxed_str());
    let cell: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
    counters.push((name, cell));
    CounterHandle { name, cell }
}

/// Backing storage of one gauge: the current level plus the maximum
/// level ever set (both relaxed — gauges are observability, not
/// synchronization).
struct GaugeCell {
    current: AtomicI64,
    peak: AtomicI64,
}

impl GaugeCell {
    const fn new() -> Self {
        GaugeCell {
            current: AtomicI64::new(0),
            peak: AtomicI64::new(0),
        }
    }
}

/// A named level gauge (e.g. a queue depth) usable from `static`
/// context. Unlike a [`Counter`], a gauge tracks a *current* value
/// that can go up and down, and remembers its high-water mark.
/// [`Gauge::set`] on the disabled probe is the usual relaxed load and
/// branch.
pub struct Gauge {
    name: &'static str,
    cell: OnceLock<&'static GaugeCell>,
}

impl Gauge {
    /// A gauge handle for `name` (usable in a `static`).
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Sets the current level (and raises the peak) when tracing or
    /// telemetry is enabled.
    #[inline]
    pub fn set(&self, value: i64) {
        if !stats_enabled() {
            return;
        }
        let cell = self.slot();
        // Under the shared state lock (so reset can't interleave the
        // pair), peak first: lock-free readers then always observe
        // current <= peak.
        let _state = STATE_LOCK.read();
        cell.peak.fetch_max(value, Ordering::Relaxed);
        cell.current.store(value, Ordering::Relaxed);
    }

    /// Current level (0 until first set).
    pub fn get(&self) -> i64 {
        self.slot().current.load(Ordering::Relaxed)
    }

    /// High-water mark of every [`Gauge::set`] so far.
    pub fn peak(&self) -> i64 {
        self.slot().peak.load(Ordering::Relaxed)
    }

    fn slot(&self) -> &'static GaugeCell {
        self.cell.get_or_init(|| intern_gauge(self.name))
    }
}

/// Interns `name`, returning its process-wide gauge cell (same
/// idempotent-aliasing contract as [`Counter`] interning).
fn intern_gauge(name: &'static str) -> &'static GaugeCell {
    let mut gauges = registry().gauges.lock();
    if let Some((_, cell)) = gauges.iter().find(|(n, _)| *n == name) {
        return cell;
    }
    let cell: &'static GaugeCell = Box::leak(Box::new(GaugeCell::new()));
    gauges.push((name, cell));
    cell
}

/// A gauge handle for a runtime-constructed name (e.g. a per-layer
/// `serve.breaker_state.<layer>`). Mirrors [`CounterHandle`]: the name
/// is leaked once per distinct string, handles are `Copy`, and
/// [`GaugeHandle::set`] matches [`Gauge::set`]'s fast path.
#[derive(Clone, Copy)]
pub struct GaugeHandle {
    cell: &'static GaugeCell,
}

impl GaugeHandle {
    /// Sets the current level (and raises the peak) when tracing or
    /// telemetry is enabled.
    #[inline]
    pub fn set(&self, value: i64) {
        if !stats_enabled() {
            return;
        }
        // Same ordering discipline as [`Gauge::set`]: peak first,
        // under the shared state lock so reset can't interleave.
        let _state = STATE_LOCK.read();
        self.cell.peak.fetch_max(value, Ordering::Relaxed);
        self.cell.current.store(value, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.cell.current.load(Ordering::Relaxed)
    }

    /// High-water mark so far.
    pub fn peak(&self) -> i64 {
        self.cell.peak.load(Ordering::Relaxed)
    }
}

/// Interns a dynamically-built gauge name and returns its handle.
pub fn gauge(name: &str) -> GaugeHandle {
    {
        let gauges = registry().gauges.lock();
        if let Some((_, cell)) = gauges.iter().find(|(n, _)| *n == name) {
            return GaugeHandle { cell };
        }
    }
    let name: &'static str = Box::leak(name.to_string().into_boxed_str());
    GaugeHandle {
        cell: intern_gauge(name),
    }
}

/// Snapshot of every registered gauge as `(name, current, peak)`,
/// sorted by name.
pub fn gauge_values() -> Vec<(String, i64, i64)> {
    let mut values: Vec<(String, i64, i64)> = registry()
        .gauges
        .lock()
        .iter()
        .map(|(name, cell)| {
            (
                name.to_string(),
                cell.current.load(Ordering::Relaxed),
                cell.peak.load(Ordering::Relaxed),
            )
        })
        .collect();
    values.sort();
    values
}

/// Snapshot of every registered counter, sorted by name.
pub fn counter_values() -> Vec<(String, u64)> {
    let mut values: Vec<(String, u64)> = registry()
        .counters
        .lock()
        .iter()
        .map(|(name, cell)| (name.to_string(), cell.load(Ordering::Relaxed)))
        .collect();
    values.sort();
    values
}

/// One-line diagnostics channel: always emits to stderr (it carries
/// rare warnings like a malformed `WINO_THREADS`, not per-event
/// traffic) and is recorded for tests via [`take_diagnostics`].
pub fn diag(msg: impl Into<String>) {
    let msg = msg.into();
    eprintln!("[wino-probe] {msg}");
    flight::note_diag(&msg);
    let _state = STATE_LOCK.read();
    registry().diagnostics.lock().push(msg);
}

/// Drains the recorded diagnostics (test hook).
pub fn take_diagnostics() -> Vec<String> {
    std::mem::take(&mut *registry().diagnostics.lock())
}

/// Drains every thread's finished spans, merged and sorted by start
/// time (ties broken longest-first so parents precede children).
pub fn take_events() -> Vec<SpanEvent> {
    let buffers: Vec<Arc<ThreadBuf>> = registry().buffers.lock().clone();
    let mut events: Vec<SpanEvent> = Vec::new();
    for buf in buffers {
        events.append(&mut buf.events.lock());
    }
    events.sort_by(|a, b| {
        a.start_ns
            .cmp(&b.start_ns)
            .then(b.dur_ns.cmp(&a.dur_ns))
            .then(a.tid.cmp(&b.tid))
    });
    events
}

/// Thread-name metadata for the chrome exporter: `(tid, name)` pairs.
pub(crate) fn thread_names() -> Vec<(usize, String)> {
    registry()
        .buffers
        .lock()
        .iter()
        .map(|b| (b.tid, b.name.clone()))
        .collect()
}

/// Clears all recorded events, zeroes every counter, gauge, and
/// histogram, empties the flight rings, and drops stored diagnostics.
/// The mode is left untouched. Test isolation hook.
///
/// Runs under the exclusive side of the state lock, so threads racing
/// through the locked mutation paths (span buffer pushes, gauge
/// set pairs, diag) observe either the pre-reset or post-reset state,
/// never a half-applied one. Lock-free counter/histogram increments
/// in flight may individually land on either side of the reset — see
/// [`STATE_LOCK`]'s contract.
pub fn reset() {
    let _state = STATE_LOCK.write();
    for buf in registry().buffers.lock().iter() {
        buf.events.lock().clear();
    }
    for (_, cell) in registry().counters.lock().iter() {
        cell.store(0, Ordering::Relaxed);
    }
    for (_, cell) in registry().gauges.lock().iter() {
        // current before peak, mirroring Gauge::set's peak-first
        // order: lock-free readers never observe current > peak.
        cell.current.store(0, Ordering::Relaxed);
        cell.peak.store(0, Ordering::Relaxed);
    }
    for (_, cell) in registry().hists.lock().iter() {
        cell.reset();
    }
    flight::clear_all();
    registry().diagnostics.lock().clear();
}

/// Marks the current position of this thread's span buffer; pair with
/// [`local_spans_since`] to attribute only the spans this thread
/// recorded after the mark (e.g. one conv call's phase breakdown).
/// Returns 0 when tracing is off.
pub fn local_event_mark() -> usize {
    if !enabled() {
        return 0;
    }
    local_buf(|buf| buf.events.lock().len())
}

/// Per-name summed durations (ns) of the spans this thread recorded
/// since `mark` (from [`local_event_mark`]). Reads only the calling
/// thread's buffer — no cross-thread attribution leaks in — and does
/// not drain it. Empty when tracing is off; a mark taken before a
/// concurrent [`reset`] simply yields fewer (or no) spans.
pub fn local_spans_since(mark: usize) -> Vec<(&'static str, u64)> {
    if !enabled() {
        return Vec::new();
    }
    local_buf(|buf| {
        let events = buf.events.lock();
        let mut out: Vec<(&'static str, u64)> = Vec::new();
        for e in events.iter().skip(mark) {
            match out.iter_mut().find(|(n, _)| *n == e.name) {
                Some((_, d)) => *d += e.dur_ns,
                None => out.push((e.name, e.dur_ns)),
            }
        }
        out
    })
}

/// Serializes unit tests that touch process-global probe state (the
/// mode, counters, and the diagnostics buffer) — shared with the
/// fault-module tests, which drain diagnostics too.
#[cfg(test)]
pub(crate) static TEST_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    use crate::TEST_LOCK as LOCK;

    #[test]
    fn disabled_records_nothing() {
        let _guard = LOCK.lock();
        set_mode(Mode::Off);
        reset();
        static C: Counter = Counter::new("test.disabled");
        {
            let mut s = span("test.disabled_span");
            s.arg("should", || unreachable!("args must not evaluate when off"));
            assert!(!s.is_active());
            C.add(5);
        }
        assert!(take_events().is_empty());
        assert_eq!(C.get(), 0);
    }

    #[test]
    fn gauges_track_level_and_peak() {
        let _guard = LOCK.lock();
        set_mode(Mode::Off);
        reset();
        static G: Gauge = Gauge::new("test.gauge");
        G.set(9);
        assert_eq!(G.get(), 0, "disabled probe ignores gauge sets");
        set_mode(Mode::Summary);
        G.set(3);
        G.set(7);
        G.set(2);
        assert_eq!(G.get(), 2);
        assert_eq!(G.peak(), 7);
        let values = gauge_values();
        let row = values.iter().find(|(n, _, _)| n == "test.gauge").unwrap();
        assert_eq!((row.1, row.2), (2, 7));
        set_mode(Mode::Off);
        reset();
        assert_eq!(G.get(), 0);
        assert_eq!(G.peak(), 0, "reset clears the high-water mark");
    }

    #[test]
    fn spans_nest_and_record() {
        let _guard = LOCK.lock();
        set_mode(Mode::Summary);
        reset();
        {
            let _outer = span("test.outer");
            let mut inner = span("test.inner");
            inner.arg("k", || "v".into());
        }
        set_mode(Mode::Off);
        let events = take_events();
        assert_eq!(events.len(), 2);
        let outer = events.iter().find(|e| e.name == "test.outer").unwrap();
        let inner = events.iter().find(|e| e.name == "test.inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(outer.start_ns <= inner.start_ns);
        assert!(inner.end_ns() <= outer.end_ns());
        assert_eq!(inner.args, vec![("k", "v".to_string())]);
    }

    #[test]
    fn counters_intern_by_name() {
        let _guard = LOCK.lock();
        set_mode(Mode::Summary);
        reset();
        let a = counter("test.intern");
        let b = counter("test.intern");
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        static S: Counter = Counter::new("test.intern");
        S.add(1);
        assert_eq!(b.get(), 6);
        set_mode(Mode::Off);
    }

    #[test]
    fn gauges_intern_by_name() {
        let _guard = LOCK.lock();
        set_mode(Mode::Summary);
        reset();
        let a = gauge("test.gauge_intern");
        let b = gauge("test.gauge_intern");
        a.set(7);
        assert_eq!(b.get(), 7);
        b.set(3);
        assert_eq!(a.get(), 3);
        assert_eq!(a.peak(), 7);
        // Dynamic handles alias the static gauge of the same name.
        static G: Gauge = Gauge::new("test.gauge_intern");
        G.set(9);
        assert_eq!(a.get(), 9);
        assert_eq!(
            gauge_values()
                .iter()
                .filter(|(n, _, _)| n == "test.gauge_intern")
                .count(),
            1,
            "interning must not duplicate the registry entry"
        );
        set_mode(Mode::Off);
    }

    #[test]
    fn env_parsing() {
        let _guard = LOCK.lock();
        // No env manipulation (process-global); exercise the pieces.
        set_trace_path(Some("x.json".into()));
        assert_eq!(trace_path().as_deref(), Some("x.json"));
        set_trace_path(None);
        assert_eq!(trace_path(), None);
        set_mode(Mode::Off);
    }

    #[test]
    fn diagnostics_are_recorded() {
        let _guard = LOCK.lock();
        reset();
        diag("something odd");
        let msgs = take_diagnostics();
        assert_eq!(msgs, vec!["something odd".to_string()]);
        assert!(take_diagnostics().is_empty());
    }
}
