//! A small work-stealing thread pool powering the parallel Winograd
//! engines.
//!
//! The pool follows the classic crossbeam layout: one global
//! [`Injector`] queue for submitted work plus one worker-local deque
//! per thread whose [`Stealer`] side every other worker polls. Idle
//! workers park on a condvar; pushing work wakes them.
//!
//! Determinism contract: [`Runtime::parallel_for`] and
//! [`Runtime::parallel_for_chunks`] split an index range into
//! fixed-boundary chunks that tasks claim with an atomic counter.
//! Which thread runs a chunk is racy, but every index is executed
//! exactly once and chunk boundaries do not depend on the schedule, so
//! any kernel whose tasks write disjoint outputs (and keep the
//! per-element accumulation order internal to one task) produces
//! bit-identical results on 1 or N threads.
//!
//! Nested calls never deadlock: a `parallel_for` issued from inside a
//! worker runs serially inline, so pool threads never block on a
//! latch. The thread count comes from `WINO_THREADS` when set, else
//! `std::thread::available_parallelism`; [`Runtime::serial`] is the
//! zero-thread fallback that runs everything inline.
//!
//! Observability: each worker maintains `wino-probe` counters
//! `runtime.worker<i>.{tasks,steals,parks}` (tasks executed,
//! successful steals from peer deques, condvar parks). When the probe
//! is off every counter update is a single relaxed-load branch.
//!
//! # Panic contract
//!
//! A panic in a `parallel_for`/`parallel_for_chunks` body or a scoped
//! task never unwinds through a worker thread (which would abort the
//! pool) and never deadlocks a latch. The guarantees, in order:
//!
//! 1. **Containment** — every body invocation runs under
//!    `catch_unwind`; workers survive and return to their queues.
//! 2. **Drain-then-report** — after a body panics, the *remaining
//!    chunks still execute*. The range is always fully claimed, so
//!    sibling chunks' writes (e.g. through a [`DisjointSlice`]) are
//!    complete and their ownership claims undisturbed; only the
//!    panicking chunk's own writes may be partial.
//! 3. **First payload wins** — the submitting caller re-raises via
//!    `resume_unwind` with the payload of the first panic observed
//!    (first to store it, under racy chunk scheduling); later panics
//!    in the same call are recorded only as a `runtime.body_panics`
//!    probe count. The original message therefore survives to the
//!    caller — `wino-guard` depends on this to classify injected
//!    faults — rather than being replaced by a generic string.
//! 4. **Reusability** — the pool remains fully operational after a
//!    caught panic: latches opened, no poisoned state, subsequent
//!    `parallel_for` calls run normally.
//!
//! `Runtime::scope` follows the same rules; when both the scope
//! closure and a spawned task panic, the spawned task's payload is
//! re-raised (it is the root cause; the closure's unwind is usually
//! the latch wait being abandoned).

use crossbeam::deque::{Injector, Stealer, Worker};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::cell::Cell;
use std::marker::PhantomData;
use std::mem;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// Body panics caught by the pool (all of them, including the ones
/// whose payload was re-raised to the caller).
static BODY_PANICS: wino_probe::Counter = wino_probe::Counter::new("runtime.body_panics");

/// First-panic-wins payload slot shared by a `parallel_for` call or a
/// scope: the first panicking task stores its payload, later ones
/// only count.
struct PanicSlot {
    payload: Mutex<Option<Box<dyn Any + Send>>>,
}

impl PanicSlot {
    fn new() -> Self {
        PanicSlot {
            payload: Mutex::new(None),
        }
    }

    fn record(&self, payload: Box<dyn Any + Send>) {
        BODY_PANICS.add(1);
        let mut slot = self.payload.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn take(&self) -> Option<Box<dyn Any + Send>> {
        self.payload.lock().take()
    }
}

/// Target number of chunks per execution lane; more than one so a slow
/// lane sheds work to fast ones (self-balancing), few enough that the
/// claim counter stays cold.
const CHUNKS_PER_LANE: usize = 4;

thread_local! {
    /// Set on pool threads; nested parallel calls detect it and run
    /// inline instead of blocking a worker on a latch.
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// One unit of queued work.
enum Task {
    /// A share of a borrowed `parallel_for` job (pointer valid until
    /// the job's latch opens — the submitting call blocks on it).
    For(ForTask),
    /// A boxed closure spawned by [`Scope::spawn`].
    Boxed(Box<dyn FnOnce() + Send + 'static>),
}

struct ForTask {
    job: *const (),
    // SAFETY: `run` may only be called with this task's `job` pointer
    // while the ForJob behind it is alive; the submitting call blocks
    // on the job latch until every task has run, guaranteeing that.
    run: unsafe fn(*const ()),
}

// SAFETY: the pointer references a `ForJob` that outlives the task
// (the submitting thread blocks until every task has finished), and
// `ForJob` only holds `Sync` state.
unsafe impl Send for ForTask {}

/// Count-down latch on the shim mutex/condvar pair.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
        }
    }

    fn add(&self, n: usize) {
        *self.remaining.lock() += n;
    }

    fn count_down(&self) {
        let mut remaining = self.remaining.lock();
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock();
        while *remaining > 0 {
            self.done.wait(&mut remaining);
        }
    }
}

struct PoolState {
    shutdown: bool,
}

struct Shared {
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    state: Mutex<PoolState>,
    wakeup: Condvar,
    /// Total execution lanes: workers plus the submitting caller.
    threads: usize,
}

impl Shared {
    /// Queues a task and wakes parked workers. Notifying under the
    /// state lock pairs with the re-check workers do before parking,
    /// so no wakeup is lost.
    fn submit(&self, task: Task) {
        self.injector.push(task);
        let _state = self.state.lock();
        self.wakeup.notify_all();
    }

    fn find_task(&self, local: &Worker<Task>, index: usize, stats: &WorkerStats) -> Option<Task> {
        if let Some(task) = local.pop() {
            return Some(task);
        }
        loop {
            match self.injector.steal() {
                crossbeam::deque::Steal::Success(task) => return Some(task),
                crossbeam::deque::Steal::Empty => break,
                crossbeam::deque::Steal::Retry => continue,
            }
        }
        for (i, stealer) in self.stealers.iter().enumerate() {
            if i == index {
                continue;
            }
            if let Some(task) = stealer.steal().success() {
                stats.steals.add(1);
                return Some(task);
            }
        }
        None
    }
}

/// Per-worker probe counters. Handles are interned once at worker
/// startup; each `add` is wino-probe's disabled-path branch when
/// tracing is off.
struct WorkerStats {
    tasks: wino_probe::CounterHandle,
    steals: wino_probe::CounterHandle,
    parks: wino_probe::CounterHandle,
}

impl WorkerStats {
    fn new(index: usize) -> Self {
        WorkerStats {
            tasks: wino_probe::counter(&format!("runtime.worker{index}.tasks")),
            steals: wino_probe::counter(&format!("runtime.worker{index}.steals")),
            parks: wino_probe::counter(&format!("runtime.worker{index}.parks")),
        }
    }
}

fn run_task(task: Task) {
    match task {
        // SAFETY: `t.job` points at the ForJob this task was built
        // from, and the submitting thread blocks on the job latch, so
        // the pointee is alive for the whole call.
        Task::For(t) => unsafe { (t.run)(t.job) },
        Task::Boxed(f) => f(),
    }
}

fn worker_loop(shared: Arc<Shared>, local: Worker<Task>, index: usize) {
    IS_WORKER.with(|flag| flag.set(true));
    let stats = WorkerStats::new(index);
    loop {
        if let Some(task) = shared.find_task(&local, index, &stats) {
            stats.tasks.add(1);
            run_task(task);
            continue;
        }
        let mut state = shared.state.lock();
        if state.shutdown {
            return;
        }
        // Re-check under the lock: `submit` notifies while holding it,
        // so a push racing with this parking attempt is never missed.
        if !(local.is_empty() && shared.injector.is_empty()) {
            continue;
        }
        stats.parks.add(1);
        shared.wakeup.wait(&mut state);
    }
}

/// Shared state of one `parallel_for_chunks` call, borrowed by every
/// task that helps execute it.
struct ForJob<'a> {
    body: &'a (dyn Fn(Range<usize>) + Sync),
    next: AtomicUsize,
    end: usize,
    chunk: usize,
    latch: Latch,
    panic: PanicSlot,
}

impl ForJob<'_> {
    /// Claims and runs chunks until the range is exhausted. Panics in
    /// the body are caught so peers and the submitter always drain the
    /// range and the latch always opens; the submitter re-raises the
    /// first payload (see the module-level panic contract).
    fn execute_chunks(&self) {
        loop {
            let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.end {
                break;
            }
            let end = self.end.min(start + self.chunk);
            let result = panic::catch_unwind(AssertUnwindSafe(|| (self.body)(start..end)));
            if let Err(payload) = result {
                self.panic.record(payload);
            }
        }
    }
}

/// # Safety
/// `job` must point at a live `ForJob` (upheld by the latch protocol
/// on [`ForTask::run`]).
unsafe fn run_for_task(job: *const ()) {
    // SAFETY: caller contract above — `job` is a live `ForJob`.
    let job = unsafe { &*(job as *const ForJob) };
    job.execute_chunks();
    job.latch.count_down();
}

/// Handle for spawning borrowed tasks; see [`Runtime::scope`].
pub struct Scope<'scope, 'rt> {
    rt: &'rt Runtime,
    state: Arc<ScopeState>,
    _marker: PhantomData<&'scope mut &'scope ()>,
}

struct ScopeState {
    latch: Latch,
    panic: PanicSlot,
}

impl<'scope> Scope<'scope, '_> {
    /// Spawns `f` onto the pool. Runs inline when the runtime is
    /// serial or when called from a pool worker (so workers never
    /// block waiting on their own spawns).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let shared = match self.rt.shared.as_ref() {
            Some(shared) if !IS_WORKER.with(|flag| flag.get()) => shared,
            _ => {
                f();
                return;
            }
        };
        self.state.latch.add(1);
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(f)) {
                state.panic.record(payload);
            }
            state.latch.count_down();
        });
        // SAFETY: `Runtime::scope` blocks until the latch opens, so
        // everything `f` borrows ('scope) outlives the task.
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe { mem::transmute(task) };
        shared.submit(Task::Boxed(task));
    }
}

/// A thread pool (or the inline serial stand-in) executing Winograd
/// work. Dropping a pool shuts its workers down and joins them.
pub struct Runtime {
    shared: Option<Arc<Shared>>,
    handles: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// A runtime with no worker threads; every call runs inline.
    pub fn serial() -> Self {
        Runtime {
            shared: None,
            handles: Vec::new(),
        }
    }

    /// A pool with `threads` total execution lanes (the submitting
    /// caller counts as one, so `threads - 1` workers are spawned).
    /// `threads <= 1` yields the serial runtime.
    pub fn with_threads(threads: usize) -> Self {
        if threads <= 1 {
            return Self::serial();
        }
        let workers: Vec<Worker<Task>> = (0..threads - 1).map(|_| Worker::new_lifo()).collect();
        let stealers = workers.iter().map(Worker::stealer).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            state: Mutex::new(PoolState { shutdown: false }),
            wakeup: Condvar::new(),
            threads,
        });
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(index, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("wino-worker-{index}"))
                    .spawn(move || worker_loop(shared, local, index))
                    .expect("failed to spawn wino-runtime worker")
            })
            .collect();
        Runtime {
            shared: Some(shared),
            handles,
        }
    }

    /// The process-wide pool, sized by [`default_threads`] on first
    /// use. Never dropped.
    pub fn global() -> &'static Runtime {
        static GLOBAL: OnceLock<Runtime> = OnceLock::new();
        GLOBAL.get_or_init(|| Runtime::with_threads(default_threads()))
    }

    /// Total execution lanes (1 for the serial runtime).
    pub fn threads(&self) -> usize {
        self.shared.as_ref().map_or(1, |s| s.threads)
    }

    /// `true` when worker threads exist.
    pub fn is_parallel(&self) -> bool {
        self.threads() > 1
    }

    /// Runs `body` for every index in `range`, distributed across the
    /// pool. Bit-identical to the serial loop whenever distinct
    /// indices touch disjoint data.
    pub fn parallel_for<F>(&self, range: Range<usize>, body: F)
    where
        F: Fn(usize) + Sync,
    {
        self.parallel_for_chunks(range, 1, |chunk| {
            for index in chunk {
                body(index);
            }
        });
    }

    /// Runs `body` once per claimed chunk of `range` (chunks never
    /// shrink below `min_chunk` indices). The chunk granularity lets
    /// callers amortize per-task scratch allocations.
    pub fn parallel_for_chunks<F>(&self, range: Range<usize>, min_chunk: usize, body: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return;
        }
        let threads = self.threads();
        let min_chunk = min_chunk.max(1);
        if threads <= 1 || len <= min_chunk || IS_WORKER.with(|flag| flag.get()) {
            body(range);
            return;
        }
        let chunk = chunk_size(len, threads, min_chunk);
        let chunks = len.div_ceil(chunk);
        let helpers = (threads - 1).min(chunks.saturating_sub(1));
        if helpers == 0 {
            body(range);
            return;
        }
        let shared = self.shared.as_ref().expect("threads > 1 implies a pool");
        let job = ForJob {
            body: &body,
            next: AtomicUsize::new(range.start),
            end: range.end,
            chunk,
            latch: Latch::new(helpers),
            panic: PanicSlot::new(),
        };
        let job_ptr = &job as *const ForJob as *const ();
        for _ in 0..helpers {
            shared.injector.push(Task::For(ForTask {
                job: job_ptr,
                run: run_for_task,
            }));
        }
        {
            let _state = shared.state.lock();
            shared.wakeup.notify_all();
        }
        // The caller is a full execution lane, then blocks until every
        // helper has finished (the job is on this stack frame).
        job.execute_chunks();
        job.latch.wait();
        if let Some(payload) = job.panic.take() {
            // First payload wins; the original message reaches the
            // caller (module-level panic contract, rule 3).
            panic::resume_unwind(payload);
        }
    }

    /// Structured spawning of heterogeneous borrowed tasks; returns
    /// once every spawned task has finished.
    pub fn scope<'scope, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'scope, '_>) -> R,
    {
        let scope = Scope {
            rt: self,
            state: Arc::new(ScopeState {
                latch: Latch::new(0),
                panic: PanicSlot::new(),
            }),
            _marker: PhantomData,
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
        scope.state.latch.wait();
        // A spawned task's payload outranks the closure's own unwind:
        // the task panic is the root cause (panic contract, rule 3).
        if let Some(payload) = scope.state.panic.take() {
            panic::resume_unwind(payload);
        }
        match result {
            Ok(value) => value,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            shared.state.lock().shutdown = true;
            shared.wakeup.notify_all();
            for handle in self.handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

impl Default for Runtime {
    /// The default runtime is the global pool's configuration applied
    /// to a fresh pool; prefer [`Runtime::global`] to share workers.
    fn default() -> Self {
        Runtime::with_threads(default_threads())
    }
}

/// Thread count the global pool uses: `WINO_THREADS` when set to a
/// positive integer, else `std::thread::available_parallelism`.
/// Malformed values are not silently ignored: a one-line warning goes
/// through wino-probe's diagnostics channel before falling back.
pub fn default_threads() -> usize {
    match std::env::var("WINO_THREADS") {
        Ok(value) => match value.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                let fallback = available_threads();
                wino_probe::diag(format!(
                    "invalid WINO_THREADS={value:?} (expected a positive integer); \
                     falling back to {fallback} threads"
                ));
                fallback
            }
        },
        Err(_) => available_threads(),
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Chunk granularity `parallel_for_chunks` uses for a `len`-index
/// range on `threads` execution lanes.
fn chunk_size(len: usize, threads: usize, min_chunk: usize) -> usize {
    let lanes = threads * CHUNKS_PER_LANE;
    len.div_ceil(lanes).max(min_chunk)
}

/// The exact chunk boundaries [`Runtime::parallel_for_chunks`] hands
/// to its body for a runtime with `threads` total lanes. Exported so
/// verification tooling (wino-verify's unsafe-invariant audit) can
/// prove the schedule partitions the range: chunks are contiguous,
/// non-overlapping, cover every index exactly once, and never shrink
/// below `min_chunk` except for the final remainder.
pub fn chunk_ranges(range: Range<usize>, threads: usize, min_chunk: usize) -> Vec<Range<usize>> {
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return Vec::new();
    }
    let min_chunk = min_chunk.max(1);
    if threads <= 1 || len <= min_chunk {
        return vec![range];
    }
    let chunk = chunk_size(len, threads, min_chunk);
    let mut out = Vec::with_capacity(len.div_ceil(chunk));
    let mut start = range.start;
    while start < range.end {
        let end = range.end.min(start + chunk);
        out.push(start..end);
        start = end;
    }
    out
}

/// Debug-build ownership ledger behind [`DisjointSlice`]: one atomic
/// owner word per element, claimed by the first writing thread.
/// Compiled out of release builds entirely.
#[cfg(debug_assertions)]
mod claim_check {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Small per-thread token for the overlap ledger (0 means
    /// "unclaimed"; real tokens start at 1).
    fn thread_token() -> u32 {
        static NEXT: AtomicU32 = AtomicU32::new(1);
        thread_local! {
            static TOKEN: Cell<u32> = const { Cell::new(0) };
        }
        TOKEN.with(|slot| {
            let mut token = slot.get();
            if token == 0 {
                token = NEXT.fetch_add(1, Ordering::Relaxed);
                slot.set(token);
            }
            token
        })
    }

    pub(crate) struct Owners {
        words: Box<[AtomicU32]>,
    }

    impl Owners {
        pub(crate) fn new(len: usize) -> Self {
            Owners {
                words: (0..len).map(|_| AtomicU32::new(0)).collect(),
            }
        }

        /// Claims `index` for the calling thread. Re-claims from the
        /// same thread are fine (sequential rewrites are not a race);
        /// a claim from a second thread is a violated disjointness
        /// contract and panics.
        #[inline]
        pub(crate) fn claim(&self, index: usize) {
            let token = thread_token();
            match self.words[index].compare_exchange(0, token, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {}
                Err(prev) if prev == token => {}
                Err(prev) => panic!(
                    "DisjointSlice disjointness violated: index {index} claimed by \
                     thread token {prev}, then written by thread token {token}"
                ),
            }
        }

        pub(crate) fn claim_range(&self, range: std::ops::Range<usize>) {
            for index in range {
                self.claim(index);
            }
        }
    }
}

/// A shared-write window over a mutable slice for kernels whose tasks
/// write provably disjoint ranges (each output element has exactly one
/// writer). The unsafe constructor of parallel scatter loops.
///
/// # Safety contract (centralized)
/// Every unsafe method on this type relies on the same two caller
/// obligations:
/// 1. **Bounds** — indices/ranges lie inside the wrapped slice.
/// 2. **Disjointness** — over the window's lifetime, no element is
///    written by more than one thread.
///
/// Debug builds *check* both: bounds become hard asserts, and a
/// per-element ownership ledger panics the moment two threads touch
/// the same element ([`DisjointSlice::checks_enabled`] reports
/// whether the ledger is compiled in). Release builds compile the
/// checks out and trust the contract.
pub struct DisjointSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    #[cfg(debug_assertions)]
    owners: claim_check::Owners,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: callers uphold disjointness (documented on `slice_mut`), so
// concurrent access never aliases; `T: Send` makes moving elements
// across threads sound.
unsafe impl<T: Send> Send for DisjointSlice<'_, T> {}
// SAFETY: same argument — `&DisjointSlice` only exposes writes whose
// disjointness the caller vouches for (and debug builds verify).
unsafe impl<T: Send> Sync for DisjointSlice<'_, T> {}

impl<'a, T> DisjointSlice<'a, T> {
    /// Wraps `slice` for disjoint parallel writes.
    pub fn new(slice: &'a mut [T]) -> Self {
        DisjointSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            #[cfg(debug_assertions)]
            owners: claim_check::Owners::new(slice.len()),
            _marker: PhantomData,
        }
    }

    /// `true` when this build carries the debug-mode ownership ledger
    /// (bounds witnesses + cross-thread overlap detection).
    pub const fn checks_enabled() -> bool {
        cfg!(debug_assertions)
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes one element.
    ///
    /// # Safety
    /// `index` must be in bounds and written by no other thread over
    /// this window's lifetime (checked in debug builds).
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        #[cfg(debug_assertions)]
        {
            assert!(
                index < self.len,
                "DisjointSlice::write out of bounds: {index} >= {}",
                self.len
            );
            self.owners.claim(index);
        }
        // SAFETY: caller contract (`# Safety` above) — `index` is in
        // bounds and exclusively ours for this window's lifetime.
        unsafe { self.ptr.add(index).write(value) }
    }

    /// Reborrows `range` mutably.
    ///
    /// # Safety
    /// `range` must be in bounds and disjoint from every range any
    /// other thread accesses while the borrow lives (checked in debug
    /// builds).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, range: Range<usize>) -> &'a mut [T] {
        #[cfg(debug_assertions)]
        {
            assert!(
                range.start <= range.end && range.end <= self.len,
                "DisjointSlice::slice_mut out of bounds: {range:?} over len {}",
                self.len
            );
            self.owners.claim_range(range.clone());
        }
        // SAFETY: caller contract (`# Safety` above) — `range` is in
        // bounds and disjoint from every other thread's accesses.
        unsafe {
            std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.end - range.start)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_for_covers_every_index_once() {
        let rt = Runtime::with_threads(4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        rt.parallel_for(0..1000, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn chunks_partition_the_range() {
        let rt = Runtime::with_threads(3);
        let seen = Mutex::new(Vec::new());
        rt.parallel_for_chunks(10..250, 7, |chunk| {
            assert!(chunk.len() >= 7 || chunk.end == 250);
            seen.lock().push(chunk);
        });
        let mut chunks = seen.into_inner();
        chunks.sort_by_key(|c| c.start);
        assert_eq!(chunks.first().map(|c| c.start), Some(10));
        assert_eq!(chunks.last().map(|c| c.end), Some(250));
        for pair in chunks.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn serial_runtime_runs_inline() {
        let rt = Runtime::serial();
        assert_eq!(rt.threads(), 1);
        let sum = Mutex::new(0u64);
        rt.parallel_for(0..10, |i| *sum.lock() += i as u64);
        assert_eq!(sum.into_inner(), 45);
    }

    #[test]
    fn nested_parallel_for_completes() {
        let rt = Runtime::with_threads(4);
        let total = AtomicUsize::new(0);
        rt.parallel_for(0..8, |_| {
            // Nested call: runs inline on workers, so no deadlock.
            rt.parallel_for(0..8, |_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn scope_joins_borrowed_tasks() {
        let rt = Runtime::with_threads(4);
        let data = [1u64, 2, 3, 4];
        let (left, right) = (AtomicUsize::new(0), AtomicUsize::new(0));
        rt.scope(|s| {
            s.spawn(|| left.store(data[..2].iter().sum::<u64>() as usize, Ordering::SeqCst));
            s.spawn(|| right.store(data[2..].iter().sum::<u64>() as usize, Ordering::SeqCst));
        });
        assert_eq!(left.load(Ordering::SeqCst), 3);
        assert_eq!(right.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn disjoint_slice_parallel_writes() {
        let rt = Runtime::with_threads(4);
        let mut data = vec![0usize; 512];
        {
            let window = DisjointSlice::new(&mut data);
            rt.parallel_for_chunks(0..512, 1, |chunk| {
                // SAFETY: chunks from one parallel_for never overlap.
                let out = unsafe { window.slice_mut(chunk.clone()) };
                for (slot, index) in out.iter_mut().zip(chunk) {
                    *slot = index * 3;
                }
            });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i * 3));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn body_panic_propagates_to_caller_with_original_payload() {
        let rt = Runtime::with_threads(2);
        rt.parallel_for(0..64, |i| {
            if i == 33 {
                panic!("boom");
            }
        });
    }

    #[test]
    #[should_panic(expected = "spawned boom")]
    fn scope_panic_propagates_with_original_payload() {
        let rt = Runtime::with_threads(2);
        rt.scope(|s| {
            s.spawn(|| panic!("spawned boom"));
        });
    }

    #[test]
    fn panic_in_one_chunk_leaves_other_chunks_and_the_pool_intact() {
        let threads = 4;
        let rt = Runtime::with_threads(threads);
        let mut data = vec![0usize; 256];
        {
            let window = DisjointSlice::new(&mut data);
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                rt.parallel_for_chunks(0..256, 1, |chunk| {
                    if chunk.contains(&97) {
                        // Panic before claiming anything: this chunk's
                        // ownership stays untouched.
                        panic!("chunk fault");
                    }
                    // SAFETY: chunks from one parallel_for never
                    // overlap.
                    let out = unsafe { window.slice_mut(chunk.clone()) };
                    for (slot, index) in out.iter_mut().zip(chunk) {
                        *slot = index + 1;
                    }
                });
            }));
            let payload = result.expect_err("the chunk panic must reach the caller");
            assert_eq!(
                payload.downcast_ref::<&str>(),
                Some(&"chunk fault"),
                "original payload must survive"
            );
        }
        // Drain-then-report: every chunk except the panicking one ran
        // to completion and wrote through the window without tripping
        // the debug ownership ledger.
        let faulty = chunk_ranges(0..256, threads, 1)
            .into_iter()
            .find(|c| c.contains(&97))
            .expect("some chunk holds index 97");
        for (index, &value) in data.iter().enumerate() {
            if !faulty.contains(&index) {
                assert_eq!(value, index + 1, "chunk holding {index} did not complete");
            }
        }
        // Reusability: the pool still works after the caught panic.
        let total = AtomicUsize::new(0);
        rt.parallel_for(0..64, |_| {
            total.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(total.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn with_threads_one_is_serial() {
        let rt = Runtime::with_threads(1);
        assert!(!rt.is_parallel());
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        for (range, threads, min_chunk) in [
            (0..1000, 4, 1),
            (10..250, 3, 7),
            (0..5, 8, 1),
            (0..17, 2, 16),
            (3..3, 4, 1),
            (0..64, 1, 1),
        ] {
            let chunks = chunk_ranges(range.clone(), threads, min_chunk);
            if range.is_empty() {
                assert!(chunks.is_empty());
                continue;
            }
            assert_eq!(chunks.first().map(|c| c.start), Some(range.start));
            assert_eq!(chunks.last().map(|c| c.end), Some(range.end));
            for pair in chunks.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "gap or overlap");
            }
            for chunk in &chunks[..chunks.len() - 1] {
                assert!(chunk.len() >= min_chunk.max(1));
            }
        }
    }

    #[test]
    fn chunk_ranges_match_parallel_for_chunks() {
        let rt = Runtime::with_threads(3);
        let seen = Mutex::new(Vec::new());
        rt.parallel_for_chunks(10..250, 7, |chunk| seen.lock().push(chunk));
        let mut observed = seen.into_inner();
        observed.sort_by_key(|c| c.start);
        assert_eq!(observed, chunk_ranges(10..250, 3, 7));
    }

    #[test]
    fn disjoint_slice_allows_same_thread_reclaims() {
        let mut data = vec![0.0f32; 16];
        let win = DisjointSlice::new(&mut data);
        // Repeated claims of the same region from one thread model the
        // blocked GEMM's kk-loop accumulation; they must not trip the
        // debug ledger.
        for _ in 0..3 {
            // SAFETY: in bounds; only this thread touches the window.
            let row = unsafe { win.slice_mut(4..8) };
            for v in row.iter_mut() {
                *v += 1.0;
            }
        }
        // SAFETY: in bounds; only this thread touches the window.
        unsafe { win.write(0, 7.0) };
        // SAFETY: same — a same-thread rewrite is the point of the test.
        unsafe { win.write(0, 8.0) };
        drop(win);
        assert_eq!(data[0], 8.0);
        assert_eq!(&data[4..8], &[3.0; 4]);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn disjoint_slice_detects_cross_thread_overlap() {
        let mut data = vec![0u32; 64];
        let win = DisjointSlice::new(&mut data);
        // This thread claims 0..40; a second thread claiming the
        // overlapping 32..48 must panic in the debug ledger.
        // SAFETY: deliberately violates disjointness with the claim
        // below — this debug-build test asserts the ledger panics
        // before any aliased access happens.
        let _mine = unsafe { win.slice_mut(0..40) };
        let result = std::thread::scope(|s| {
            s.spawn(|| {
                let caught = panic::catch_unwind(AssertUnwindSafe(|| {
                    // SAFETY: overlapping on purpose; the ledger must
                    // panic here before the slice is ever used.
                    let _theirs = unsafe { win.slice_mut(32..48) };
                }));
                caught.is_err()
            })
            .join()
            .unwrap()
        });
        assert!(result, "overlapping cross-thread claim was not detected");
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "out of bounds")]
    fn disjoint_slice_write_bounds_checked() {
        let mut data = vec![0u8; 4];
        let win = DisjointSlice::new(&mut data);
        // SAFETY: deliberately out of bounds; the debug assert must
        // panic before the raw write executes.
        unsafe { win.write(4, 1) };
    }
}
