//! # wino-cc — compile-and-execute validation of generated kernels
//!
//! The paper's outlook (§6) proposes targeting CPUs with the same
//! meta-code. This crate does exactly that for validation purposes:
//! a generated kernel's CUDA-C source is textually adapted to plain
//! C99, wrapped in a serial grid-driver `main()`, compiled with the
//! system C compiler, and executed against real buffers. This closes
//! the loop the GPU simulator cannot: the *emitted source text itself*
//! — spliced recipes, unrolled loops, index arithmetic — is proven to
//! compute the right values by an independent compiler.
//!
//! Only embarrassingly-parallel kernels (one work item per thread, no
//! `__syncthreads()`) are supported: the three Winograd transforms,
//! direct convolution, and the im2col gather. Cooperative kernels
//! (tiled GEMM, fused Winograd) are rejected with a clear error.

#![warn(missing_docs)]

use std::io::{self, Write as _};
use std::path::PathBuf;
use std::process::Command;

use wino_ir::Kernel;

/// Errors from the compile-and-execute pipeline.
#[derive(Debug)]
pub enum CcError {
    /// The kernel uses cooperative features this backend cannot
    /// serialize (shared memory / barriers / multi-dim blocks).
    Unsupported(String),
    /// The C compiler failed; carries its stderr.
    CompileFailed(String),
    /// The compiled harness failed at run time.
    RunFailed(String),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for CcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcError::Unsupported(msg) => write!(f, "kernel unsupported by cc backend: {msg}"),
            CcError::CompileFailed(err) => write!(f, "cc failed:\n{err}"),
            CcError::RunFailed(msg) => write!(f, "harness failed: {msg}"),
            CcError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for CcError {}

impl From<io::Error> for CcError {
    fn from(e: io::Error) -> Self {
        CcError::Io(e)
    }
}

/// Returns `true` if a usable C compiler is on PATH (tests skip
/// themselves gracefully when not).
pub fn compiler_available() -> bool {
    Command::new("cc")
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

/// Adapts single-work-item CUDA-C kernel source to plain C99 with the
/// thread index supplied by a file-scope variable.
///
/// # Errors
/// [`CcError::Unsupported`] when the kernel needs cooperative
/// execution.
pub fn adapt_to_c99(source: &str) -> Result<String, CcError> {
    if source.contains("__syncthreads") || source.contains("__shared__") {
        return Err(CcError::Unsupported(
            "kernel uses shared memory / barriers; only per-item kernels run on the cc backend"
                .into(),
        ));
    }
    let mut out = source.replace("blockIdx.x * blockDim.x + threadIdx.x", "wg_global_id");
    out = out.replace("__global__ void", "static void");
    out = out.replace("__restrict__", "restrict");
    for forbidden in ["blockIdx", "threadIdx", "blockDim", "gridDim"] {
        if out.contains(forbidden) {
            return Err(CcError::Unsupported(format!(
                "kernel uses {forbidden} beyond the linear-gid pattern"
            )));
        }
    }
    Ok(out)
}

/// Compiles `kernel` into a standalone harness and runs it over the
/// full launch grid, returning the output buffer.
///
/// `inputs` are the kernel's buffer parameters in signature order,
/// excluding the final output parameter, whose length is
/// `output_len`. Buffers are exchanged through temporary files in
/// `std::env::temp_dir()`.
///
/// # Errors
/// [`CcError`] for unsupported kernels, compiler failures, or harness
/// failures.
pub fn compile_and_run(
    kernel: &Kernel,
    inputs: &[&[f32]],
    output_len: usize,
) -> Result<Vec<f32>, CcError> {
    let body = adapt_to_c99(&kernel.source)?;
    let nparams = inputs.len() + 1;
    let total_threads = kernel.launch.total_threads();

    // The harness: read inputs, loop the grid, write the output.
    let mut src = String::new();
    src.push_str("#include <stdio.h>\n#include <stdlib.h>\n#include <math.h>\n\n");
    src.push_str("static int wg_global_id;\n\n");
    src.push_str(&body);
    src.push_str("\n\nstatic float* load(const char* path, long n) {\n");
    src.push_str("  FILE* f = fopen(path, \"rb\");\n");
    src.push_str("  if (!f) { fprintf(stderr, \"open %s\\n\", path); exit(3); }\n");
    src.push_str("  float* buf = (float*)calloc((size_t)n, sizeof(float));\n");
    src.push_str("  if (fread(buf, sizeof(float), (size_t)n, f) != (size_t)n) exit(4);\n");
    src.push_str("  fclose(f); return buf;\n}\n\n");
    src.push_str("int main(int argc, char** argv) {\n");
    src.push_str(&format!("  if (argc != {}) return 2;\n", nparams + 1));
    for (i, buf) in inputs.iter().enumerate() {
        src.push_str(&format!(
            "  float* b{i} = load(argv[{}], {});\n",
            i + 1,
            buf.len()
        ));
    }
    src.push_str(&format!(
        "  float* out = (float*)calloc({output_len}, sizeof(float));\n"
    ));
    src.push_str(&format!(
        "  for (long g = 0; g < {total_threads}; ++g) {{\n    wg_global_id = (int)g;\n"
    ));
    let kernel_name = &kernel.name;
    let args: Vec<String> = (0..inputs.len()).map(|i| format!("b{i}")).collect();
    src.push_str(&format!(
        "    {kernel_name}({}, out);\n  }}\n",
        args.join(", ")
    ));
    src.push_str(&format!(
        "  FILE* f = fopen(argv[{nparams}], \"wb\");\n  if (!f) return 5;\n\
         \x20 fwrite(out, sizeof(float), {output_len}, f);\n  fclose(f);\n  return 0;\n}}\n"
    ));

    // Unique workspace per invocation.
    let dir = std::env::temp_dir().join(format!("wino_cc_{}_{}", std::process::id(), kernel.name));
    std::fs::create_dir_all(&dir)?;
    let c_path = dir.join("harness.c");
    std::fs::write(&c_path, &src)?;
    let exe_path = dir.join("harness");

    let compile = Command::new("cc")
        .arg("-O1")
        .arg("-std=c99")
        .arg("-o")
        .arg(&exe_path)
        .arg(&c_path)
        .arg("-lm")
        .output()?;
    if !compile.status.success() {
        return Err(CcError::CompileFailed(
            String::from_utf8_lossy(&compile.stderr).into(),
        ));
    }

    let mut arg_paths: Vec<PathBuf> = Vec::new();
    for (i, buf) in inputs.iter().enumerate() {
        let p = dir.join(format!("in{i}.bin"));
        let mut f = std::fs::File::create(&p)?;
        let bytes: Vec<u8> = buf.iter().flat_map(|v| v.to_le_bytes()).collect();
        f.write_all(&bytes)?;
        arg_paths.push(p);
    }
    let out_path = dir.join("out.bin");
    arg_paths.push(out_path.clone());

    let run = Command::new(&exe_path).args(&arg_paths).output()?;
    if !run.status.success() {
        return Err(CcError::RunFailed(format!(
            "exit {:?}: {}",
            run.status.code(),
            String::from_utf8_lossy(&run.stderr)
        )));
    }

    let bytes = std::fs::read(&out_path)?;
    if bytes.len() != output_len * 4 {
        return Err(CcError::RunFailed(format!(
            "output has {} bytes, expected {}",
            bytes.len(),
            output_len * 4
        )));
    }
    let out = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapt_rejects_cooperative_kernels() {
        let err = adapt_to_c99("__global__ void k() { __syncthreads(); }").unwrap_err();
        assert!(matches!(err, CcError::Unsupported(_)));
        let err = adapt_to_c99("__global__ void k() { int x = threadIdx.y; }").unwrap_err();
        assert!(matches!(err, CcError::Unsupported(_)));
    }

    #[test]
    fn adapt_translates_per_item_kernels() {
        let src = "__global__ void k(const float* __restrict__ a, float* __restrict__ b) {\n\
                   const int gid = blockIdx.x * blockDim.x + threadIdx.x;\n\
                   b[gid] = a[gid];\n}";
        let c = adapt_to_c99(src).unwrap();
        assert!(c.contains("static void k"));
        assert!(c.contains("wg_global_id"));
        assert!(!c.contains("__global__"));
        assert!(!c.contains("blockIdx"));
    }
}
