//! The strongest codegen validation in the workspace: generated kernel
//! *source text* is compiled by the system C compiler and executed —
//! its numbers must match the CPU reference engines exactly (same
//! f32 arithmetic, same order).

use rand::rngs::StdRng;
use rand::SeedableRng;
use wino_cc::{compile_and_run, compiler_available};
use wino_codegen::{
    gen_direct_conv_kernel, gen_filter_transform_kernel, gen_im2col_kernels,
    gen_input_transform_kernel, CodegenOptions,
};
use wino_conv::{conv_direct_f32, im2col_image, TileTransformer};
use wino_symbolic::RecipeOptions;
use wino_tensor::{extract_input_tile, tile_counts, ConvDesc, Tensor4};
use wino_transform::{TransformRecipes, WinogradSpec};

fn close(a: &[f32], b: &[f32], tol: f32) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!((x - y).abs() <= tol * (1.0 + y.abs()), "at {i}: {x} vs {y}");
    }
}

#[test]
fn compiled_filter_transform_matches_reference() {
    if !compiler_available() {
        eprintln!("no C compiler; skipping");
        return;
    }
    let desc = ConvDesc::new(3, 1, 1, 6, 1, 8, 8, 4);
    let spec = WinogradSpec::new(4, 3).unwrap();
    let recipes = TransformRecipes::generate(spec, RecipeOptions::optimized()).unwrap();
    let kernel = gen_filter_transform_kernel(&desc, &recipes, &CodegenOptions::default()).unwrap();

    let mut rng = StdRng::seed_from_u64(1);
    let filters = Tensor4::<f32>::random(6, 4, 3, 3, -1.0, 1.0, &mut rng);
    let alpha = spec.alpha();
    let a2 = alpha * alpha;
    let out_len = a2 * 6 * 4;

    let got = compile_and_run(&kernel, &[filters.data()], out_len).expect("compiles and runs");

    // Reference: TileTransformer into the (ξ, k, c) scatter layout.
    let mut expect = vec![0.0f32; out_len];
    let mut tt = TileTransformer::new(&recipes.filter);
    let mut tile = vec![0.0f32; a2];
    for k in 0..6 {
        for c in 0..4 {
            tt.transform(filters.plane(k, c), &mut tile);
            for (xi, &v) in tile.iter().enumerate() {
                expect[(xi * 6 + k) * 4 + c] = v;
            }
        }
    }
    close(&got, &expect, 1e-5);
}

#[test]
fn compiled_input_transform_matches_reference() {
    if !compiler_available() {
        eprintln!("no C compiler; skipping");
        return;
    }
    let desc = ConvDesc::new(3, 1, 1, 4, 1, 10, 10, 3);
    let spec = WinogradSpec::new(2, 3).unwrap();
    let recipes = TransformRecipes::generate(spec, RecipeOptions::optimized()).unwrap();
    let kernel = gen_input_transform_kernel(&desc, &recipes, &CodegenOptions::default()).unwrap();

    let mut rng = StdRng::seed_from_u64(2);
    let input = Tensor4::<f32>::random(1, 3, 10, 10, -1.0, 1.0, &mut rng);
    let padded = input.pad_spatial(1);
    let alpha = spec.alpha();
    let a2 = alpha * alpha;
    let (th, tw) = tile_counts(desc.out_h(), desc.out_w(), 2);
    let p_total = th * tw;
    let out_len = a2 * 3 * p_total;

    // The kernel reads the *padded* input (the generator bakes the
    // padded extents into the index arithmetic).
    let got = compile_and_run(&kernel, &[padded.data()], out_len).expect("compiles and runs");

    let mut expect = vec![0.0f32; out_len];
    let mut tt = TileTransformer::new(&recipes.input);
    let mut in_tile = vec![0.0f32; a2];
    let mut v_tile = vec![0.0f32; a2];
    for ty in 0..th {
        for tx in 0..tw {
            let p = ty * tw + tx;
            for c in 0..3 {
                extract_input_tile(&padded, 0, c, ty, tx, 2, alpha, &mut in_tile);
                tt.transform(&in_tile, &mut v_tile);
                for (xi, &v) in v_tile.iter().enumerate() {
                    expect[(xi * 3 + c) * p_total + p] = v;
                }
            }
        }
    }
    close(&got, &expect, 1e-5);
}

#[test]
fn compiled_direct_conv_matches_reference() {
    if !compiler_available() {
        eprintln!("no C compiler; skipping");
        return;
    }
    let desc = ConvDesc::new(5, 2, 2, 4, 2, 11, 11, 3);
    let kernel = gen_direct_conv_kernel(&desc, &CodegenOptions::default()).unwrap();

    let mut rng = StdRng::seed_from_u64(3);
    let input = Tensor4::<f32>::random(2, 3, 11, 11, -1.0, 1.0, &mut rng);
    let filters = Tensor4::<f32>::random(4, 3, 5, 5, -1.0, 1.0, &mut rng);
    let expect = conv_direct_f32(&input, &filters, &desc).unwrap();

    let got = compile_and_run(&kernel, &[input.data(), filters.data()], expect.len())
        .expect("compiles and runs");
    close(&got, expect.data(), 1e-4);
}

#[test]
fn compiled_im2col_matches_reference() {
    if !compiler_available() {
        eprintln!("no C compiler; skipping");
        return;
    }
    let desc = ConvDesc::new(3, 1, 1, 4, 1, 7, 7, 2);
    let kernels = gen_im2col_kernels(&desc, &CodegenOptions::default()).unwrap();
    let gather = &kernels[0];

    let mut rng = StdRng::seed_from_u64(4);
    let input = Tensor4::<f32>::random(1, 2, 7, 7, -1.0, 1.0, &mut rng);
    let rows = 2 * 9;
    let cols = desc.out_h() * desc.out_w();
    let mut expect = vec![0.0f32; rows * cols];
    im2col_image(&input, 0, &desc, &mut expect);

    let got = compile_and_run(gather, &[input.data()], rows * cols).expect("compiles and runs");
    close(&got, &expect, 0.0);
}

#[test]
fn cooperative_kernels_are_rejected_cleanly() {
    if !compiler_available() {
        eprintln!("no C compiler; skipping");
        return;
    }
    let desc = ConvDesc::new(3, 1, 1, 8, 1, 8, 8, 4);
    let gemm =
        wino_codegen::gen_single_gemm_kernel(8, 4, 16, &CodegenOptions::default(), "t").unwrap();
    let err = compile_and_run(&gemm, &[&[0.0; 32], &[0.0; 64]], 128).unwrap_err();
    assert!(err.to_string().contains("shared memory"), "{err}");
    let _ = desc;
}
