//! Device profiles for the simulated GPUs.
//!
//! Parameters are taken from public specification sheets of the three
//! platforms in the paper's Table 2. The simulator never claims
//! absolute-time fidelity (DESIGN.md §2); the profiles exist so the
//! *relative* behaviour — compute-vs-bandwidth bound, occupancy
//! limits, launch overhead on mobile — matches each platform's
//! character.

/// A modelled GPU.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceProfile {
    /// Marketing name.
    pub name: &'static str,
    /// Streaming multiprocessors / compute units / shader cores.
    pub sm_count: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Peak FLOPs per cycle per SM (FMA counted as 2).
    pub flops_per_cycle_per_sm: usize,
    /// Global memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Shared memory (scratchpad) per SM in bytes.
    pub shared_per_sm: usize,
    /// Maximum shared memory per block in bytes.
    pub shared_per_block: usize,
    /// Register file per SM (32-bit registers).
    pub regs_per_sm: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: usize,
    /// SIMT width (warp / wavefront / quad).
    pub warp_size: usize,
    /// Fixed cost of one kernel launch, in microseconds (driver +
    /// dispatch; mobile drivers pay far more).
    pub launch_overhead_us: f64,
    /// FP16 arithmetic rate relative to FP32 (used by the ARM Compute
    /// Library comparator, which runs its GEMMs in half precision).
    pub fp16_speedup: f64,
}

impl DeviceProfile {
    /// Peak FP32 throughput in FLOP/s.
    pub fn peak_flops(&self) -> f64 {
        self.sm_count as f64 * self.clock_ghz * 1e9 * self.flops_per_cycle_per_sm as f64
    }

    /// Peak memory bandwidth in bytes/s.
    pub fn peak_bandwidth(&self) -> f64 {
        self.mem_bandwidth_gbps * 1e9
    }

    /// Thread count needed to consider the device saturated.
    pub fn saturation_threads(&self) -> usize {
        self.sm_count * self.max_threads_per_sm / 2
    }
}

/// NVIDIA GTX 1080 Ti (Pascal, 28 SMs): the paper's desktop NVIDIA
/// platform.
pub fn gtx_1080_ti() -> DeviceProfile {
    DeviceProfile {
        name: "NVIDIA GTX 1080 Ti",
        sm_count: 28,
        clock_ghz: 1.58,
        flops_per_cycle_per_sm: 256, // 128 FMA units × 2
        mem_bandwidth_gbps: 484.0,
        shared_per_sm: 96 * 1024,
        shared_per_block: 48 * 1024,
        regs_per_sm: 65536,
        max_threads_per_sm: 2048,
        max_threads_per_block: 1024,
        warp_size: 32,
        launch_overhead_us: 5.0,
        fp16_speedup: 1.0, // Pascal consumer FP16 is crippled
    }
}

/// AMD Radeon RX 580 (Polaris, 36 CUs): the paper's desktop AMD
/// platform.
pub fn rx_580() -> DeviceProfile {
    DeviceProfile {
        name: "AMD Radeon RX 580",
        sm_count: 36,
        clock_ghz: 1.257,
        flops_per_cycle_per_sm: 128, // 64 lanes × 2
        mem_bandwidth_gbps: 256.0,
        shared_per_sm: 64 * 1024,
        shared_per_block: 32 * 1024,
        regs_per_sm: 65536,
        max_threads_per_sm: 2048,
        max_threads_per_block: 1024,
        warp_size: 64,
        launch_overhead_us: 8.0,
        fp16_speedup: 1.0,
    }
}

/// ARM Mali-G71 MP8 (Bifrost, HiKey 960): the paper's mobile platform.
pub fn mali_g71() -> DeviceProfile {
    DeviceProfile {
        name: "ARM Mali-G71 MP8",
        sm_count: 8,
        clock_ghz: 0.85,
        flops_per_cycle_per_sm: 32,
        mem_bandwidth_gbps: 13.2, // shared LPDDR4
        shared_per_sm: 32 * 1024,
        shared_per_block: 32 * 1024,
        regs_per_sm: 16384,
        max_threads_per_sm: 384,
        max_threads_per_block: 384,
        warp_size: 4,
        launch_overhead_us: 60.0, // mobile driver dispatch
        fp16_speedup: 1.9,        // Bifrost doubles FP16 rate
    }
}

/// All three paper platforms.
pub fn paper_devices() -> Vec<DeviceProfile> {
    vec![gtx_1080_ti(), rx_580(), mali_g71()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_flops_match_spec_sheets() {
        // 1080 Ti ≈ 11.3 TFLOPS.
        let p = gtx_1080_ti().peak_flops();
        assert!((p / 1e12 - 11.3).abs() < 0.2, "{p}");
        // RX 580 ≈ 5.8–6.2 TFLOPS.
        let p = rx_580().peak_flops();
        assert!((5.5e12..6.5e12).contains(&p), "{p}");
        // Mali G71 MP8 ≈ 0.2 TFLOPS.
        let p = mali_g71().peak_flops();
        assert!((0.15e12..0.3e12).contains(&p), "{p}");
    }

    #[test]
    fn platform_ordering() {
        // Desktop GPUs dwarf the mobile part in both compute and
        // bandwidth; the mobile part pays the largest launch overhead.
        let (nv, amd, mali) = (gtx_1080_ti(), rx_580(), mali_g71());
        assert!(nv.peak_flops() > amd.peak_flops());
        assert!(amd.peak_flops() > 10.0 * mali.peak_flops());
        assert!(mali.launch_overhead_us > 5.0 * nv.launch_overhead_us);
        assert!(nv.peak_bandwidth() > 30.0 * mali.peak_bandwidth());
    }

    #[test]
    fn saturation_threads_scale_with_size() {
        assert!(gtx_1080_ti().saturation_threads() > mali_g71().saturation_threads());
    }
}
