//! Functional plan execution.
//!
//! The simulator runs a [`KernelPlan`] kernel by kernel against real
//! buffers, honouring each kernel's data-layout contract (the scatter
//! layouts of §3.2.2). This validates that the *generated plan* — not
//! just the CPU engines — computes the right convolution, and it is
//! the execution backend the integration tests compare against direct
//! convolution.

use std::fmt;

use wino_conv::{
    conv_direct_f32, conv_im2col, conv_winograd, ConvError, TileTransformer, WinogradConfig,
    WinogradVariant,
};
use wino_gemm::{batched_sgemm, BatchedGemmShape};
use wino_ir::{KernelKind, KernelPlan};
use wino_symbolic::RecipeOptions;
use wino_tensor::{extract_input_tile, place_output_tile, tile_counts, Tensor4};
use wino_transform::{recipe_db, WinogradSpec};

/// Errors from functional plan execution.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// A kernel consumed a buffer no earlier kernel produced.
    MissingBuffer(&'static str),
    /// The kernel sequence does not form a recognized pipeline.
    UnsupportedPlan(String),
    /// An underlying engine failed.
    Conv(ConvError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MissingBuffer(b) => write!(f, "kernel consumes missing buffer {b}"),
            ExecError::UnsupportedPlan(msg) => write!(f, "unsupported plan: {msg}"),
            ExecError::Conv(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<ConvError> for ExecError {
    fn from(e: ConvError) -> Self {
        ExecError::Conv(e)
    }
}

impl From<wino_transform::TransformError> for ExecError {
    fn from(e: wino_transform::TransformError) -> Self {
        ExecError::Conv(ConvError::Transform(e))
    }
}

/// Executes `plan` functionally and returns the convolution output.
///
/// # Errors
/// [`ExecError`] on malformed plans or engine failures.
pub fn execute_plan(
    plan: &KernelPlan,
    input: &Tensor4<f32>,
    filters: &Tensor4<f32>,
) -> Result<Tensor4<f32>, ExecError> {
    let desc = &plan.desc;
    let kinds: Vec<&KernelKind> = plan.kernels.iter().map(|k| &k.kind).collect();
    match kinds.as_slice() {
        [KernelKind::DirectConv] => Ok(conv_direct_f32(input, filters, desc)?),
        [KernelKind::Im2col, KernelKind::Gemm { .. }] => Ok(conv_im2col(input, filters, desc)?),
        [KernelKind::FusedWinograd { m, .. }] => {
            let cfg = WinogradConfig::new(*m).with_variant(WinogradVariant::Fused);
            Ok(conv_winograd(input, filters, desc, &cfg)?)
        }
        [KernelKind::FilterTransform { m, r }, KernelKind::InputTransform { .. }, KernelKind::BatchedGemm {
            batches,
            m_dim,
            n_dim,
            k_dim,
        }, KernelKind::OutputTransform { .. }] => execute_nonfused_stages(
            plan, input, filters, *m, *r, *batches, *m_dim, *n_dim, *k_dim,
        ),
        _ => Err(ExecError::UnsupportedPlan(format!(
            "unrecognized kernel sequence in plan '{}'",
            plan.variant
        ))),
    }
}

/// Stage-by-stage non-fused execution through the kernels' scatter
/// layouts: `U'(ξ,k,c)`, `V'(ξ,c,p)`, `M(ξ,k,p)`.
#[allow(clippy::too_many_arguments)]
fn execute_nonfused_stages(
    plan: &KernelPlan,
    input: &Tensor4<f32>,
    filters: &Tensor4<f32>,
    m: usize,
    r: usize,
    batches: usize,
    m_dim: usize,
    n_dim: usize,
    k_dim: usize,
) -> Result<Tensor4<f32>, ExecError> {
    let desc = &plan.desc;
    let spec = WinogradSpec::new(m, r)?;
    let alpha = spec.alpha();
    let a2 = alpha * alpha;
    let (oh, ow) = (desc.out_h(), desc.out_w());
    let (th, tw) = tile_counts(oh, ow, m);
    let p_total = desc.batch * th * tw;
    let (kc, cc) = (desc.out_ch, desc.in_ch);
    // Cross-check the GEMM kernel's declared dims against the plan.
    if batches != a2 || m_dim != kc || n_dim != p_total || k_dim != cc {
        return Err(ExecError::UnsupportedPlan(format!(
            "batched GEMM dims ({batches},{m_dim},{n_dim},{k_dim}) disagree with \
             plan geometry ({a2},{kc},{p_total},{cc})"
        )));
    }
    let recipes = recipe_db().get(spec, RecipeOptions::optimized())?;

    // Kernel 1: filter transform → U'(ξ,k,c).
    let mut ft = TileTransformer::new(&recipes.filter);
    let mut u = vec![0.0f32; a2 * kc * cc];
    let mut tile = vec![0.0f32; a2];
    for k in 0..kc {
        for c in 0..cc {
            ft.transform(filters.plane(k, c), &mut tile);
            for (xi, &v) in tile.iter().enumerate() {
                u[(xi * kc + k) * cc + c] = v;
            }
        }
    }

    // Kernel 2: input transform → V'(ξ,c,p).
    let padded = input.pad_spatial(desc.pad);
    let mut it = TileTransformer::new(&recipes.input);
    let mut v = vec![0.0f32; a2 * cc * p_total];
    let mut in_tile = vec![0.0f32; a2];
    for n in 0..desc.batch {
        for ty in 0..th {
            for tx in 0..tw {
                let p = (n * th + ty) * tw + tx;
                for c in 0..cc {
                    extract_input_tile(&padded, n, c, ty, tx, m, alpha, &mut in_tile);
                    it.transform(&in_tile, &mut tile);
                    for (xi, &val) in tile.iter().enumerate() {
                        v[(xi * cc + c) * p_total + p] = val;
                    }
                }
            }
        }
    }

    // Kernel 3: batched SGEMM → M(ξ,k,p).
    let shape = BatchedGemmShape {
        batches: a2,
        m: kc,
        k: cc,
        n: p_total,
    };
    let mut mm = vec![0.0f32; shape.c_len()];
    batched_sgemm(&shape, &u, &v, &mut mm);

    // Kernel 4: output transform + placement.
    let mut ot = TileTransformer::new(&recipes.output);
    let mut out = Tensor4::<f32>::zeros(desc.batch, kc, oh, ow);
    let mut m_tile = vec![0.0f32; a2];
    let mut y_tile = vec![0.0f32; m * m];
    for k in 0..kc {
        for n in 0..desc.batch {
            for ty in 0..th {
                for tx in 0..tw {
                    let p = (n * th + ty) * tw + tx;
                    for (xi, slot) in m_tile.iter_mut().enumerate() {
                        *slot = mm[(xi * kc + k) * p_total + p];
                    }
                    ot.transform(&m_tile, &mut y_tile);
                    place_output_tile(&mut out, n, k, ty, tx, m, &y_tile);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wino_tensor::ConvDesc;

    fn close(a: &Tensor4<f32>, b: &Tensor4<f32>) -> bool {
        a.dims() == b.dims()
            && a.data()
                .iter()
                .zip(b.data())
                .all(|(x, y)| (x - y).abs() <= 1e-3 * (1.0 + y.abs()))
    }

    fn case(desc: &ConvDesc, seed: u64) -> (Tensor4<f32>, Tensor4<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            Tensor4::random(
                desc.batch, desc.in_ch, desc.in_h, desc.in_w, -1.0, 1.0, &mut rng,
            ),
            Tensor4::random(
                desc.out_ch,
                desc.in_ch,
                desc.ksz,
                desc.ksz,
                -1.0,
                1.0,
                &mut rng,
            ),
        )
    }

    // Plan construction lives in wino-codegen, which this crate must
    // not depend on; build a minimal hand-rolled plan instead.
    fn hand_plan(desc: ConvDesc, kinds: Vec<KernelKind>) -> KernelPlan {
        use wino_ir::{Backend, CostProfile, Kernel, LaunchConfig};
        KernelPlan {
            desc,
            variant: "hand".into(),
            kernels: kinds
                .into_iter()
                .map(|kind| Kernel {
                    name: kind.tag().to_string(),
                    backend: Backend::Cuda,
                    kind,
                    launch: LaunchConfig::linear(1024, 256),
                    cost: CostProfile::compute_only(1),
                    source: "s".into(),
                })
                .collect(),
        }
    }

    #[test]
    fn nonfused_plan_executes_correctly() {
        let desc = ConvDesc::new(3, 1, 1, 4, 1, 10, 10, 3);
        let (input, filt) = case(&desc, 50);
        let (th, tw) = tile_counts(desc.out_h(), desc.out_w(), 4);
        let p = desc.batch * th * tw;
        let plan = hand_plan(
            desc,
            vec![
                KernelKind::FilterTransform { m: 4, r: 3 },
                KernelKind::InputTransform { m: 4, r: 3 },
                KernelKind::BatchedGemm {
                    batches: 36,
                    m_dim: 4,
                    n_dim: p,
                    k_dim: 3,
                },
                KernelKind::OutputTransform { m: 4, r: 3 },
            ],
        );
        let got = execute_plan(&plan, &input, &filt).unwrap();
        let expect = conv_direct_f32(&input, &filt, &desc).unwrap();
        assert!(close(&got, &expect));
    }

    #[test]
    fn fused_and_baseline_plans_execute() {
        let desc = ConvDesc::new(3, 1, 1, 4, 1, 8, 8, 2);
        let (input, filt) = case(&desc, 51);
        let expect = conv_direct_f32(&input, &filt, &desc).unwrap();
        for kinds in [
            vec![KernelKind::DirectConv],
            vec![
                KernelKind::Im2col,
                KernelKind::Gemm {
                    m_dim: 4,
                    n_dim: 64,
                    k_dim: 18,
                },
            ],
            vec![KernelKind::FusedWinograd { m: 2, r: 3 }],
        ] {
            let plan = hand_plan(desc, kinds);
            let got = execute_plan(&plan, &input, &filt).unwrap();
            assert!(close(&got, &expect), "plan failed");
        }
    }

    #[test]
    fn mismatched_gemm_dims_rejected() {
        let desc = ConvDesc::new(3, 1, 1, 4, 1, 10, 10, 3);
        let (input, filt) = case(&desc, 52);
        let plan = hand_plan(
            desc,
            vec![
                KernelKind::FilterTransform { m: 4, r: 3 },
                KernelKind::InputTransform { m: 4, r: 3 },
                KernelKind::BatchedGemm {
                    batches: 36,
                    m_dim: 4,
                    n_dim: 1,
                    k_dim: 3,
                },
                KernelKind::OutputTransform { m: 4, r: 3 },
            ],
        );
        assert!(matches!(
            execute_plan(&plan, &input, &filt),
            Err(ExecError::UnsupportedPlan(_))
        ));
    }

    #[test]
    fn unrecognized_sequence_rejected() {
        let desc = ConvDesc::new(3, 1, 1, 4, 1, 8, 8, 2);
        let (input, filt) = case(&desc, 53);
        let plan = hand_plan(desc, vec![KernelKind::Im2col]);
        assert!(matches!(
            execute_plan(&plan, &input, &filt),
            Err(ExecError::UnsupportedPlan(_))
        ));
    }
}
