//! # wino-gpu — the simulated GPU substrate
//!
//! No GPU hardware is available to this reproduction, so the paper's
//! three platforms (Table 2) are *modelled*: device profiles from
//! public spec sheets, the classic occupancy calculation, and a
//! roofline timing model whose inputs are the static cost descriptors
//! the meta-program derives while generating each kernel. A functional
//! executor runs generated plans against real buffers so correctness
//! and performance are validated separately (see DESIGN.md §2 for the
//! substitution argument).

#![warn(missing_docs)]

mod cost;
mod device;
mod exec;
mod occupancy;

pub use cost::{estimate_kernel, estimate_plan, estimate_plan_ms, KernelTime};
pub use device::{gtx_1080_ti, mali_g71, paper_devices, rx_580, DeviceProfile};
pub use exec::{execute_plan, ExecError};
pub use occupancy::{occupancy, LaunchRejection};
