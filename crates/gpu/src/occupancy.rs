//! Occupancy model: how many blocks of a kernel fit on one SM.

use wino_ir::LaunchConfig;

use crate::device::DeviceProfile;

/// Why a kernel cannot run at all on a device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LaunchRejection {
    /// Block exceeds the device's thread-per-block limit.
    TooManyThreads {
        /// Requested threads.
        requested: usize,
        /// Device limit.
        limit: usize,
    },
    /// Block needs more shared memory than any block may use.
    SharedMemoryExceeded {
        /// Requested bytes.
        requested: usize,
        /// Device limit.
        limit: usize,
    },
    /// One block's registers exceed the SM register file.
    RegistersExceeded {
        /// Requested registers for the whole block.
        requested: usize,
        /// Device register file.
        limit: usize,
    },
}

impl std::fmt::Display for LaunchRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchRejection::TooManyThreads { requested, limit } => {
                write!(
                    f,
                    "block of {requested} threads exceeds device limit {limit}"
                )
            }
            LaunchRejection::SharedMemoryExceeded { requested, limit } => {
                write!(
                    f,
                    "block needs {requested} B shared memory, limit {limit} B"
                )
            }
            LaunchRejection::RegistersExceeded { requested, limit } => {
                write!(f, "block needs {requested} registers, SM has {limit}")
            }
        }
    }
}

/// Fraction of the SM's thread capacity a kernel keeps resident,
/// limited by threads, shared memory, and registers — the classic
/// CUDA occupancy calculation.
///
/// # Errors
/// [`LaunchRejection`] when the kernel cannot launch at all (this is
/// how the auto-tuner discovers that a fused configuration exceeds the
/// device's shared memory, §3.2.2).
pub fn occupancy(device: &DeviceProfile, launch: &LaunchConfig) -> Result<f64, LaunchRejection> {
    let threads = launch.threads_per_block().max(1);
    if threads > device.max_threads_per_block {
        return Err(LaunchRejection::TooManyThreads {
            requested: threads,
            limit: device.max_threads_per_block,
        });
    }
    if launch.shared_mem_bytes > device.shared_per_block {
        return Err(LaunchRejection::SharedMemoryExceeded {
            requested: launch.shared_mem_bytes,
            limit: device.shared_per_block,
        });
    }
    let block_regs = launch.regs_per_thread * threads;
    if block_regs > device.regs_per_sm {
        return Err(LaunchRejection::RegistersExceeded {
            requested: block_regs,
            limit: device.regs_per_sm,
        });
    }
    let by_threads = device.max_threads_per_sm / threads;
    let by_shared = device
        .shared_per_sm
        .checked_div(launch.shared_mem_bytes)
        .unwrap_or(usize::MAX);
    let by_regs = device.regs_per_sm / block_regs.max(1);
    let blocks = by_threads.min(by_shared).min(by_regs);
    if blocks == 0 {
        // Fits per-block limits but not alongside anything: runs one
        // block per SM at reduced residency.
        return Ok(threads as f64 / device.max_threads_per_sm as f64);
    }
    Ok(((blocks * threads) as f64 / device.max_threads_per_sm as f64).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::gtx_1080_ti;
    use wino_ir::Dim3;

    fn launch(threads: usize, shared: usize, regs: usize) -> LaunchConfig {
        LaunchConfig {
            grid: Dim3::linear(1024),
            block: Dim3::linear(threads),
            shared_mem_bytes: shared,
            regs_per_thread: regs,
        }
    }

    #[test]
    fn light_kernel_reaches_full_occupancy() {
        let occ = occupancy(&gtx_1080_ti(), &launch(256, 0, 24)).unwrap();
        assert_eq!(occ, 1.0);
    }

    #[test]
    fn shared_memory_limits_occupancy() {
        // 48 KB/block on a 96 KB SM: only 2 blocks of 256 threads →
        // 512 / 2048 = 25%.
        let occ = occupancy(&gtx_1080_ti(), &launch(256, 48 * 1024, 24)).unwrap();
        assert!((occ - 0.25).abs() < 1e-9, "{occ}");
    }

    #[test]
    fn registers_limit_occupancy() {
        // 128 regs/thread × 512 threads = 64Ki regs: one block per SM.
        let occ = occupancy(&gtx_1080_ti(), &launch(512, 0, 128)).unwrap();
        assert!((occ - 0.25).abs() < 1e-9, "{occ}");
    }

    #[test]
    fn oversized_block_rejected() {
        assert!(matches!(
            occupancy(&gtx_1080_ti(), &launch(2048, 0, 16)),
            Err(LaunchRejection::TooManyThreads { .. })
        ));
        assert!(matches!(
            occupancy(&gtx_1080_ti(), &launch(256, 64 * 1024, 16)),
            Err(LaunchRejection::SharedMemoryExceeded { .. })
        ));
        assert!(matches!(
            occupancy(&gtx_1080_ti(), &launch(1024, 0, 70)),
            Err(LaunchRejection::RegistersExceeded { .. })
        ));
    }

    #[test]
    fn occupancy_never_exceeds_one() {
        let occ = occupancy(&gtx_1080_ti(), &launch(32, 0, 8)).unwrap();
        assert!(occ <= 1.0);
    }
}
