//! Analytic kernel and plan timing.
//!
//! `time(kernel) = launch_overhead + max(compute, memory)` — a
//! roofline with three corrections derived from the kernel descriptor:
//! occupancy (latency hiding), device saturation (small grids cannot
//! fill a big GPU), and the generator's control-overhead factor
//! (loop/branch instructions the unroller removes).

use wino_ir::{Kernel, KernelPlan};

use crate::device::DeviceProfile;
use crate::occupancy::{occupancy, LaunchRejection};

/// Time estimate breakdown for one kernel, in seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelTime {
    /// Compute-bound time.
    pub compute: f64,
    /// Memory-bound time.
    pub memory: f64,
    /// Fixed launch overhead.
    pub launch: f64,
    /// Achieved occupancy.
    pub occupancy: f64,
}

impl KernelTime {
    /// Total wall time of the kernel.
    pub fn total(&self) -> f64 {
        self.launch + self.compute.max(self.memory)
    }
}

/// Estimates one kernel's runtime on `device`.
///
/// # Errors
/// [`LaunchRejection`] when the kernel cannot launch on this device —
/// the signal the variant selector uses to fall back to the non-fused
/// implementation (§3.2.2).
pub fn estimate_kernel(
    device: &DeviceProfile,
    kernel: &Kernel,
) -> Result<KernelTime, LaunchRejection> {
    let occ = occupancy(device, &kernel.launch)?;
    // Half occupancy is generally enough to hide latency; below that,
    // throughput degrades roughly linearly.
    let occ_eff = (occ / 0.5).min(1.0);
    // A grid smaller than the device leaves SMs idle.
    let saturation =
        (kernel.launch.total_threads() as f64 / device.saturation_threads() as f64).min(1.0);
    let eff = (occ_eff * saturation).max(1e-3);
    let compute =
        kernel.cost.flops as f64 * kernel.cost.control_overhead / (device.peak_flops() * eff);
    let memory = kernel.cost.global_bytes() as f64
        / (device.peak_bandwidth() * kernel.cost.coalescing * saturation.max(0.25));
    Ok(KernelTime {
        compute,
        memory,
        launch: device.launch_overhead_us * 1e-6,
        occupancy: occ,
    })
}

/// Estimates a full plan (sum over kernels), in seconds.
///
/// # Errors
/// Propagates the first launch rejection.
pub fn estimate_plan(device: &DeviceProfile, plan: &KernelPlan) -> Result<f64, LaunchRejection> {
    let mut total = 0.0;
    for k in &plan.kernels {
        total += estimate_kernel(device, k)?.total();
    }
    Ok(total)
}

/// Estimate in milliseconds (the unit of every figure in the paper).
///
/// # Errors
/// Propagates launch rejections.
pub fn estimate_plan_ms(device: &DeviceProfile, plan: &KernelPlan) -> Result<f64, LaunchRejection> {
    Ok(estimate_plan(device, plan)? * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{gtx_1080_ti, mali_g71};
    use wino_ir::{Backend, CostProfile, KernelKind, LaunchConfig};

    fn kernel(flops: u64, bytes: u64, threads_total: usize) -> Kernel {
        Kernel {
            name: "k".into(),
            backend: Backend::Cuda,
            kind: KernelKind::DirectConv,
            launch: LaunchConfig::linear(threads_total, 256),
            cost: CostProfile {
                flops,
                global_load_bytes: bytes,
                global_store_bytes: 0,
                shared_bytes: 0,
                coalescing: 1.0,
                control_overhead: 1.0,
            },
            source: "src".into(),
        }
    }

    #[test]
    fn compute_bound_kernel_tracks_peak() {
        let dev = gtx_1080_ti();
        // 1e9 FLOPs, negligible memory, saturating grid.
        let k = kernel(1_000_000_000, 1024, dev.saturation_threads() * 2);
        let t = estimate_kernel(&dev, &k).unwrap();
        let ideal = 1e9 / dev.peak_flops();
        assert!((t.compute - ideal).abs() / ideal < 0.05);
        assert!(t.compute > t.memory);
    }

    #[test]
    fn memory_bound_kernel_tracks_bandwidth() {
        let dev = gtx_1080_ti();
        // 1 GB of traffic, trivial compute.
        let k = kernel(1000, 1_000_000_000, dev.saturation_threads() * 2);
        let t = estimate_kernel(&dev, &k).unwrap();
        let ideal = 1e9 / dev.peak_bandwidth();
        assert!((t.memory - ideal).abs() / ideal < 0.05);
        assert!(t.total() > t.compute);
    }

    #[test]
    fn small_grids_underutilize() {
        let dev = gtx_1080_ti();
        let big = kernel(1_000_000_000, 0, dev.saturation_threads() * 2);
        let small = kernel(1_000_000_000, 0, 512);
        let tb = estimate_kernel(&dev, &big).unwrap();
        let ts = estimate_kernel(&dev, &small).unwrap();
        assert!(ts.compute > 10.0 * tb.compute);
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let dev = mali_g71();
        let k = kernel(1000, 1000, 1024);
        let t = estimate_kernel(&dev, &k).unwrap();
        assert!(t.launch > t.compute + t.memory);
        assert!((t.launch - 60e-6).abs() < 1e-9);
    }

    #[test]
    fn plan_time_sums_kernels() {
        let dev = gtx_1080_ti();
        let plan = KernelPlan {
            desc: wino_tensor::ConvDesc::new(3, 1, 1, 8, 1, 8, 8, 4),
            variant: "v".into(),
            kernels: vec![kernel(1_000_000, 0, 100_000), kernel(2_000_000, 0, 100_000)],
        };
        let single: f64 = plan
            .kernels
            .iter()
            .map(|k| estimate_kernel(&dev, k).unwrap().total())
            .sum();
        assert!((estimate_plan(&dev, &plan).unwrap() - single).abs() < 1e-12);
        assert!(estimate_plan_ms(&dev, &plan).unwrap() > 0.0);
    }

    #[test]
    fn control_overhead_slows_compute() {
        let dev = gtx_1080_ti();
        let mut k = kernel(1_000_000_000, 0, dev.saturation_threads() * 2);
        let base = estimate_kernel(&dev, &k).unwrap().compute;
        k.cost.control_overhead = 1.5;
        let slowed = estimate_kernel(&dev, &k).unwrap().compute;
        assert!((slowed / base - 1.5).abs() < 1e-6);
    }
}
