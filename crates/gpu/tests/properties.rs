//! Property tests for the device model: occupancy and timing must be
//! total, bounded, and monotone over arbitrary launch configurations.

use proptest::prelude::*;
use wino_gpu::{estimate_kernel, occupancy, paper_devices};
use wino_ir::{Backend, CostProfile, Dim3, Kernel, KernelKind, LaunchConfig};

fn arb_launch() -> impl Strategy<Value = LaunchConfig> {
    (1usize..4096, 1usize..1024, 0usize..96 * 1024, 1usize..256).prop_map(
        |(grid, block, shared, regs)| LaunchConfig {
            grid: Dim3::linear(grid),
            block: Dim3::linear(block),
            shared_mem_bytes: shared,
            regs_per_thread: regs,
        },
    )
}

fn kernel_with(launch: LaunchConfig, flops: u64, bytes: u64) -> Kernel {
    Kernel {
        name: "prop".into(),
        backend: Backend::Cuda,
        kind: KernelKind::DirectConv,
        launch,
        cost: CostProfile {
            flops,
            global_load_bytes: bytes,
            global_store_bytes: 0,
            shared_bytes: 0,
            coalescing: 0.9,
            control_overhead: 1.1,
        },
        source: "s".into(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Occupancy, when defined, is a fraction in (0, 1]; rejections
    /// never panic.
    #[test]
    fn occupancy_is_a_fraction(launch in arb_launch()) {
        for device in paper_devices() {
            if let Ok(occ) = occupancy(&device, &launch) { prop_assert!(occ > 0.0 && occ <= 1.0, "{}: {occ}", device.name) }
        }
    }

    /// Lower resource usage never lowers occupancy.
    #[test]
    fn occupancy_is_monotone_in_resources(launch in arb_launch()) {
        let device = wino_gpu::gtx_1080_ti();
        let lighter = LaunchConfig {
            shared_mem_bytes: launch.shared_mem_bytes / 2,
            regs_per_thread: (launch.regs_per_thread / 2).max(1),
            ..launch
        };
        if let (Ok(base), Ok(light)) =
            (occupancy(&device, &launch), occupancy(&device, &lighter))
        {
            prop_assert!(light >= base - 1e-12, "lighter {light} < base {base}");
        }
    }

    /// Time estimates are finite, positive, and monotone in FLOPs.
    #[test]
    fn time_is_finite_and_monotone(
        launch in arb_launch(),
        flops in 1u64..10_000_000_000,
        bytes in 0u64..1_000_000_000,
    ) {
        let device = wino_gpu::gtx_1080_ti();
        let k1 = kernel_with(launch, flops, bytes);
        let k2 = kernel_with(launch, flops.saturating_mul(2), bytes);
        if let (Ok(t1), Ok(t2)) = (estimate_kernel(&device, &k1), estimate_kernel(&device, &k2)) {
            prop_assert!(t1.total().is_finite() && t1.total() > 0.0);
            prop_assert!(t2.compute >= t1.compute - 1e-18);
            prop_assert!(t2.total() >= t1.total() - 1e-12);
        }
    }

    /// A faster device (more SMs, same everything else) is never
    /// slower on compute-bound kernels.
    #[test]
    fn bigger_device_is_faster(launch in arb_launch(), flops in 1_000_000u64..1_000_000_000) {
        let small = wino_gpu::mali_g71();
        let big = wino_gpu::gtx_1080_ti();
        let k = kernel_with(launch, flops, 0);
        if let (Ok(ts), Ok(tb)) = (estimate_kernel(&small, &k), estimate_kernel(&big, &k)) {
            prop_assert!(
                tb.compute <= ts.compute + 1e-15,
                "1080Ti {} vs Mali {}", tb.compute, ts.compute
            );
        }
    }
}
