//! The serving loop: submission queue, batch coalescing, execution.
//!
//! Threads and channels only (no async): callers [`submit`] requests
//! onto a bounded queue; a scheduler thread coalesces same-layer
//! requests into dynamic batches under `max_batch`/`max_wait`; a pool
//! of executor threads runs each batch through [`GuardedConv`] with
//! the layer's warm filter transform. Admission control sheds work at
//! capacity ([`ServeError::Overloaded`]), per-request deadlines demote
//! near-late members to the layer's terminal fallback engine, and
//! [`Server::shutdown`] drains: in-flight requests complete, late
//! submissions get [`ServeError::ShuttingDown`].
//!
//! Bit-identity: coalescing stacks inputs along the batch dimension,
//! and every engine treats images independently (tiles never cross
//! images), so a batched response is bit-identical to a one-at-a-time
//! run of the same plan.
//!
//! [`submit`]: Server::submit

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel;
use wino_guard::{Engine, GuardedConv, GuardrailPolicy};
use wino_tensor::Tensor4;

use crate::error::ServeError;
use crate::registry::{LayerPlan, PlanRegistry};
use crate::stats::{RequestTrace, ServerStats, StatsInner};

static ENQUEUED: wino_probe::Counter = wino_probe::Counter::new("serve.enqueued");
static SHED: wino_probe::Counter = wino_probe::Counter::new("serve.shed");
static BATCHES: wino_probe::Counter = wino_probe::Counter::new("serve.batches");
static BATCHED: wino_probe::Counter = wino_probe::Counter::new("serve.batched");
static EXECUTED: wino_probe::Counter = wino_probe::Counter::new("serve.executed");
static DEADLINE_DEMOTIONS: wino_probe::Counter =
    wino_probe::Counter::new("serve.deadline_demotions");
static QUEUE_DEPTH: wino_probe::Gauge = wino_probe::Gauge::new("serve.queue_depth");
static H_QUEUE_WAIT: wino_probe::Histogram = wino_probe::Histogram::new("serve.queue_wait");
static H_EXECUTE: wino_probe::Histogram = wino_probe::Histogram::new("serve.execute");
static H_E2E: wino_probe::Histogram = wino_probe::Histogram::new("serve.e2e");

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Largest coalesced batch (requests, not images).
    pub max_batch: usize,
    /// Longest a request waits for batch-mates before dispatch. Zero
    /// dispatches every request immediately (no coalescing).
    pub max_wait: Duration,
    /// Submission-queue capacity; requests beyond it are shed.
    pub queue_capacity: usize,
    /// Executor thread count.
    pub executors: usize,
    /// Deadline applied to requests that carry none.
    pub default_deadline: Option<Duration>,
    /// Margin subtracted from deadlines when deciding demotion: a
    /// request within `slack` of its deadline at execution time runs
    /// on the terminal fallback engine instead of the full chain.
    pub deadline_slack: Duration,
    /// Guardrails applied to every execution.
    pub policy: GuardrailPolicy,
    /// Interval between periodic metric emissions when `WINO_METRICS`
    /// is active (the emitter thread is only spawned then).
    pub metrics_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch: 5,
            max_wait: Duration::from_millis(2),
            queue_capacity: 256,
            executors: 1,
            default_deadline: None,
            deadline_slack: Duration::from_micros(500),
            policy: GuardrailPolicy::full(),
            metrics_interval: Duration::from_secs(5),
        }
    }
}

/// One inference request.
pub struct ConvRequest {
    /// Registered layer name.
    pub layer: String,
    /// Input images `(N, C, H, W)`; `C/H/W` must match the layer,
    /// any `N ≥ 1`.
    pub input: Tensor4<f32>,
    /// Time budget from submission; near-late requests demote to the
    /// terminal fallback engine. `None` uses the server default.
    pub deadline: Option<Duration>,
}

impl ConvRequest {
    /// Request with the server's default deadline.
    pub fn new(layer: impl Into<String>, input: Tensor4<f32>) -> Self {
        ConvRequest {
            layer: layer.into(),
            input,
            deadline: None,
        }
    }

    /// Sets an explicit deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// One completed request.
#[derive(Clone, Debug)]
pub struct ConvResponse {
    /// Output `(N, K, H_out, W_out)` for this request's images.
    pub output: Tensor4<f32>,
    /// Which engine produced it (after any demotions).
    pub served_by: Engine,
    /// Size of the coalesced batch this request rode in (1 when it
    /// executed alone).
    pub batched_with: usize,
    /// The full per-request trace (queue wait, batch peers, phase
    /// breakdown).
    pub trace: RequestTrace,
}

/// Caller-side handle for an admitted request.
pub struct ResponseHandle {
    id: u64,
    rx: channel::Receiver<Result<ConvResponse, ServeError>>,
}

impl ResponseHandle {
    /// The request id assigned at submission (matches
    /// [`RequestTrace::id`] in the response and in
    /// [`ServerStats::recent`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the response arrives. A server torn down before
    /// executing the request yields [`ServeError::ShuttingDown`].
    pub fn wait(self) -> Result<ConvResponse, ServeError> {
        self.rx.recv().map_err(|_| ServeError::ShuttingDown)?
    }
}

/// A request admitted to the queue.
struct Pending {
    id: u64,
    plan: Arc<LayerPlan>,
    input: Tensor4<f32>,
    enqueued_at: Instant,
    deadline: Option<Duration>,
    tx: channel::Sender<Result<ConvResponse, ServeError>>,
}

struct QueueState {
    open: bool,
    pending: VecDeque<Pending>,
}

/// The submission queue. `std::sync` primitives on purpose: the
/// scheduler needs a timed condition wait, which the `parking_lot`
/// shim does not provide.
struct SubmissionQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

/// The batching inference server.
///
/// Dropping the server shuts it down (idempotent with an explicit
/// [`Server::shutdown`]).
pub struct Server {
    registry: Arc<PlanRegistry>,
    config: ServerConfig,
    queue: Arc<SubmissionQueue>,
    stats: Arc<StatsInner>,
    scheduler: Mutex<Option<JoinHandle<()>>>,
    executors: Mutex<Vec<JoinHandle<()>>>,
    emitter: Mutex<Option<wino_telemetry::PeriodicEmitter>>,
    shutting_down: AtomicBool,
}

impl Server {
    /// Starts the scheduler and executor threads (plus the periodic
    /// metrics emitter when `WINO_METRICS` is active).
    pub fn start(registry: Arc<PlanRegistry>, config: ServerConfig) -> Self {
        let queue = Arc::new(SubmissionQueue {
            state: Mutex::new(QueueState {
                open: true,
                pending: VecDeque::new(),
            }),
            cv: Condvar::new(),
        });
        let stats = Arc::new(StatsInner::new());
        // The batch channel's only sender lives on the scheduler
        // thread, so executor `recv` disconnects exactly when the
        // scheduler exits (after the drain loop empties the queue).
        let (batch_tx, batch_rx) = channel::bounded::<Vec<Pending>>(config.executors.max(1) * 2);
        let scheduler = {
            let queue = Arc::clone(&queue);
            let max_batch = config.max_batch.max(1);
            let max_wait = config.max_wait;
            std::thread::spawn(move || scheduler_loop(&queue, max_batch, max_wait, &batch_tx))
        };
        let executors = (0..config.executors.max(1))
            .map(|_| {
                let rx = batch_rx.clone();
                let policy = config.policy;
                let slack = config.deadline_slack;
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || {
                    while let Ok(batch) = rx.recv() {
                        execute_batch(batch, policy, slack, &stats);
                    }
                })
            })
            .collect();
        let emitter = if wino_telemetry::mode() != wino_telemetry::MetricsMode::Off {
            Some(wino_telemetry::PeriodicEmitter::start(
                config.metrics_interval,
                "serve.periodic",
            ))
        } else {
            None
        };
        Server {
            registry,
            config,
            queue,
            stats,
            scheduler: Mutex::new(Some(scheduler)),
            executors: Mutex::new(executors),
            emitter: Mutex::new(emitter),
            shutting_down: AtomicBool::new(false),
        }
    }

    /// The plan registry this server executes against.
    pub fn registry(&self) -> &Arc<PlanRegistry> {
        &self.registry
    }

    /// Admits a request, returning a handle to wait on.
    ///
    /// # Errors
    /// [`ServeError::UnknownLayer`] for unregistered names,
    /// [`ServeError::Shape`] on input mismatch,
    /// [`ServeError::ShuttingDown`] after drain began, and
    /// [`ServeError::Overloaded`] when the queue is full (the request
    /// is shed; nothing was enqueued).
    pub fn submit(&self, req: ConvRequest) -> Result<ResponseHandle, ServeError> {
        let plan = self
            .registry
            .get(&req.layer)
            .ok_or_else(|| ServeError::UnknownLayer(req.layer.clone()))?;
        let (n, c, h, w) = req.input.dims();
        let d = &plan.desc;
        if n == 0 || c != d.in_ch || h != d.in_h || w != d.in_w {
            return Err(ServeError::Shape(format!(
                "input ({n}, {c}, {h}, {w}) does not match layer {:?} expecting \
                 (N, {}, {}, {})",
                plan.name, d.in_ch, d.in_h, d.in_w
            )));
        }
        let (tx, rx) = channel::bounded(1);
        let deadline = req.deadline.or(self.config.default_deadline);
        let id = self.stats.assign_id();
        {
            let mut st = self.queue.state.lock().expect("queue mutex poisoned");
            if !st.open {
                return Err(ServeError::ShuttingDown);
            }
            if st.pending.len() >= self.config.queue_capacity {
                SHED.add(1);
                return Err(ServeError::Overloaded {
                    depth: st.pending.len(),
                    capacity: self.config.queue_capacity,
                });
            }
            st.pending.push_back(Pending {
                id,
                plan,
                input: req.input,
                enqueued_at: Instant::now(),
                deadline,
                tx,
            });
            ENQUEUED.add(1);
            QUEUE_DEPTH.set(st.pending.len() as i64);
        }
        self.queue.cv.notify_all();
        Ok(ResponseHandle { id, rx })
    }

    /// Convenience: submit and block for the response.
    ///
    /// # Errors
    /// As [`Server::submit`] and [`ResponseHandle::wait`].
    pub fn infer(&self, req: ConvRequest) -> Result<ConvResponse, ServeError> {
        self.submit(req)?.wait()
    }

    /// Current submission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue
            .state
            .lock()
            .expect("queue mutex poisoned")
            .pending
            .len()
    }

    /// Point-in-time statistics snapshot: the serve counters, current
    /// queue depth, and the recent request traces. Counter values
    /// come from the process-global probe registry (see
    /// [`ServerStats`] for the aggregation caveat).
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            enqueued: ENQUEUED.get(),
            shed: SHED.get(),
            batches: BATCHES.get(),
            batched: BATCHED.get(),
            executed: EXECUTED.get(),
            deadline_demotions: DEADLINE_DEMOTIONS.get(),
            queue_depth: self.queue_depth(),
            recent: self.stats.recent(),
        }
    }

    /// Prometheus-style text exposition of every live metric
    /// (counters, gauges, histograms), regardless of the
    /// `WINO_METRICS` mode.
    pub fn render_metrics(&self) -> String {
        wino_telemetry::render_prometheus()
    }

    /// Drains and stops: closes admission, lets the scheduler flush
    /// every pending batch, waits for executors to finish in-flight
    /// work. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let mut st = self.queue.state.lock().expect("queue mutex poisoned");
            st.open = false;
        }
        self.queue.cv.notify_all();
        if let Some(handle) = self
            .scheduler
            .lock()
            .expect("scheduler mutex poisoned")
            .take()
        {
            let _ = handle.join();
        }
        // The scheduler owned the only batch sender; executors drain
        // the channel and observe the disconnect.
        for handle in self
            .executors
            .lock()
            .expect("executor mutex poisoned")
            .drain(..)
        {
            let _ = handle.join();
        }
        // With every thread joined nothing can admit or extract work:
        // fail anything the scheduler left behind (it only leaves the
        // queue non-empty if it died) and pin the depth gauge at zero
        // so `serve.queue_depth` always drains with the server.
        let mut st = self.queue.state.lock().expect("queue mutex poisoned");
        for p in st.pending.drain(..) {
            let _ = p.tx.send(Err(ServeError::ShuttingDown));
        }
        QUEUE_DEPTH.set(0);
        drop(st);
        // Stop the periodic emitter, then emit one final snapshot so
        // a `text:path` scrape file always reflects the drained state.
        if let Some(emitter) = self.emitter.lock().expect("emitter mutex poisoned").take() {
            emitter.stop();
        }
        wino_telemetry::emit("serve.shutdown");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Scheduler: coalesce same-layer requests into batches. Dispatches a
/// batch when `max_batch` same-layer requests are waiting, when the
/// head request has waited `max_wait`, or immediately during drain.
fn scheduler_loop(
    queue: &SubmissionQueue,
    max_batch: usize,
    max_wait: Duration,
    batch_tx: &channel::Sender<Vec<Pending>>,
) {
    let mut st = queue.state.lock().expect("queue mutex poisoned");
    loop {
        if st.pending.is_empty() {
            if !st.open {
                return; // drained
            }
            st = queue.cv.wait(st).expect("queue mutex poisoned");
            continue;
        }
        let head_layer = st.pending[0].plan.name.clone();
        let same = st
            .pending
            .iter()
            .filter(|p| p.plan.name == head_layer)
            .count();
        let age = st.pending[0].enqueued_at.elapsed();
        if same < max_batch && age < max_wait && st.open {
            let (guard, _timeout) = queue
                .cv
                .wait_timeout(st, max_wait.saturating_sub(age))
                .expect("queue mutex poisoned");
            st = guard;
            continue;
        }
        // Extract up to max_batch same-layer requests, FIFO order.
        let mut batch = Vec::with_capacity(same.min(max_batch));
        let mut i = 0;
        while i < st.pending.len() && batch.len() < max_batch {
            if st.pending[i].plan.name == head_layer {
                batch.push(st.pending.remove(i).expect("index in bounds"));
            } else {
                i += 1;
            }
        }
        QUEUE_DEPTH.set(st.pending.len() as i64);
        drop(st);
        if let Err(channel::SendError(batch)) = batch_tx.send(batch) {
            // Executors are gone (every receiver dropped, i.e. the
            // pool died). Nothing can serve the extracted batch or
            // anything still queued: fail them all explicitly so
            // waiters unblock, and zero the depth gauge rather than
            // leaving it stuck at the last set() value.
            for p in batch {
                let _ = p.tx.send(Err(ServeError::ShuttingDown));
            }
            let mut st = queue.state.lock().expect("queue mutex poisoned");
            for p in st.pending.drain(..) {
                let _ = p.tx.send(Err(ServeError::ShuttingDown));
            }
            QUEUE_DEPTH.set(0);
            return;
        }
        st = queue.state.lock().expect("queue mutex poisoned");
    }
}

/// Executes one coalesced batch: near-deadline members demote to the
/// terminal fallback engine, everyone else runs the full chain with
/// the layer's warm filters. Queue wait is recorded here, at
/// execution start, for every member — so `serve.queue_wait`'s count
/// always equals the number of requests that reached an executor.
fn execute_batch(
    batch: Vec<Pending>,
    policy: GuardrailPolicy,
    slack: Duration,
    stats: &StatsInner,
) {
    if batch.is_empty() {
        return;
    }
    BATCHES.add(1);
    if batch.len() > 1 {
        BATCHED.add(batch.len() as u64);
    }
    let batch_ids: Vec<u64> = batch.iter().map(|p| p.id).collect();
    let plan = Arc::clone(&batch[0].plan);
    let mut on_time = Vec::new();
    let mut late = Vec::new();
    for p in batch {
        H_QUEUE_WAIT.record_duration(p.enqueued_at.elapsed());
        let is_late = p
            .deadline
            .is_some_and(|d| p.enqueued_at.elapsed() + slack >= d);
        if is_late {
            DEADLINE_DEMOTIONS.add(1);
            late.push(p);
        } else {
            on_time.push(p);
        }
    }
    run_group(
        &plan,
        on_time,
        plan.chain.clone(),
        policy,
        &batch_ids,
        false,
        stats,
    );
    run_group(
        &plan,
        late,
        vec![plan.tail_engine()],
        policy,
        &batch_ids,
        true,
        stats,
    );
}

/// Runs one group of requests as a single stacked convolution and
/// scatters the output back per request, attaching a [`RequestTrace`]
/// to every response.
fn run_group(
    plan: &LayerPlan,
    group: Vec<Pending>,
    chain: Vec<Engine>,
    policy: GuardrailPolicy,
    batch_ids: &[u64],
    deadline_demoted: bool,
    stats: &StatsInner,
) {
    if group.is_empty() {
        return;
    }
    let batched_with = group.len();
    let (_, c, h, w) = group[0].input.dims();
    let total: usize = group.iter().map(|p| p.input.dims().0).sum();
    // NCHW is n-major and contiguous: stacking along N is a straight
    // copy, which is what keeps batched outputs bit-identical to
    // one-at-a-time runs.
    let mut input = Tensor4::<f32>::zeros(total, c, h, w);
    let image = c * h * w;
    let mut offset = 0;
    for p in &group {
        let n = p.input.dims().0;
        input.data_mut()[offset..offset + n * image].copy_from_slice(p.input.data());
        offset += n * image;
    }
    let mut desc = plan.desc;
    desc.batch = total;
    let m = plan.warm.as_ref().map_or(4, |pre| pre.spec().m);
    let conv = GuardedConv::new(m)
        .with_chain(chain)
        .with_policy(policy)
        .with_gemm_config(plan.gemm);
    // Phase attribution reads only this executor thread's spans
    // recorded during the conv call (the phase spans open on the
    // calling thread), so concurrent executors never cross-pollute.
    let mark = wino_probe::local_event_mark();
    let execute_start = Instant::now();
    let result = {
        let mut span = wino_probe::span("serve.execute");
        span.arg("layer", || plan.name.clone());
        span.arg("requests", || batched_with.to_string());
        span.arg("images", || total.to_string());
        conv.run_warm(&input, &plan.weights, &desc, plan.warm.as_ref())
    };
    let execute = execute_start.elapsed();
    let phases: Vec<(&'static str, u64)> = wino_probe::local_spans_since(mark)
        .into_iter()
        .filter(|(name, _)| name.starts_with("conv."))
        .collect();
    match result {
        Ok(out) => {
            EXECUTED.add(batched_with as u64);
            H_EXECUTE.record_duration(execute);
            let (_, k, oh, ow) = out.output.dims();
            let out_image = k * oh * ow;
            let mut offset = 0;
            for p in group {
                let n = p.input.dims().0;
                let mut piece = Tensor4::<f32>::zeros(n, k, oh, ow);
                piece
                    .data_mut()
                    .copy_from_slice(&out.output.data()[offset..offset + n * out_image]);
                offset += n * out_image;
                let e2e = p.enqueued_at.elapsed();
                H_E2E.record_duration(e2e);
                let trace = RequestTrace {
                    id: p.id,
                    layer: plan.name.clone(),
                    queue_wait: execute_start.saturating_duration_since(p.enqueued_at),
                    execute,
                    e2e,
                    batch_size: batch_ids.len(),
                    batch_peers: batch_ids.iter().copied().filter(|&i| i != p.id).collect(),
                    served_by: out.served_by,
                    demotions: out.demotions.len(),
                    deadline_demoted,
                    phases: phases.clone(),
                };
                stats.push(trace.clone());
                let _ = p.tx.send(Ok(ConvResponse {
                    output: piece,
                    served_by: out.served_by,
                    batched_with,
                    trace,
                }));
            }
        }
        Err(err) => {
            let msg = err.to_string();
            for p in group {
                let _ = p.tx.send(Err(ServeError::Engine(msg.clone())));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wino_tensor::ConvDesc;

    fn small_registry() -> Arc<PlanRegistry> {
        let reg = PlanRegistry::new();
        let desc = ConvDesc::new(3, 1, 1, 4, 1, 8, 8, 2);
        let mut rng = StdRng::seed_from_u64(11);
        let weights = Tensor4::random(4, 2, 3, 3, -0.5, 0.5, &mut rng);
        reg.register_layer("toy/c1", desc, weights).unwrap();
        Arc::new(reg)
    }

    fn input(seed: u64) -> Tensor4<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor4::random(1, 2, 8, 8, -1.0, 1.0, &mut rng)
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let reg = small_registry();
        let server = Server::start(Arc::clone(&reg), ServerConfig::default());
        let resp = server.infer(ConvRequest::new("toy/c1", input(1))).unwrap();
        assert_eq!(resp.output.dims(), (1, 4, 8, 8));
        // Direct comparison against an unbatched GuardedConv run.
        let plan = reg.get("toy/c1").unwrap();
        let cold = GuardedConv::new(plan.warm.as_ref().unwrap().spec().m)
            .with_chain(plan.chain.clone())
            .with_gemm_config(plan.gemm)
            .run(&input(1), &plan.weights, &plan.desc)
            .unwrap();
        assert_eq!(resp.output.data(), cold.output.data());
        assert_eq!(resp.served_by, cold.served_by);
        server.shutdown();
    }

    #[test]
    fn unknown_layer_and_bad_shape_are_refused() {
        let server = Server::start(small_registry(), ServerConfig::default());
        assert!(matches!(
            server.submit(ConvRequest::new("nope", input(1))),
            Err(ServeError::UnknownLayer(_))
        ));
        let mut rng = StdRng::seed_from_u64(3);
        let bad = Tensor4::random(1, 2, 9, 9, -1.0, 1.0, &mut rng);
        assert!(matches!(
            server.submit(ConvRequest::new("toy/c1", bad)),
            Err(ServeError::Shape(_))
        ));
    }

    #[test]
    fn multi_image_requests_are_served() {
        let server = Server::start(small_registry(), ServerConfig::default());
        let mut rng = StdRng::seed_from_u64(9);
        let three = Tensor4::random(3, 2, 8, 8, -1.0, 1.0, &mut rng);
        let resp = server.infer(ConvRequest::new("toy/c1", three)).unwrap();
        assert_eq!(resp.output.dims(), (3, 4, 8, 8));
    }

    #[test]
    fn zero_deadline_demotes_to_tail_engine() {
        let reg = small_registry();
        let server = Server::start(Arc::clone(&reg), ServerConfig::default());
        let resp = server
            .infer(ConvRequest::new("toy/c1", input(2)).with_deadline(Duration::ZERO))
            .unwrap();
        assert_eq!(resp.served_by, reg.get("toy/c1").unwrap().tail_engine());
    }

    #[test]
    fn overload_sheds_when_queue_full() {
        // Capacity 0 sheds everything at admission.
        let config = ServerConfig {
            queue_capacity: 0,
            ..ServerConfig::default()
        };
        let server = Server::start(small_registry(), config);
        assert!(matches!(
            server.submit(ConvRequest::new("toy/c1", input(4))),
            Err(ServeError::Overloaded { capacity: 0, .. })
        ));
    }

    #[test]
    fn queue_depth_gauge_drains_to_zero_on_shutdown() {
        wino_probe::set_mode(wino_probe::Mode::Summary);
        // Long wait + large batch keeps submissions parked in the
        // queue until shutdown forces the drain dispatch.
        let config = ServerConfig {
            max_batch: 8,
            max_wait: Duration::from_secs(5),
            ..ServerConfig::default()
        };
        let server = Server::start(small_registry(), config);
        let handles: Vec<_> = (0..3u64)
            .map(|i| {
                server
                    .submit(ConvRequest::new("toy/c1", input(20 + i)))
                    .unwrap()
            })
            .collect();
        assert!(QUEUE_DEPTH.get() > 0, "submissions should raise the gauge");
        server.shutdown();
        for h in handles {
            h.wait().unwrap();
        }
        assert_eq!(server.queue_depth(), 0);
        assert_eq!(QUEUE_DEPTH.get(), 0, "gauge must drain with the server");
    }

    #[test]
    fn responses_carry_traces_with_unique_ids() {
        let server = Server::start(small_registry(), ServerConfig::default());
        let h1 = server
            .submit(ConvRequest::new("toy/c1", input(31)))
            .unwrap();
        let id1 = h1.id();
        let r1 = h1.wait().unwrap();
        let r2 = server.infer(ConvRequest::new("toy/c1", input(32))).unwrap();
        assert_eq!(r1.trace.id, id1);
        assert_ne!(r1.trace.id, r2.trace.id, "request ids are unique");
        assert_eq!(r1.trace.layer, "toy/c1");
        assert_eq!(r1.trace.batch_size, 1, "sequential requests ride alone");
        assert!(r1.trace.batch_peers.is_empty());
        assert!(r1.trace.queue_wait <= r1.trace.e2e);
        assert!(r1.trace.execute <= r1.trace.e2e);
        assert!(!r1.trace.deadline_demoted);
        assert_eq!(r1.trace.demotions, 0);
        let stats = server.stats();
        assert!(
            stats.recent.iter().any(|t| t.id == r2.trace.id),
            "recent ring holds completed traces"
        );
        assert_eq!(stats.queue_depth, 0);
        server.shutdown();
    }

    #[test]
    fn deadline_demotion_is_visible_in_the_trace() {
        let server = Server::start(small_registry(), ServerConfig::default());
        let resp = server
            .infer(ConvRequest::new("toy/c1", input(33)).with_deadline(Duration::ZERO))
            .unwrap();
        assert!(resp.trace.deadline_demoted);
        server.shutdown();
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let server = Server::start(small_registry(), ServerConfig::default());
        server.shutdown();
        assert!(matches!(
            server.submit(ConvRequest::new("toy/c1", input(5))),
            Err(ServeError::ShuttingDown)
        ));
        server.shutdown(); // idempotent
    }
}
