//! The serving loop: submission queue, batch coalescing, execution,
//! and crash containment.
//!
//! Threads and channels only (no async): callers [`submit`] requests
//! onto a bounded queue; a scheduler thread coalesces same-layer
//! requests into dynamic batches under `max_batch`/`max_wait`; a pool
//! of executor threads runs each batch through [`GuardedConv`] with
//! the layer's warm filter transform. Admission control sheds work at
//! capacity ([`ServeError::Overloaded`]), per-request deadlines demote
//! near-late members to the layer's terminal fallback engine, and
//! [`Server::shutdown`] drains: in-flight requests complete, late
//! submissions get [`ServeError::ShuttingDown`].
//!
//! Failure domains, inside out (see DESIGN.md §5.12):
//!
//! - an *engine* failure is absorbed by [`GuardedConv`]'s chain;
//! - a *batch* panic is contained by `catch_unwind` here — members
//!   get [`ServeError::Internal`], the flight recorder dumps, and
//!   `serve.batch_panics` counts it;
//! - an *executor* death is detected by the supervisor and respawned
//!   under a restart budget (batch members are failed by a drop
//!   guard, never stranded);
//! - a repeatedly-failing *layer* is tripped by its circuit breaker
//!   to the terminal fallback engine;
//! - an unrecoverable *server* (scheduler death, exhausted restarts)
//!   fails all pending requests and closes admission.
//!
//! Every response channel is wrapped in a [`ResponseSlot`] whose send
//! is take-once, so a waiter observes **exactly one** terminal result
//! no matter how many failure paths race to deliver it. Lock
//! poisoning never cascades: every `std::sync` lock here recovers the
//! poisoned guard (`serve.lock_poison_recovered`) instead of
//! propagating the panic.
//!
//! Bit-identity: coalescing stacks inputs along the batch dimension,
//! and every engine treats images independently (tiles never cross
//! images), so a batched response is bit-identical to a one-at-a-time
//! run of the same plan.
//!
//! [`submit`]: Server::submit

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel;
use wino_guard::{payload_to_string, Engine, GuardedConv, GuardrailPolicy};
use wino_probe::fault;
use wino_tensor::Tensor4;

use crate::breaker::{BreakerDecision, BreakerMap};
use crate::error::ServeError;
use crate::registry::{LayerPlan, NetworkPlan, PlanRegistry};
use crate::stats::{RequestTrace, ServerStats, StatsInner};
use crate::supervisor::{HealthState, HealthStatus, Liveness, ServerHealth, Supervisor};

static ENQUEUED: wino_probe::Counter = wino_probe::Counter::new("serve.enqueued");
static SHED: wino_probe::Counter = wino_probe::Counter::new("serve.shed");
static BATCHES: wino_probe::Counter = wino_probe::Counter::new("serve.batches");
static BATCHED: wino_probe::Counter = wino_probe::Counter::new("serve.batched");
static EXECUTED: wino_probe::Counter = wino_probe::Counter::new("serve.executed");
static DEADLINE_DEMOTIONS: wino_probe::Counter =
    wino_probe::Counter::new("serve.deadline_demotions");
static BATCH_PANICS: wino_probe::Counter = wino_probe::Counter::new("serve.batch_panics");
static INTERNAL_ERRORS: wino_probe::Counter = wino_probe::Counter::new("serve.internal_errors");
static RESPONSES_DROPPED: wino_probe::Counter = wino_probe::Counter::new("serve.responses_dropped");
static POISON_RECOVERED: wino_probe::Counter =
    wino_probe::Counter::new("serve.lock_poison_recovered");
static CONFIG_CLAMPED: wino_probe::Counter = wino_probe::Counter::new("serve.config_clamped");
pub(crate) static QUEUE_DEPTH: wino_probe::Gauge = wino_probe::Gauge::new("serve.queue_depth");
static H_QUEUE_WAIT: wino_probe::Histogram = wino_probe::Histogram::new("serve.queue_wait");
static H_EXECUTE: wino_probe::Histogram = wino_probe::Histogram::new("serve.execute");
static H_E2E: wino_probe::Histogram = wino_probe::Histogram::new("serve.e2e");
static NET_ENQUEUED: wino_probe::Counter = wino_probe::Counter::new("serve.net_enqueued");
static NET_BATCHES: wino_probe::Counter = wino_probe::Counter::new("serve.net_batches");
static NET_BATCHED: wino_probe::Counter = wino_probe::Counter::new("serve.net_batched");
static NET_EXECUTED: wino_probe::Counter = wino_probe::Counter::new("serve.net_executed");
static NET_DEGRADED: wino_probe::Counter = wino_probe::Counter::new("serve.net_degraded");
static H_NET_EXECUTE: wino_probe::Histogram = wino_probe::Histogram::new("serve.net_execute");
static H_NET_E2E: wino_probe::Histogram = wino_probe::Histogram::new("serve.net_e2e");

/// How long an injected `serve_sched:stall` delays one scheduler pass.
const SCHED_STALL: Duration = Duration::from_millis(10);

/// Locks a std mutex, recovering (instead of cascading) poison left by
/// a thread that panicked while holding it. The protected state is
/// always consistent at our lock boundaries — panics originate in
/// engine code or injected faults, not mid-update of queue bookkeeping.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| {
        POISON_RECOVERED.add(1);
        poisoned.into_inner()
    })
}

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Largest coalesced batch (requests, not images). Zero is clamped
    /// to 1 at [`Server::start`].
    pub max_batch: usize,
    /// Longest a request waits for batch-mates before dispatch. Zero
    /// dispatches every request immediately (no coalescing).
    pub max_wait: Duration,
    /// Submission-queue capacity; requests beyond it are shed. Zero
    /// (which would shed everything) is clamped to 1 at
    /// [`Server::start`].
    pub queue_capacity: usize,
    /// Executor thread count. Zero is clamped to 1 at
    /// [`Server::start`].
    pub executors: usize,
    /// Deadline applied to requests that carry none.
    pub default_deadline: Option<Duration>,
    /// Margin subtracted from deadlines when deciding demotion: a
    /// request within `slack` of its deadline at execution time runs
    /// on the terminal fallback engine instead of the full chain.
    pub deadline_slack: Duration,
    /// Guardrails applied to every execution.
    pub policy: GuardrailPolicy,
    /// Interval between periodic metric emissions when `WINO_METRICS`
    /// is active (the emitter thread is only spawned then).
    pub metrics_interval: Duration,
    /// Consecutive unclean full-chain batches before a layer's circuit
    /// breaker trips it to the terminal fallback engine. Zero disables
    /// the breakers.
    pub breaker_threshold: u32,
    /// How long a tripped breaker serves the fallback before the
    /// half-open probe batch rides the full chain again.
    pub breaker_cooldown: Duration,
    /// Total executor respawns the supervisor may spend over the
    /// server's lifetime; one more death is unrecoverable.
    pub max_executor_restarts: u64,
    /// Backoff before the first respawn; doubles per respawn (capped
    /// internally).
    pub restart_backoff: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch: 5,
            max_wait: Duration::from_millis(2),
            queue_capacity: 256,
            executors: 1,
            default_deadline: None,
            deadline_slack: Duration::from_micros(500),
            policy: GuardrailPolicy::full(),
            metrics_interval: Duration::from_secs(5),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(250),
            max_executor_restarts: 8,
            restart_backoff: Duration::from_millis(1),
        }
    }
}

impl ServerConfig {
    /// Normalizes degenerate values in one place — the single spot
    /// where a zero `queue_capacity` (shed-everything), `executors`
    /// (serve-nothing), or `max_batch` (dispatch-nothing) is clamped
    /// to 1, each with a `probe::diag`.
    fn validated(mut self) -> ServerConfig {
        let clamp = |name: &str, value: &mut usize| {
            if *value == 0 {
                wino_probe::diag(format!("serve: config {name}=0 clamped to 1"));
                CONFIG_CLAMPED.add(1);
                *value = 1;
            }
        };
        clamp("queue_capacity", &mut self.queue_capacity);
        clamp("executors", &mut self.executors);
        clamp("max_batch", &mut self.max_batch);
        self
    }
}

/// One inference request.
pub struct ConvRequest {
    /// Registered layer name.
    pub layer: String,
    /// Input images `(N, C, H, W)`; `C/H/W` must match the layer,
    /// any `N ≥ 1`.
    pub input: Tensor4<f32>,
    /// Time budget from submission; near-late requests demote to the
    /// terminal fallback engine. `None` uses the server default.
    pub deadline: Option<Duration>,
}

impl ConvRequest {
    /// Request with the server's default deadline.
    pub fn new(layer: impl Into<String>, input: Tensor4<f32>) -> Self {
        ConvRequest {
            layer: layer.into(),
            input,
            deadline: None,
        }
    }

    /// Sets an explicit deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// One whole-network inference request.
pub struct NetworkRequest {
    /// Registered network name (see
    /// [`PlanRegistry::register_network_graph`]).
    pub network: String,
    /// Input images `(N, C, H, W)`; `C/H/W` must match the network's
    /// input, any `N ≥ 1`.
    pub input: Tensor4<f32>,
    /// Time budget from submission; a near-late request runs every
    /// conv on its terminal fallback engine (degraded mode). `None`
    /// uses the server default.
    pub deadline: Option<Duration>,
}

impl NetworkRequest {
    /// Request with the server's default deadline.
    pub fn new(network: impl Into<String>, input: Tensor4<f32>) -> Self {
        NetworkRequest {
            network: network.into(),
            input,
            deadline: None,
        }
    }

    /// Sets an explicit deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// One completed request.
#[derive(Clone, Debug)]
pub struct ConvResponse {
    /// Output `(N, K, H_out, W_out)` for this request's images.
    pub output: Tensor4<f32>,
    /// Which engine produced it (after any demotions).
    pub served_by: Engine,
    /// Size of the coalesced batch this request rode in (1 when it
    /// executed alone).
    pub batched_with: usize,
    /// The full per-request trace (queue wait, batch peers, phase
    /// breakdown).
    pub trace: RequestTrace,
}

/// Take-once wrapper around a request's response sender: however many
/// failure paths race to terminate a request (normal delivery, batch
/// containment, the executor drop guard, supervisor fail-all,
/// shutdown drain), exactly one send reaches the waiter and the rest
/// are structurally discarded.
pub(crate) struct ResponseSlot {
    tx: parking_lot::Mutex<Option<channel::Sender<Result<ConvResponse, ServeError>>>>,
}

impl ResponseSlot {
    fn new(tx: channel::Sender<Result<ConvResponse, ServeError>>) -> Arc<ResponseSlot> {
        Arc::new(ResponseSlot {
            tx: parking_lot::Mutex::new(Some(tx)),
        })
    }

    /// Delivers the terminal result if nothing has been delivered yet;
    /// returns `false` when the slot was already consumed.
    pub(crate) fn send(&self, result: Result<ConvResponse, ServeError>) -> bool {
        let Some(tx) = self.tx.lock().take() else {
            return false;
        };
        // serve_resp chaos site. Only real (Ok) deliveries are
        // eligible: failure-path sends come from containment code and
        // drop guards, which must never re-enter an injected panic.
        if result.is_ok() && fault::armed(fault::Site::ServeResp) {
            match fault::fire(fault::Site::ServeResp) {
                Some(fault::Trigger::Drop) => {
                    RESPONSES_DROPPED.add(1);
                    // tx drops here: the waiter observes the closed
                    // channel and maps it to ServeError::Internal —
                    // a terminal result, never a hang.
                    return true;
                }
                Some(fault::Trigger::Panic) => {
                    panic!("wino-fault: injected panic at serve_resp")
                }
                _ => {}
            }
        }
        if matches!(result, Err(ServeError::Internal { .. })) {
            INTERNAL_ERRORS.add(1);
        }
        let _ = tx.send(result);
        true
    }
}

/// Caller-side handle for an admitted request.
pub struct ResponseHandle {
    id: u64,
    rx: channel::Receiver<Result<ConvResponse, ServeError>>,
}

impl ResponseHandle {
    /// The request id assigned at submission (matches
    /// [`RequestTrace::id`] in the response and in
    /// [`ServerStats::recent`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the terminal result arrives. A server torn down
    /// before executing the request delivers
    /// [`ServeError::ShuttingDown`] explicitly; a response channel
    /// closed without any delivery (response dropped by an injected
    /// fault) maps to [`ServeError::Internal`].
    pub fn wait(self) -> Result<ConvResponse, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Internal {
            cause: "response channel closed without a terminal result".to_string(),
        })?
    }

    /// [`ResponseHandle::wait`] bounded by a watchdog: `None` means no
    /// terminal result arrived within `timeout` (the handle is
    /// consumed). The chaos drills use this to turn a would-be hang
    /// into a hard assertion failure.
    pub fn wait_timeout(self, timeout: Duration) -> Option<Result<ConvResponse, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(channel::RecvTimeoutError::Disconnected) => Some(Err(ServeError::Internal {
                cause: "response channel closed without a terminal result".to_string(),
            })),
            Err(channel::RecvTimeoutError::Timeout) => None,
        }
    }
}

/// What an admitted request asks the executors to run: one registered
/// layer, or a whole registered network through the `wino-exec` wave
/// scheduler. The scheduler coalesces by [`Work::key`], so layer and
/// network requests never share a batch (their keys live in disjoint
/// namespaces: network keys carry a `"net!"` prefix no layer name
/// gets).
pub(crate) enum Work {
    /// Single-layer convolution against a pinned [`LayerPlan`].
    Layer(Arc<LayerPlan>),
    /// Whole-network inference against a pinned [`NetworkPlan`].
    Network(Arc<NetworkPlan>),
}

impl Work {
    /// Coalescing key — also the circuit-breaker key, so a repeatedly
    /// failing network trips independently of its constituent layers.
    pub(crate) fn key(&self) -> String {
        match self {
            Work::Layer(plan) => plan.name.clone(),
            Work::Network(plan) => format!("net!{}", plan.name),
        }
    }
}

/// A request admitted to the queue.
pub(crate) struct Pending {
    id: u64,
    work: Work,
    input: Tensor4<f32>,
    enqueued_at: Instant,
    deadline: Option<Duration>,
    pub(crate) slot: Arc<ResponseSlot>,
}

pub(crate) struct QueueState {
    pub(crate) open: bool,
    pub(crate) pending: VecDeque<Pending>,
}

/// The submission queue. `std::sync` primitives on purpose: the
/// scheduler needs a timed condition wait, which the `parking_lot`
/// shim does not provide. Poison from a panicking holder is recovered
/// at every lock site, never propagated.
pub(crate) struct SubmissionQueue {
    pub(crate) state: Mutex<QueueState>,
    pub(crate) cv: Condvar,
}

/// Queue lock with poison recovery.
pub(crate) fn lock_queue(queue: &SubmissionQueue) -> MutexGuard<'_, QueueState> {
    lock_recover(&queue.state)
}

/// Everything an executor thread needs; cloned for supervisor
/// respawns.
#[derive(Clone)]
pub(crate) struct ExecShared {
    pub(crate) rx: channel::Receiver<Vec<Pending>>,
    pub(crate) policy: GuardrailPolicy,
    pub(crate) slack: Duration,
    pub(crate) stats: Arc<StatsInner>,
    pub(crate) breakers: Arc<BreakerMap>,
    pub(crate) health: Arc<HealthState>,
    pub(crate) liveness: Arc<Liveness>,
}

/// The batching inference server.
///
/// Dropping the server shuts it down (idempotent with an explicit
/// [`Server::shutdown`]).
pub struct Server {
    registry: Arc<PlanRegistry>,
    config: ServerConfig,
    queue: Arc<SubmissionQueue>,
    stats: Arc<StatsInner>,
    breakers: Arc<BreakerMap>,
    health: Arc<HealthState>,
    liveness: Arc<Liveness>,
    supervisor: Mutex<Option<Supervisor>>,
    emitter: Mutex<Option<wino_telemetry::PeriodicEmitter>>,
    shutting_down: Arc<AtomicBool>,
}

impl Server {
    /// Starts the scheduler, executor pool, and supervisor threads
    /// (plus the periodic metrics emitter when `WINO_METRICS` is
    /// active). Degenerate config values are clamped first (see
    /// [`ServerConfig::validated`]).
    pub fn start(registry: Arc<PlanRegistry>, config: ServerConfig) -> Self {
        let config = config.validated();
        let queue = Arc::new(SubmissionQueue {
            state: Mutex::new(QueueState {
                open: true,
                pending: VecDeque::new(),
            }),
            cv: Condvar::new(),
        });
        let stats = Arc::new(StatsInner::new());
        let health = Arc::new(HealthState::new(config.executors));
        let liveness = Arc::new(Liveness::new(config.executors));
        let breakers = Arc::new(BreakerMap::new(
            config.breaker_threshold,
            config.breaker_cooldown,
        ));
        // Pre-seed a breaker per registered layer (and network) so the
        // per-plan state gauges exist from the first metrics render.
        for plan in registry.plans() {
            breakers.intern(&plan.name);
        }
        for plan in registry.network_plans() {
            breakers.intern(&Work::Network(Arc::clone(&plan)).key());
            // Reserve one arena per executor at the worst-case
            // coalesced batch, so steady-state network serving does
            // zero graph-level allocation (requests larger than
            // max_batch images still work; their arenas grow, counted
            // by `exec.arena_allocs`).
            plan.pool.reserve(config.max_batch, config.executors);
        }
        let shutting_down = Arc::new(AtomicBool::new(false));
        // The batch channel's only sender lives on the scheduler
        // thread, so executor `recv` disconnects exactly when the
        // scheduler exits (after the drain loop empties the queue).
        // The supervisor holds a receiver clone for respawns and for
        // bleeding the channel when no executor is left.
        let (batch_tx, batch_rx) = channel::bounded::<Vec<Pending>>(config.executors * 2);
        let scheduler = {
            let queue = Arc::clone(&queue);
            let max_batch = config.max_batch;
            let max_wait = config.max_wait;
            std::thread::Builder::new()
                .name("wino-scheduler".into())
                .spawn(move || scheduler_loop(&queue, max_batch, max_wait, &batch_tx))
                .expect("spawn scheduler thread")
        };
        let shared = ExecShared {
            rx: batch_rx,
            policy: config.policy,
            slack: config.deadline_slack,
            stats: Arc::clone(&stats),
            breakers: Arc::clone(&breakers),
            health: Arc::clone(&health),
            liveness: Arc::clone(&liveness),
        };
        let executors: Vec<JoinHandle<()>> = (0..config.executors)
            .map(|slot| spawn_executor(slot, shared.clone()))
            .collect();
        let supervisor = Supervisor::spawn(
            scheduler,
            executors,
            shared,
            Arc::clone(&queue),
            Arc::clone(&shutting_down),
            config.max_executor_restarts,
            config.restart_backoff,
        );
        let emitter = if wino_telemetry::mode() != wino_telemetry::MetricsMode::Off {
            Some(wino_telemetry::PeriodicEmitter::start(
                config.metrics_interval,
                "serve.periodic",
            ))
        } else {
            None
        };
        Server {
            registry,
            config,
            queue,
            stats,
            breakers,
            health,
            liveness,
            supervisor: Mutex::new(Some(supervisor)),
            emitter: Mutex::new(emitter),
            shutting_down,
        }
    }

    /// The plan registry this server executes against.
    pub fn registry(&self) -> &Arc<PlanRegistry> {
        &self.registry
    }

    /// Admits a request, returning a handle to wait on.
    ///
    /// # Errors
    /// [`ServeError::UnknownLayer`] for unregistered names,
    /// [`ServeError::Shape`] on input mismatch,
    /// [`ServeError::ShuttingDown`] after drain began (or after the
    /// supervisor closed admission on unrecoverable failure), and
    /// [`ServeError::Overloaded`] when the queue is full (the request
    /// is shed; nothing was enqueued).
    pub fn submit(&self, req: ConvRequest) -> Result<ResponseHandle, ServeError> {
        let plan = self
            .registry
            .get(&req.layer)
            .ok_or_else(|| ServeError::UnknownLayer(req.layer.clone()))?;
        let (n, c, h, w) = req.input.dims();
        let d = &plan.desc;
        if n == 0 || c != d.in_ch || h != d.in_h || w != d.in_w {
            return Err(ServeError::Shape(format!(
                "input ({n}, {c}, {h}, {w}) does not match layer {:?} expecting \
                 (N, {}, {}, {})",
                plan.name, d.in_ch, d.in_h, d.in_w
            )));
        }
        let (tx, rx) = channel::bounded(1);
        let deadline = req.deadline.or(self.config.default_deadline);
        let id = self.stats.assign_id();
        {
            // Every early return before the push leaves the counters
            // consistent: SHED counts exactly the Overloaded returns,
            // ENQUEUED and the depth gauge move only on a real push.
            let mut st = lock_queue(&self.queue);
            if !st.open {
                return Err(ServeError::ShuttingDown);
            }
            if st.pending.len() >= self.config.queue_capacity {
                SHED.add(1);
                return Err(ServeError::Overloaded {
                    depth: st.pending.len(),
                    capacity: self.config.queue_capacity,
                });
            }
            st.pending.push_back(Pending {
                id,
                work: Work::Layer(plan),
                input: req.input,
                enqueued_at: Instant::now(),
                deadline,
                slot: ResponseSlot::new(tx),
            });
            ENQUEUED.add(1);
            QUEUE_DEPTH.set(st.pending.len() as i64);
        }
        self.queue.cv.notify_all();
        Ok(ResponseHandle { id, rx })
    }

    /// Convenience: submit and block for the response.
    ///
    /// # Errors
    /// As [`Server::submit`] and [`ResponseHandle::wait`].
    pub fn infer(&self, req: ConvRequest) -> Result<ConvResponse, ServeError> {
        self.submit(req)?.wait()
    }

    /// Admits a whole-network request. Concurrent requests for the
    /// same network coalesce into one cross-request batch exactly like
    /// same-layer requests do; the batch runs through the `wino-exec`
    /// wave scheduler against the network's reserved arena pool.
    ///
    /// # Errors
    /// [`ServeError::UnknownModel`] for unregistered networks,
    /// otherwise as [`Server::submit`].
    pub fn submit_network(&self, req: NetworkRequest) -> Result<ResponseHandle, ServeError> {
        let plan = self
            .registry
            .network(&req.network)
            .ok_or_else(|| ServeError::UnknownModel(req.network.clone()))?;
        let (n, c, h, w) = req.input.dims();
        let (ic, ih, iw) = plan.input_dims();
        if n == 0 || (c, h, w) != (ic, ih, iw) {
            return Err(ServeError::Shape(format!(
                "input ({n}, {c}, {h}, {w}) does not match network {:?} expecting \
                 (N, {ic}, {ih}, {iw})",
                plan.name
            )));
        }
        let (tx, rx) = channel::bounded(1);
        let deadline = req.deadline.or(self.config.default_deadline);
        let id = self.stats.assign_id();
        {
            let mut st = lock_queue(&self.queue);
            if !st.open {
                return Err(ServeError::ShuttingDown);
            }
            if st.pending.len() >= self.config.queue_capacity {
                SHED.add(1);
                return Err(ServeError::Overloaded {
                    depth: st.pending.len(),
                    capacity: self.config.queue_capacity,
                });
            }
            st.pending.push_back(Pending {
                id,
                work: Work::Network(plan),
                input: req.input,
                enqueued_at: Instant::now(),
                deadline,
                slot: ResponseSlot::new(tx),
            });
            ENQUEUED.add(1);
            NET_ENQUEUED.add(1);
            QUEUE_DEPTH.set(st.pending.len() as i64);
        }
        self.queue.cv.notify_all();
        Ok(ResponseHandle { id, rx })
    }

    /// Convenience: submit a network request and block for the
    /// response.
    ///
    /// # Errors
    /// As [`Server::submit_network`] and [`ResponseHandle::wait`].
    pub fn infer_network(&self, req: NetworkRequest) -> Result<ConvResponse, ServeError> {
        self.submit_network(req)?.wait()
    }

    /// Current submission-queue depth.
    pub fn queue_depth(&self) -> usize {
        lock_queue(&self.queue).pending.len()
    }

    /// Point-in-time statistics snapshot: the serve counters, current
    /// queue depth, and the recent request traces. Counter values
    /// come from the process-global probe registry (see
    /// [`ServerStats`] for the aggregation caveat).
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            enqueued: ENQUEUED.get(),
            shed: SHED.get(),
            batches: BATCHES.get(),
            batched: BATCHED.get(),
            executed: EXECUTED.get(),
            deadline_demotions: DEADLINE_DEMOTIONS.get(),
            queue_depth: self.queue_depth(),
            recent: self.stats.recent(),
        }
    }

    /// Supervision snapshot: overall status, thread liveness, restart
    /// and contained-panic totals, and every layer breaker's position.
    /// Works regardless of the metrics mode — health bookkeeping is
    /// not gated behind the probe.
    pub fn health(&self) -> ServerHealth {
        let failed = self.health.failed.load(Ordering::SeqCst);
        let executor_restarts = self.health.executor_restarts.load(Ordering::Relaxed);
        let batch_panics = self.health.batch_panics.load(Ordering::Relaxed);
        let breakers = self.breakers.snapshot();
        let status = if failed {
            HealthStatus::Failed
        } else if executor_restarts > 0 || batch_panics > 0 || self.breakers.any_open() {
            HealthStatus::Degraded
        } else {
            HealthStatus::Healthy
        };
        ServerHealth {
            status,
            scheduler_alive: self.health.scheduler_alive.load(Ordering::Relaxed),
            executors_alive: self.health.executors_alive.load(Ordering::Relaxed),
            executors_configured: self.config.executors,
            executor_restarts,
            batch_panics,
            queue_depth: self.queue_depth(),
            executors: ServerHealth::executor_rows(&self.liveness),
            breakers,
        }
    }

    /// Prometheus-style text exposition of every live metric
    /// (counters, gauges including the per-layer
    /// `serve.breaker_state.*` positions, histograms), regardless of
    /// the `WINO_METRICS` mode.
    pub fn render_metrics(&self) -> String {
        wino_telemetry::render_prometheus()
    }

    /// Drains and stops: closes admission, lets the scheduler flush
    /// every pending batch, waits (through the supervisor, which keeps
    /// respawning executors that die mid-drain) for all in-flight work
    /// to finish. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let mut st = lock_queue(&self.queue);
            st.open = false;
        }
        self.queue.cv.notify_all();
        // The supervisor owns the scheduler and executor handles; its
        // stop path joins the scheduler (which drains), keeps
        // supervising executors during the drain, and returns once
        // everything is joined.
        if let Some(supervisor) = lock_recover(&self.supervisor).take() {
            supervisor.stop_and_join();
        }
        // With every thread joined nothing can admit or extract work:
        // fail anything left behind (non-empty only if the scheduler
        // died) and pin the depth gauge at zero so `serve.queue_depth`
        // always drains with the server.
        let mut st = lock_queue(&self.queue);
        for p in st.pending.drain(..) {
            p.slot.send(Err(ServeError::ShuttingDown));
        }
        QUEUE_DEPTH.set(0);
        drop(st);
        // Stop the periodic emitter, then emit one final snapshot so
        // a `text:path` scrape file always reflects the drained state.
        if let Some(emitter) = lock_recover(&self.emitter).take() {
            emitter.stop();
        }
        wino_telemetry::emit("serve.shutdown");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Chaos hook at the top of every scheduler pass that has work
/// pending. A `Panic` kills the scheduler *before* extracting a batch
/// (requests stay in the queue, where the supervisor's fail-all can
/// reach them); a `Stall` delays dispatch so the queue backs up.
fn serve_sched_hook() {
    if fault::armed(fault::Site::ServeSched) {
        match fault::fire(fault::Site::ServeSched) {
            Some(fault::Trigger::Panic) => panic!("wino-fault: injected panic at serve_sched"),
            Some(fault::Trigger::Stall) => std::thread::sleep(SCHED_STALL),
            _ => {}
        }
    }
}

/// Scheduler: coalesce same-layer requests into batches. Dispatches a
/// batch when `max_batch` same-layer requests are waiting, when the
/// head request has waited `max_wait`, or immediately during drain.
fn scheduler_loop(
    queue: &SubmissionQueue,
    max_batch: usize,
    max_wait: Duration,
    batch_tx: &channel::Sender<Vec<Pending>>,
) {
    let mut st = lock_queue(queue);
    loop {
        if st.pending.is_empty() {
            if !st.open {
                return; // drained
            }
            st = queue.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            continue;
        }
        serve_sched_hook();
        let head_key = st.pending[0].work.key();
        let same = st
            .pending
            .iter()
            .filter(|p| p.work.key() == head_key)
            .count();
        let age = st.pending[0].enqueued_at.elapsed();
        if same < max_batch && age < max_wait && st.open {
            let (guard, _timeout) = queue
                .cv
                .wait_timeout(st, max_wait.saturating_sub(age))
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
            continue;
        }
        // Extract up to max_batch same-key requests, FIFO order.
        let mut batch = Vec::with_capacity(same.min(max_batch));
        let mut i = 0;
        while i < st.pending.len() && batch.len() < max_batch {
            if st.pending[i].work.key() == head_key {
                batch.push(st.pending.remove(i).expect("index in bounds"));
            } else {
                i += 1;
            }
        }
        QUEUE_DEPTH.set(st.pending.len() as i64);
        drop(st);
        if let Err(channel::SendError(batch)) = batch_tx.send(batch) {
            // Every receiver is gone — executors and supervisor alike
            // (only possible in teardown races). Nothing can serve the
            // extracted batch or anything still queued: fail them all
            // explicitly so waiters unblock, and zero the depth gauge
            // rather than leaving it stuck at the last set() value.
            for p in batch {
                p.slot.send(Err(ServeError::ShuttingDown));
            }
            let mut st = lock_queue(queue);
            for p in st.pending.drain(..) {
                p.slot.send(Err(ServeError::ShuttingDown));
            }
            QUEUE_DEPTH.set(0);
            return;
        }
        st = lock_queue(queue);
    }
}

/// Spawns one executor on `slot` (initial pool and supervisor
/// respawns go through the same path).
pub(crate) fn spawn_executor(slot: usize, shared: ExecShared) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("wino-exec{slot}"))
        .spawn(move || executor_loop(slot, &shared))
        .expect("spawn executor thread")
}

/// Fails every member of an in-flight batch if the executor unwinds
/// past containment (the injected `serve_exec` kill, or anything else
/// that escapes `catch_unwind`). Response slots are take-once, so
/// firing after a member was already answered is a no-op.
struct BatchFailGuard {
    slots: Vec<Arc<ResponseSlot>>,
    armed: bool,
}

impl BatchFailGuard {
    fn new(batch: &[Pending]) -> BatchFailGuard {
        BatchFailGuard {
            slots: batch.iter().map(|p| Arc::clone(&p.slot)).collect(),
            armed: true,
        }
    }

    fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for BatchFailGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        for slot in &self.slots {
            slot.send(Err(ServeError::Internal {
                cause: "executor thread died while holding this batch".to_string(),
            }));
        }
    }
}

/// Chaos hook checked once per dequeued batch. A `Panic` here unwinds
/// *outside* batch containment on purpose: it kills the executor
/// thread, which is exactly the supervisor-respawn drill (the
/// [`BatchFailGuard`] fails the batch members on the way out).
fn serve_exec_hook() {
    if fault::armed(fault::Site::ServeExec) {
        if let Some(fault::Trigger::Panic) = fault::fire(fault::Site::ServeExec) {
            panic!("wino-fault: injected panic at serve_exec");
        }
    }
}

fn executor_loop(slot: usize, shared: &ExecShared) {
    while let Ok(batch) = shared.rx.recv() {
        shared.liveness.beat(slot, true);
        let guard = BatchFailGuard::new(&batch);
        serve_exec_hook();
        execute_batch_contained(batch, shared);
        guard.disarm();
        shared.liveness.beat(slot, false);
    }
}

/// Crash-contained batch execution: consults the layer's breaker,
/// runs the batch under `catch_unwind`, feeds the outcome back to the
/// breaker, and on a contained panic fails every unanswered member
/// with [`ServeError::Internal`], dumps a flight-recorder snapshot,
/// and bumps `serve.batch_panics`.
pub(crate) fn execute_batch_contained(batch: Vec<Pending>, shared: &ExecShared) {
    if batch.is_empty() {
        return;
    }
    let layer = batch[0].work.key();
    let slots: Vec<Arc<ResponseSlot>> = batch.iter().map(|p| Arc::clone(&p.slot)).collect();
    let (breaker, decision) = shared.breakers.decide(&layer);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute_batch(batch, decision, shared)
    }));
    match outcome {
        Ok(clean) => breaker.resolve(decision, clean),
        Err(payload) => {
            // The full-chain group (probe included) panicked: that is
            // an unclean outcome for the breaker, and every member
            // that was not answered before the panic gets a terminal
            // Internal error.
            breaker.resolve(decision, Some(false));
            BATCH_PANICS.add(1);
            shared.health.note_batch_panic();
            let cause = payload_to_string(payload);
            wino_probe::diag(format!("serve: batch for {layer:?} panicked: {cause}"));
            wino_probe::flight::dump_incident("serve.batch_panic");
            for slot in &slots {
                slot.send(Err(ServeError::Internal {
                    cause: format!("batch execution panicked: {cause}"),
                }));
            }
        }
    }
}

/// Executes one coalesced batch: near-deadline members demote to the
/// terminal fallback engine, everyone else runs the chain the breaker
/// decided (full chain, half-open probe, or fallback-only while
/// open). Queue wait is recorded here, at execution start, for every
/// member — so `serve.queue_wait`'s count always equals the number of
/// requests that reached an executor. Returns the full-chain group's
/// outcome for the breaker: `Some(clean)`, or `None` when every
/// member was deadline-demoted.
fn execute_batch(
    batch: Vec<Pending>,
    decision: BreakerDecision,
    shared: &ExecShared,
) -> Option<bool> {
    if batch.is_empty() {
        return None;
    }
    BATCHES.add(1);
    if batch.len() > 1 {
        BATCHED.add(batch.len() as u64);
    }
    let batch_ids: Vec<u64> = batch.iter().map(|p| p.id).collect();
    let plan = match &batch[0].work {
        Work::Layer(plan) => Arc::clone(plan),
        Work::Network(plan) => {
            let plan = Arc::clone(plan);
            return execute_network_batch(&plan, batch, decision, &batch_ids, shared);
        }
    };
    let mut on_time = Vec::new();
    let mut late = Vec::new();
    for p in batch {
        H_QUEUE_WAIT.record_duration(p.enqueued_at.elapsed());
        let is_late = p
            .deadline
            .is_some_and(|d| p.enqueued_at.elapsed() + shared.slack >= d);
        if is_late {
            DEADLINE_DEMOTIONS.add(1);
            late.push(p);
        } else {
            on_time.push(p);
        }
    }
    let chain = if decision.full_chain() {
        plan.chain.clone()
    } else {
        vec![plan.tail_engine()]
    };
    let verdict = run_group(
        &plan,
        on_time,
        chain,
        shared.policy,
        &batch_ids,
        false,
        &shared.stats,
    );
    run_group(
        &plan,
        late,
        vec![plan.tail_engine()],
        shared.policy,
        &batch_ids,
        true,
        &shared.stats,
    );
    verdict
}

/// Runs one group of requests as a single stacked convolution and
/// scatters the output back per request, attaching a [`RequestTrace`]
/// to every response. Returns `Some(clean)` — clean meaning the group
/// served without demotion or error — or `None` for an empty group.
fn run_group(
    plan: &LayerPlan,
    group: Vec<Pending>,
    chain: Vec<Engine>,
    policy: GuardrailPolicy,
    batch_ids: &[u64],
    deadline_demoted: bool,
    stats: &StatsInner,
) -> Option<bool> {
    if group.is_empty() {
        return None;
    }
    let batched_with = group.len();
    let (_, c, h, w) = group[0].input.dims();
    let total: usize = group.iter().map(|p| p.input.dims().0).sum();
    // NCHW is n-major and contiguous: stacking along N is a straight
    // copy, which is what keeps batched outputs bit-identical to
    // one-at-a-time runs.
    let mut input = Tensor4::<f32>::zeros(total, c, h, w);
    let image = c * h * w;
    let mut offset = 0;
    for p in &group {
        let n = p.input.dims().0;
        input.data_mut()[offset..offset + n * image].copy_from_slice(p.input.data());
        offset += n * image;
    }
    let mut desc = plan.desc;
    desc.batch = total;
    let m = plan.warm.as_ref().map_or(4, |pre| pre.spec().m);
    let conv = GuardedConv::new(m)
        .with_chain(chain)
        .with_policy(policy)
        .with_gemm_config(plan.gemm);
    // Phase attribution reads only this executor thread's spans
    // recorded during the conv call (the phase spans open on the
    // calling thread), so concurrent executors never cross-pollute.
    let mark = wino_probe::local_event_mark();
    let execute_start = Instant::now();
    let result = {
        let mut span = wino_probe::span("serve.execute");
        span.arg("layer", || plan.name.clone());
        span.arg("requests", || batched_with.to_string());
        span.arg("images", || total.to_string());
        conv.run_warm(&input, &plan.weights, &desc, plan.warm.as_ref())
    };
    let execute = execute_start.elapsed();
    let phases: Vec<(&'static str, u64)> = wino_probe::local_spans_since(mark)
        .into_iter()
        .filter(|(name, _)| name.starts_with("conv."))
        .collect();
    match result {
        Ok(out) => {
            EXECUTED.add(batched_with as u64);
            H_EXECUTE.record_duration(execute);
            let clean = out.demotions.is_empty();
            let (_, k, oh, ow) = out.output.dims();
            let out_image = k * oh * ow;
            let mut offset = 0;
            for p in group {
                let n = p.input.dims().0;
                let mut piece = Tensor4::<f32>::zeros(n, k, oh, ow);
                piece
                    .data_mut()
                    .copy_from_slice(&out.output.data()[offset..offset + n * out_image]);
                offset += n * out_image;
                let e2e = p.enqueued_at.elapsed();
                H_E2E.record_duration(e2e);
                let trace = RequestTrace {
                    id: p.id,
                    layer: plan.name.clone(),
                    queue_wait: execute_start.saturating_duration_since(p.enqueued_at),
                    execute,
                    e2e,
                    batch_size: batch_ids.len(),
                    batch_peers: batch_ids.iter().copied().filter(|&i| i != p.id).collect(),
                    served_by: out.served_by,
                    demotions: out.demotions.len(),
                    deadline_demoted,
                    phases: phases.clone(),
                };
                stats.push(trace.clone());
                p.slot.send(Ok(ConvResponse {
                    output: piece,
                    served_by: out.served_by,
                    batched_with,
                    trace,
                }));
            }
            Some(clean)
        }
        Err(err) => {
            let msg = err.to_string();
            for p in group {
                p.slot.send(Err(ServeError::Engine(msg.clone())));
            }
            Some(false)
        }
    }
}

/// Executes one coalesced whole-network batch: near-deadline members
/// run the entire network in degraded mode (every conv on its terminal
/// fallback engine); everyone else rides the full chains unless this
/// network's circuit breaker is open. Returns the full-chain group's
/// outcome for the breaker, mirroring [`execute_batch`].
fn execute_network_batch(
    plan: &Arc<NetworkPlan>,
    batch: Vec<Pending>,
    decision: BreakerDecision,
    batch_ids: &[u64],
    shared: &ExecShared,
) -> Option<bool> {
    NET_BATCHES.add(1);
    if batch.len() > 1 {
        NET_BATCHED.add(batch.len() as u64);
    }
    let mut on_time = Vec::new();
    let mut late = Vec::new();
    for p in batch {
        H_QUEUE_WAIT.record_duration(p.enqueued_at.elapsed());
        let is_late = p
            .deadline
            .is_some_and(|d| p.enqueued_at.elapsed() + shared.slack >= d);
        if is_late {
            DEADLINE_DEMOTIONS.add(1);
            late.push(p);
        } else {
            on_time.push(p);
        }
    }
    let degraded = !decision.full_chain();
    let verdict = run_network_group(plan, on_time, degraded, shared, batch_ids, false);
    run_network_group(plan, late, true, shared, batch_ids, true);
    verdict
}

/// Runs one group of network requests as a single stacked inference
/// through the wave executor and scatters the output back per request.
/// Returns `Some(clean)` — clean meaning no conv demoted — or `None`
/// for an empty group.
fn run_network_group(
    plan: &Arc<NetworkPlan>,
    group: Vec<Pending>,
    degraded: bool,
    shared: &ExecShared,
    batch_ids: &[u64],
    deadline_demoted: bool,
) -> Option<bool> {
    if group.is_empty() {
        return None;
    }
    if degraded {
        NET_DEGRADED.add(group.len() as u64);
    }
    let batched_with = group.len();
    let (_, c, h, w) = group[0].input.dims();
    let total: usize = group.iter().map(|p| p.input.dims().0).sum();
    // Stacking along N is a straight copy (NCHW, n-major), and every
    // graph op treats images independently, so batched network outputs
    // are bit-identical to one-at-a-time runs.
    let mut input = Tensor4::<f32>::zeros(total, c, h, w);
    let image = c * h * w;
    let mut offset = 0;
    for p in &group {
        let n = p.input.dims().0;
        input.data_mut()[offset..offset + n * image].copy_from_slice(p.input.data());
        offset += n * image;
    }
    let exec = wino_exec::NetworkExecutor::new(Arc::clone(&plan.net), Arc::clone(&plan.pool))
        .with_policy(shared.policy);
    let mark = wino_probe::local_event_mark();
    let execute_start = Instant::now();
    let result = {
        let mut span = wino_probe::span("serve.net_execute");
        span.arg("network", || plan.name.clone());
        span.arg("requests", || batched_with.to_string());
        span.arg("images", || total.to_string());
        exec.run_on(wino_runtime::Runtime::global(), &input, degraded)
    };
    let execute = execute_start.elapsed();
    // Only spans recorded on this executor thread attribute here:
    // single-step waves run inline (visible), fanned-out waves land on
    // pool workers (not visible) — the executor's own `exec.network`
    // span always is.
    let phases: Vec<(&'static str, u64)> = wino_probe::local_spans_since(mark)
        .into_iter()
        .filter(|(name, _)| name.starts_with("exec.") || name.starts_with("conv."))
        .collect();
    match result {
        Ok(out) => {
            NET_EXECUTED.add(batched_with as u64);
            EXECUTED.add(batched_with as u64);
            H_NET_EXECUTE.record_duration(execute);
            let clean = out.demotions == 0;
            let (_, k, oh, ow) = out.output.dims();
            let out_image = k * oh * ow;
            let mut offset = 0;
            for p in group {
                let n = p.input.dims().0;
                let mut piece = Tensor4::<f32>::zeros(n, k, oh, ow);
                piece
                    .data_mut()
                    .copy_from_slice(&out.output.data()[offset..offset + n * out_image]);
                offset += n * out_image;
                let e2e = p.enqueued_at.elapsed();
                H_NET_E2E.record_duration(e2e);
                H_E2E.record_duration(e2e);
                let trace = RequestTrace {
                    id: p.id,
                    layer: plan.name.clone(),
                    queue_wait: execute_start.saturating_duration_since(p.enqueued_at),
                    execute,
                    e2e,
                    batch_size: batch_ids.len(),
                    batch_peers: batch_ids.iter().copied().filter(|&i| i != p.id).collect(),
                    served_by: out.served_by,
                    demotions: out.demotions,
                    deadline_demoted,
                    phases: phases.clone(),
                };
                shared.stats.push(trace.clone());
                p.slot.send(Ok(ConvResponse {
                    output: piece,
                    served_by: out.served_by,
                    batched_with,
                    trace,
                }));
            }
            Some(clean)
        }
        Err(err) => {
            let msg = err.to_string();
            for p in group {
                p.slot.send(Err(ServeError::Engine(msg.clone())));
            }
            Some(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerState;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wino_tensor::ConvDesc;

    fn small_registry() -> Arc<PlanRegistry> {
        let reg = PlanRegistry::new();
        let desc = ConvDesc::new(3, 1, 1, 4, 1, 8, 8, 2);
        let mut rng = StdRng::seed_from_u64(11);
        let weights = Tensor4::random(4, 2, 3, 3, -0.5, 0.5, &mut rng);
        reg.register_layer("toy/c1", desc, weights).unwrap();
        Arc::new(reg)
    }

    fn input(seed: u64) -> Tensor4<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor4::random(1, 2, 8, 8, -1.0, 1.0, &mut rng)
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let reg = small_registry();
        let server = Server::start(Arc::clone(&reg), ServerConfig::default());
        let resp = server.infer(ConvRequest::new("toy/c1", input(1))).unwrap();
        assert_eq!(resp.output.dims(), (1, 4, 8, 8));
        // Direct comparison against an unbatched GuardedConv run.
        let plan = reg.get("toy/c1").unwrap();
        let cold = GuardedConv::new(plan.warm.as_ref().unwrap().spec().m)
            .with_chain(plan.chain.clone())
            .with_gemm_config(plan.gemm)
            .run(&input(1), &plan.weights, &plan.desc)
            .unwrap();
        assert_eq!(resp.output.data(), cold.output.data());
        assert_eq!(resp.served_by, cold.served_by);
        server.shutdown();
    }

    #[test]
    fn unknown_layer_and_bad_shape_are_refused() {
        let server = Server::start(small_registry(), ServerConfig::default());
        assert!(matches!(
            server.submit(ConvRequest::new("nope", input(1))),
            Err(ServeError::UnknownLayer(_))
        ));
        let mut rng = StdRng::seed_from_u64(3);
        let bad = Tensor4::random(1, 2, 9, 9, -1.0, 1.0, &mut rng);
        assert!(matches!(
            server.submit(ConvRequest::new("toy/c1", bad)),
            Err(ServeError::Shape(_))
        ));
    }

    #[test]
    fn multi_image_requests_are_served() {
        let server = Server::start(small_registry(), ServerConfig::default());
        let mut rng = StdRng::seed_from_u64(9);
        let three = Tensor4::random(3, 2, 8, 8, -1.0, 1.0, &mut rng);
        let resp = server.infer(ConvRequest::new("toy/c1", three)).unwrap();
        assert_eq!(resp.output.dims(), (3, 4, 8, 8));
    }

    #[test]
    fn zero_deadline_demotes_to_tail_engine() {
        let reg = small_registry();
        let server = Server::start(Arc::clone(&reg), ServerConfig::default());
        let resp = server
            .infer(ConvRequest::new("toy/c1", input(2)).with_deadline(Duration::ZERO))
            .unwrap();
        assert_eq!(resp.served_by, reg.get("toy/c1").unwrap().tail_engine());
    }

    #[test]
    fn config_zero_values_are_clamped() {
        let cfg = ServerConfig {
            queue_capacity: 0,
            executors: 0,
            max_batch: 0,
            ..ServerConfig::default()
        }
        .validated();
        assert_eq!(cfg.queue_capacity, 1, "capacity 0 would shed everything");
        assert_eq!(cfg.executors, 1, "0 executors would serve nothing");
        assert_eq!(cfg.max_batch, 1, "batch 0 would dispatch nothing");
        // Sane values pass through untouched.
        let cfg = ServerConfig::default().validated();
        assert_eq!(cfg.queue_capacity, 256);
        assert_eq!(cfg.executors, 1);
        assert_eq!(cfg.max_batch, 5);
    }

    #[test]
    fn overload_sheds_when_queue_full() {
        // queue_capacity 0 is clamped to 1 at start; a long coalescing
        // wait parks the first submission so the second finds the
        // queue full and is shed with the *clamped* capacity.
        let config = ServerConfig {
            queue_capacity: 0,
            max_batch: 8,
            max_wait: Duration::from_secs(5),
            ..ServerConfig::default()
        };
        let server = Server::start(small_registry(), config);
        let first = server.submit(ConvRequest::new("toy/c1", input(4))).unwrap();
        assert!(matches!(
            server.submit(ConvRequest::new("toy/c1", input(5))),
            Err(ServeError::Overloaded {
                depth: 1,
                capacity: 1
            })
        ));
        server.shutdown();
        first.wait().unwrap();
    }

    #[test]
    fn queue_depth_gauge_drains_to_zero_on_shutdown() {
        wino_probe::set_mode(wino_probe::Mode::Summary);
        // Long wait + large batch keeps submissions parked in the
        // queue until shutdown forces the drain dispatch.
        let config = ServerConfig {
            max_batch: 8,
            max_wait: Duration::from_secs(5),
            ..ServerConfig::default()
        };
        let server = Server::start(small_registry(), config);
        let handles: Vec<_> = (0..3u64)
            .map(|i| {
                server
                    .submit(ConvRequest::new("toy/c1", input(20 + i)))
                    .unwrap()
            })
            .collect();
        assert!(QUEUE_DEPTH.get() > 0, "submissions should raise the gauge");
        server.shutdown();
        for h in handles {
            h.wait().unwrap();
        }
        assert_eq!(server.queue_depth(), 0);
        assert_eq!(QUEUE_DEPTH.get(), 0, "gauge must drain with the server");
    }

    #[test]
    fn responses_carry_traces_with_unique_ids() {
        let server = Server::start(small_registry(), ServerConfig::default());
        let h1 = server
            .submit(ConvRequest::new("toy/c1", input(31)))
            .unwrap();
        let id1 = h1.id();
        let r1 = h1.wait().unwrap();
        let r2 = server.infer(ConvRequest::new("toy/c1", input(32))).unwrap();
        assert_eq!(r1.trace.id, id1);
        assert_ne!(r1.trace.id, r2.trace.id, "request ids are unique");
        assert_eq!(r1.trace.layer, "toy/c1");
        assert_eq!(r1.trace.batch_size, 1, "sequential requests ride alone");
        assert!(r1.trace.batch_peers.is_empty());
        assert!(r1.trace.queue_wait <= r1.trace.e2e);
        assert!(r1.trace.execute <= r1.trace.e2e);
        assert!(!r1.trace.deadline_demoted);
        assert_eq!(r1.trace.demotions, 0);
        let stats = server.stats();
        assert!(
            stats.recent.iter().any(|t| t.id == r2.trace.id),
            "recent ring holds completed traces"
        );
        assert_eq!(stats.queue_depth, 0);
        server.shutdown();
    }

    #[test]
    fn deadline_demotion_is_visible_in_the_trace() {
        let server = Server::start(small_registry(), ServerConfig::default());
        let resp = server
            .infer(ConvRequest::new("toy/c1", input(33)).with_deadline(Duration::ZERO))
            .unwrap();
        assert!(resp.trace.deadline_demoted);
        server.shutdown();
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let server = Server::start(small_registry(), ServerConfig::default());
        server.shutdown();
        assert!(matches!(
            server.submit(ConvRequest::new("toy/c1", input(5))),
            Err(ServeError::ShuttingDown)
        ));
        server.shutdown(); // idempotent
    }

    #[test]
    fn health_snapshot_reports_a_healthy_server() {
        let server = Server::start(small_registry(), ServerConfig::default());
        server.infer(ConvRequest::new("toy/c1", input(40))).unwrap();
        let h = server.health();
        assert_eq!(h.status, HealthStatus::Healthy);
        assert!(h.scheduler_alive);
        assert_eq!(h.executors_configured, 1);
        assert_eq!(h.executor_restarts, 0);
        assert_eq!(h.batch_panics, 0);
        assert_eq!(h.queue_depth, 0);
        assert_eq!(h.executors.len(), 1);
        // The response sends mid-batch, so only the batch-start beat
        // is guaranteed to have landed by now.
        assert!(
            h.executors[0].beats >= 1,
            "a served batch leaves at least one heartbeat, saw {}",
            h.executors[0].beats
        );
        assert_eq!(h.breakers.len(), 1, "breakers pre-seeded from registry");
        assert_eq!(h.breakers[0].layer, "toy/c1");
        assert_eq!(h.breakers[0].state, BreakerState::Closed);
        server.shutdown();
    }

    #[test]
    fn response_slot_sends_exactly_once() {
        let (tx, rx) = channel::bounded(1);
        let slot = ResponseSlot::new(tx);
        assert!(slot.send(Err(ServeError::ShuttingDown)));
        assert!(
            !slot.send(Err(ServeError::ShuttingDown)),
            "second send must be discarded"
        );
        assert!(rx.recv().is_ok());
        assert!(rx.recv().is_err(), "channel closed after the single send");
    }
}
