//! Executor supervision: liveness, respawn, and server health.
//!
//! The supervisor thread owns the scheduler and executor join handles.
//! Executors heartbeat into a shared [`Liveness`] table (beats +
//! busy/idle, reported through [`crate::Server::health`]); thread
//! *death* is detected from the join handles — a finished executor
//! that joins to a panic payload is dead, one that joins clean simply
//! drained a disconnected channel. Dead executors are respawned on
//! their original slot under a restart budget with exponential
//! backoff. Scheduler death, or an exhausted budget, is unrecoverable:
//! the supervisor closes admission, fails every pending request with
//! [`ServeError::Internal`] (never stranding a waiter), and from then
//! on bleeds the batch channel so a still-live scheduler can never
//! wedge on a full channel nobody drains.
//!
//! During shutdown the supervisor keeps supervising — an executor that
//! dies mid-drain is still respawned while work remains — and returns
//! only once the scheduler and every executor have been joined.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel;
use wino_guard::payload_to_string;

use crate::breaker::BreakerSnapshot;
use crate::error::ServeError;
use crate::server::{lock_queue, spawn_executor, ExecShared, SubmissionQueue, QUEUE_DEPTH};

static EXEC_DEATHS: wino_probe::Counter = wino_probe::Counter::new("serve.executor_deaths");
static EXEC_RESTARTS: wino_probe::Counter = wino_probe::Counter::new("serve.executor_restarts");
static SCHED_DEATHS: wino_probe::Counter = wino_probe::Counter::new("serve.scheduler_deaths");

/// Supervision cadence. Short enough that a killed executor is
/// respawned within a few milliseconds; long enough that an idle
/// supervisor costs nothing measurable.
const TICK: Duration = Duration::from_millis(2);
/// Backoff ceiling for consecutive executor respawns.
const MAX_BACKOFF: Duration = Duration::from_millis(64);

/// One executor's row in the shared liveness table.
struct LivenessSlot {
    /// Bumped when the executor picks up and when it finishes a batch.
    beats: AtomicU64,
    /// `true` between pickup and completion.
    busy: AtomicBool,
}

/// Heartbeat table shared between executors (writers), the supervisor,
/// and [`crate::Server::health`] (readers). Rows are per *slot*: a
/// respawned executor inherits its predecessor's row and keeps the
/// beat count monotonic.
pub(crate) struct Liveness {
    slots: Vec<LivenessSlot>,
}

impl Liveness {
    pub(crate) fn new(executors: usize) -> Liveness {
        Liveness {
            slots: (0..executors)
                .map(|_| LivenessSlot {
                    beats: AtomicU64::new(0),
                    busy: AtomicBool::new(false),
                })
                .collect(),
        }
    }

    pub(crate) fn beat(&self, slot: usize, busy: bool) {
        if let Some(s) = self.slots.get(slot) {
            s.beats.fetch_add(1, Ordering::Relaxed);
            s.busy.store(busy, Ordering::Relaxed);
        }
    }
}

/// Mutable health flags shared by the supervisor, the executors, and
/// [`crate::Server::health`]. Deliberately independent of the probe's
/// stats gate: health must report truthfully even with metrics off.
pub(crate) struct HealthState {
    pub(crate) failed: AtomicBool,
    pub(crate) scheduler_alive: AtomicBool,
    pub(crate) executors_alive: AtomicUsize,
    pub(crate) executor_restarts: AtomicU64,
    pub(crate) batch_panics: AtomicU64,
}

impl HealthState {
    pub(crate) fn new(executors: usize) -> HealthState {
        HealthState {
            failed: AtomicBool::new(false),
            scheduler_alive: AtomicBool::new(true),
            executors_alive: AtomicUsize::new(executors),
            executor_restarts: AtomicU64::new(0),
            batch_panics: AtomicU64::new(0),
        }
    }

    pub(crate) fn note_batch_panic(&self) {
        self.batch_panics.fetch_add(1, Ordering::Relaxed);
    }
}

/// Overall server condition, derived in [`crate::Server::health`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthStatus {
    /// Every thread alive, no panics contained, no breaker tripped.
    Healthy,
    /// Serving, but something recovered: an executor was respawned, a
    /// batch panic was contained, or a layer breaker is open.
    Degraded,
    /// Unrecoverable: scheduler death or exhausted restart budget.
    /// Admission is closed and every pending request was failed.
    Failed,
}

/// One executor slot as seen by [`crate::Server::health`].
#[derive(Clone, Debug)]
pub struct ExecutorHealth {
    /// Slot index (stable across respawns).
    pub slot: usize,
    /// Heartbeats so far (pickup + completion per batch).
    pub beats: u64,
    /// `true` while a batch is being executed on this slot.
    pub busy: bool,
}

/// Point-in-time health snapshot from [`crate::Server::health`].
#[derive(Clone, Debug)]
pub struct ServerHealth {
    /// Overall condition.
    pub status: HealthStatus,
    /// `false` once the scheduler thread has exited (normal at
    /// shutdown, fatal before it).
    pub scheduler_alive: bool,
    /// Executor threads currently running.
    pub executors_alive: usize,
    /// Executor threads the config asked for.
    pub executors_configured: usize,
    /// Executors respawned by the supervisor so far.
    pub executor_restarts: u64,
    /// Batch panics contained by `catch_unwind` so far.
    pub batch_panics: u64,
    /// Current submission-queue depth.
    pub queue_depth: usize,
    /// Per-executor heartbeat rows.
    pub executors: Vec<ExecutorHealth>,
    /// Per-layer breaker positions.
    pub breakers: Vec<BreakerSnapshot>,
}

impl ServerHealth {
    pub(crate) fn executor_rows(liveness: &Liveness) -> Vec<ExecutorHealth> {
        liveness
            .slots
            .iter()
            .enumerate()
            .map(|(slot, s)| ExecutorHealth {
                slot,
                beats: s.beats.load(Ordering::Relaxed),
                busy: s.busy.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// Handle to the supervisor thread, owned by the server.
pub(crate) struct Supervisor {
    stop_tx: channel::Sender<()>,
    handle: Option<JoinHandle<()>>,
}

impl Supervisor {
    /// Spawns the supervisor thread over an already-running scheduler
    /// and executor pool.
    pub(crate) fn spawn(
        scheduler: JoinHandle<()>,
        executors: Vec<JoinHandle<()>>,
        shared: ExecShared,
        queue: Arc<SubmissionQueue>,
        shutting_down: Arc<AtomicBool>,
        max_restarts: u64,
        backoff_base: Duration,
    ) -> Supervisor {
        let (stop_tx, stop_rx) = channel::bounded::<()>(1);
        let mut state = SupState {
            scheduler: Some(scheduler),
            seats: executors.into_iter().map(Some).collect(),
            shared,
            queue,
            shutting_down,
            restarts_left: max_restarts,
            backoff: backoff_base.max(Duration::from_micros(100)),
            failed: false,
        };
        let handle = std::thread::Builder::new()
            .name("wino-supervisor".into())
            .spawn(move || supervisor_loop(&mut state, &stop_rx))
            .expect("spawn supervisor thread");
        Supervisor {
            stop_tx,
            handle: Some(handle),
        }
    }

    /// Signals stop and joins; returns once the scheduler and every
    /// executor are joined too.
    pub(crate) fn stop_and_join(mut self) {
        let _ = self.stop_tx.try_send(());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

struct SupState {
    scheduler: Option<JoinHandle<()>>,
    seats: Vec<Option<JoinHandle<()>>>,
    shared: ExecShared,
    queue: Arc<SubmissionQueue>,
    shutting_down: Arc<AtomicBool>,
    restarts_left: u64,
    backoff: Duration,
    failed: bool,
}

fn supervisor_loop(state: &mut SupState, stop_rx: &channel::Receiver<()>) {
    let mut stopping = false;
    loop {
        if stopping {
            // Drain mode: no stop channel to wait on, poll fast so the
            // shutdown join is snappy.
            std::thread::sleep(Duration::from_micros(500));
        } else {
            match stop_rx.recv_timeout(TICK) {
                Ok(()) | Err(channel::RecvTimeoutError::Disconnected) => stopping = true,
                Err(channel::RecvTimeoutError::Timeout) => {}
            }
        }
        state.supervise_once(stopping);
        if stopping && state.scheduler.is_none() && state.seats.iter().all(Option::is_none) {
            return;
        }
    }
}

impl SupState {
    /// One supervision pass: reap finished threads, respawn dead
    /// executors under budget, fail everything on unrecoverable state,
    /// and bleed the batch channel when nobody else can drain it.
    fn supervise_once(&mut self, stopping: bool) {
        self.check_scheduler(stopping);
        self.check_executors();
        self.shared
            .health
            .executors_alive
            .store(self.seats.iter().flatten().count(), Ordering::Relaxed);
        // With no executor alive, batches already extracted from the
        // queue would sit in the channel forever (and a live scheduler
        // would eventually block on the full channel). The supervisor
        // is the drain of last resort: fail the members terminally.
        if self.seats.iter().all(Option::is_none) {
            while let Ok(batch) = self.shared.rx.try_recv() {
                for p in batch {
                    p.slot.send(Err(ServeError::Internal {
                        cause: "no executor available to run this batch".to_string(),
                    }));
                }
            }
        }
    }

    fn check_scheduler(&mut self, stopping: bool) {
        let finished = self.scheduler.as_ref().is_some_and(JoinHandle::is_finished);
        if !finished {
            return;
        }
        let handle = self.scheduler.take().expect("checked above");
        let panicked = handle.join().err();
        self.shared
            .health
            .scheduler_alive
            .store(false, Ordering::Relaxed);
        let expected = stopping || self.shutting_down.load(Ordering::SeqCst) || self.failed;
        if let Some(payload) = panicked {
            let cause = payload_to_string(payload);
            SCHED_DEATHS.add(1);
            wino_probe::diag(format!("serve: scheduler thread died: {cause}"));
            wino_probe::flight::dump_incident("serve.scheduler_death");
            if !expected {
                self.declare_failed(&format!("scheduler thread died: {cause}"));
            }
        } else if !expected {
            // A clean scheduler exit outside shutdown means the batch
            // channel disconnected under it — also unrecoverable.
            SCHED_DEATHS.add(1);
            self.declare_failed("scheduler thread exited unexpectedly");
        }
    }

    fn check_executors(&mut self) {
        for slot in 0..self.seats.len() {
            let finished = self.seats[slot]
                .as_ref()
                .is_some_and(JoinHandle::is_finished);
            if !finished {
                continue;
            }
            let handle = self.seats[slot].take().expect("checked above");
            let Err(payload) = handle.join() else {
                // Clean exit: the batch channel disconnected (scheduler
                // gone) and drained — normal teardown, not a death.
                continue;
            };
            let cause = payload_to_string(payload);
            EXEC_DEATHS.add(1);
            wino_probe::diag(format!("serve: executor {slot} died: {cause}"));
            wino_probe::flight::dump_incident("serve.executor_death");
            // Respawn only while work can still arrive; after the
            // scheduler has exited and the channel is empty a new
            // executor would just observe the disconnect and leave.
            let work_remains = self.scheduler.is_some() || !self.shared.rx.is_empty();
            if !work_remains {
                continue;
            }
            if self.restarts_left == 0 {
                self.declare_failed(&format!(
                    "executor restart budget exhausted (last death: {cause})"
                ));
                continue;
            }
            self.restarts_left -= 1;
            std::thread::sleep(self.backoff);
            self.backoff = (self.backoff * 2).min(MAX_BACKOFF);
            self.seats[slot] = Some(spawn_executor(slot, self.shared.clone()));
            EXEC_RESTARTS.add(1);
            self.shared
                .health
                .executor_restarts
                .fetch_add(1, Ordering::Relaxed);
            wino_probe::diag(format!(
                "serve: respawned executor {slot} ({} restarts left)",
                self.restarts_left
            ));
        }
    }

    /// Unrecoverable: close admission, fail every pending request with
    /// a terminal error (waiters must unblock), and record the state.
    /// The batch-channel bleed in [`SupState::supervise_once`] handles
    /// anything already extracted.
    fn declare_failed(&mut self, cause: &str) {
        if self.failed {
            return;
        }
        self.failed = true;
        self.shared.health.failed.store(true, Ordering::SeqCst);
        wino_probe::diag(format!(
            "serve: unrecoverable ({cause}); failing pending requests and closing admission"
        ));
        wino_probe::flight::dump_incident("serve.failed");
        let mut st = lock_queue(&self.queue);
        st.open = false;
        for p in st.pending.drain(..) {
            p.slot.send(Err(ServeError::Internal {
                cause: cause.to_string(),
            }));
        }
        QUEUE_DEPTH.set(0);
        drop(st);
        // Wake a scheduler parked on the condvar so it can observe the
        // closed queue and exit its drain loop.
        self.queue.cv.notify_all();
        wino_telemetry::emit("serve.failed");
    }
}
