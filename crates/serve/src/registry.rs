//! The plan registry: layer name → pinned plan + warm filters.
//!
//! Serving must pin a *specific* tuned `(m, variant)` plan per layer
//! rather than re-deciding per request. Registration resolves each
//! layer's engine through the persisted tuner cache (falling back to
//! the static heuristic via [`wino_graph::select_engine_cached`]) and
//! precomputes the filter transform `U = G·g·Gᵀ` once, so steady-state
//! requests skip the filter-transform phase entirely. Whole reference
//! networks are registrable by name from the zoo, and arbitrary
//! [`ComputeGraph`]s by walking their conv nodes.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wino_conv::PrecomputedFilters;
use wino_gemm::GemmConfig;
use wino_graph::{
    alexnet_convs, inception_v1_convs, nin_convs, select_engine_cached, ComputeGraph, EngineChoice,
    NamedConv,
};
use wino_guard::Engine;
use wino_tensor::{ConvDesc, Tensor4};
use wino_tuner::TuningCache;

use wino_exec::{ArenaPool, CompiledNetwork, ConvPlan};
use wino_graph::{
    build_alexnet_graph, build_inception_3a_3b, build_inception_v1_graph, build_nin_graph, NodeId,
};

use crate::error::ServeError;

static REGISTERED: wino_probe::Counter = wino_probe::Counter::new("serve.layers_registered");
static NET_REGISTERED: wino_probe::Counter = wino_probe::Counter::new("serve.networks_registered");

/// One registered layer: its pinned engine plan, raw weights (for
/// fallback engines and guardrails), and the warm filter transform.
pub struct LayerPlan {
    /// Registry key.
    pub name: String,
    /// Canonical descriptor at batch 1 (requests may carry any batch).
    pub desc: ConvDesc,
    /// The selected engine (tuned plan or static heuristic).
    pub engine: EngineChoice,
    /// Raw filter bank `(K, C, r, r)`.
    pub weights: Tensor4<f32>,
    /// Warm `U = G·g·Gᵀ`, present for Winograd plans; shared by every
    /// request so the per-request filter-transform phase disappears.
    pub warm: Option<PrecomputedFilters>,
    /// Degradation chain headed by the selected engine.
    pub chain: Vec<Engine>,
    /// GEMM blocking for the Winograd multiplication stage.
    pub gemm: GemmConfig,
}

impl LayerPlan {
    /// The engine serving requests when nothing demotes.
    pub fn head_engine(&self) -> Engine {
        self.chain[0]
    }

    /// The cheapest engine (the chain's terminal fallback) — what a
    /// near-deadline request demotes to.
    pub fn tail_engine(&self) -> Engine {
        *self.chain.last().expect("chains are never empty")
    }
}

/// Maps an engine choice onto its degradation chain (head first,
/// terminal direct fallback last). Delegates to `wino-exec`'s shared
/// definition so the serving registry and the network executor pin the
/// exact same chains.
fn chain_for(engine: &EngineChoice) -> Vec<Engine> {
    wino_exec::chain_for(engine)
}

/// A registered [`LayerPlan`] *is* a network-executor conv plan: the
/// plan compiler pins each graph conv node to its registry entry, so
/// whole-network execution reuses the same chain, GEMM blocking, and
/// warm filter bank that single-layer serving does.
impl ConvPlan for LayerPlan {
    fn plan_name(&self) -> &str {
        &self.name
    }

    fn chain(&self) -> &[Engine] {
        &self.chain
    }

    fn gemm_config(&self) -> GemmConfig {
        self.gemm
    }

    fn weights(&self) -> &Tensor4<f32> {
        &self.weights
    }

    fn warm(&self) -> Option<&PrecomputedFilters> {
        self.warm.as_ref()
    }
}

/// One registered whole-network serving plan: the compiled wave
/// schedule + arena plan, the pool of recycled per-request arenas, and
/// the engine-annotated graph kept as the bit-identity oracle.
pub struct NetworkPlan {
    /// Registry key.
    pub name: String,
    /// Compiled schedule with per-conv plans pinned to this registry's
    /// [`LayerPlan`]s.
    pub net: Arc<CompiledNetwork>,
    /// Recycled per-request arenas (registry-owned: the server
    /// reserves them at start so steady-state serving allocates
    /// nothing at graph level).
    pub pool: Arc<ArenaPool>,
    /// The fused, engine-annotated source graph. Naive execution of
    /// this graph is the reference the executor must match bit for
    /// bit.
    pub graph: ComputeGraph,
}

impl NetworkPlan {
    /// Per-image input `(c, h, w)` the network expects.
    pub fn input_dims(&self) -> (usize, usize, usize) {
        self.net.input_dims()
    }
}

/// Thread-safe registry of serving plans.
pub struct PlanRegistry {
    layers: RwLock<BTreeMap<String, Arc<LayerPlan>>>,
    networks: RwLock<BTreeMap<String, Arc<NetworkPlan>>>,
    cache: TuningCache,
    device: String,
}

impl Default for PlanRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanRegistry {
    /// Empty registry with an empty tuning cache (every layer falls
    /// back to the static heuristic) and device key `"cpu"`.
    pub fn new() -> Self {
        PlanRegistry {
            layers: RwLock::new(BTreeMap::new()),
            networks: RwLock::new(BTreeMap::new()),
            cache: TuningCache::new(),
            device: "cpu".to_string(),
        }
    }

    /// Registry resolving plans against an explicit tuning cache and
    /// device key.
    pub fn with_cache(cache: TuningCache, device: impl Into<String>) -> Self {
        PlanRegistry {
            layers: RwLock::new(BTreeMap::new()),
            networks: RwLock::new(BTreeMap::new()),
            cache,
            device: device.into(),
        }
    }

    /// Registry whose cache is loaded from `path` with the
    /// never-failing loader (damage degrades to the static heuristic).
    pub fn from_cache_file(path: &Path, device: impl Into<String>) -> Self {
        Self::with_cache(TuningCache::load_or_rebuild(path), device)
    }

    /// Registers one layer, resolving its engine from the tuning cache
    /// with static fallback. The filter transform runs here, once.
    ///
    /// # Errors
    /// [`ServeError::Shape`] when `weights` do not match `desc`.
    pub fn register_layer(
        &self,
        name: impl Into<String>,
        desc: ConvDesc,
        weights: Tensor4<f32>,
    ) -> Result<(), ServeError> {
        let mut canonical = desc;
        canonical.batch = 1;
        let engine = select_engine_cached(&canonical, &self.cache, &self.device);
        self.register_with_engine(name, desc, weights, engine)
    }

    /// Registers one layer with an explicitly pinned engine (no cache
    /// consultation).
    ///
    /// # Errors
    /// [`ServeError::Shape`] when `weights` do not match `desc`.
    pub fn register_with_engine(
        &self,
        name: impl Into<String>,
        desc: ConvDesc,
        weights: Tensor4<f32>,
        engine: EngineChoice,
    ) -> Result<(), ServeError> {
        let name = name.into();
        let mut span = wino_probe::span("serve.register");
        span.arg("layer", || name.clone());
        let mut canonical = desc;
        canonical.batch = 1;
        if weights.dims() != (desc.out_ch, desc.in_ch, desc.ksz, desc.ksz) {
            return Err(ServeError::Shape(format!(
                "weights {:?} do not match {desc}",
                weights.dims()
            )));
        }
        let (warm, gemm) = match &engine {
            EngineChoice::Winograd(cfg) => {
                let pre = PrecomputedFilters::for_config(&weights, &canonical, cfg)
                    .map_err(|e| ServeError::Shape(e.to_string()))?;
                (Some(pre), cfg.gemm)
            }
            _ => (None, GemmConfig::default()),
        };
        let plan = LayerPlan {
            chain: chain_for(&engine),
            name: name.clone(),
            desc: canonical,
            engine,
            weights,
            warm,
            gemm,
        };
        self.layers.write().insert(name, Arc::new(plan));
        REGISTERED.add(1);
        Ok(())
    }

    /// Registers every weighted conv node of a compute graph as
    /// `"{prefix}/node{i}"`. Nodes without attached weights are
    /// skipped (they cannot serve). Returns the registered names.
    ///
    /// # Errors
    /// [`ServeError::Shape`] when any node's weights disagree with its
    /// descriptor (the graph validates this on attach, so effectively
    /// unreachable).
    pub fn register_graph(
        &self,
        prefix: &str,
        graph: &ComputeGraph,
    ) -> Result<Vec<String>, ServeError> {
        let mut names = Vec::new();
        for (id, desc) in graph.conv_nodes() {
            let Some(weights) = graph.weights(id) else {
                continue;
            };
            let name = format!("{prefix}/node{}", id.0);
            self.register_layer(name.clone(), desc, weights.clone())?;
            names.push(name);
        }
        Ok(names)
    }

    /// Registers a zoo network by name (`"alexnet"`, `"nin"`,
    /// `"inception-v1"`) with deterministic seeded weights, one layer
    /// per spatial convolution, named `"{network}/{layer}"`. Returns
    /// the registered names.
    ///
    /// # Errors
    /// [`ServeError::UnknownModel`] for names outside the zoo.
    pub fn register_network(&self, network: &str) -> Result<Vec<String>, ServeError> {
        let convs: Vec<NamedConv> = match network {
            "alexnet" => alexnet_convs(),
            "nin" => nin_convs(),
            "inception-v1" => inception_v1_convs(),
            _ => return Err(ServeError::UnknownModel(network.to_string())),
        };
        let mut names = Vec::new();
        for named in convs {
            let name = format!("{}/{}", named.network, named.layer);
            let d = named.desc;
            // Deterministic per-layer weights, kept small so guardrail
            // spot checks stay comfortably within tolerance.
            let mut rng = StdRng::seed_from_u64(fnv1a(&name));
            let weights =
                Tensor4::<f32>::random(d.out_ch, d.in_ch, d.ksz, d.ksz, -0.1, 0.1, &mut rng);
            self.register_layer(name.clone(), d, weights)?;
            names.push(name);
        }
        Ok(names)
    }

    /// Registers a whole network for graph-level serving: fuses
    /// conv+ReLU pairs, resolves every conv node's engine through the
    /// tuning cache (pinning it on the graph *and* as a registry
    /// [`LayerPlan`] named `"{name}/node{i}"` — the warm filter
    /// transform runs exactly once, here), compiles the wave schedule
    /// and arena plan, and stores the resulting [`NetworkPlan`] under
    /// `name`. Returns the plan.
    ///
    /// # Errors
    /// [`ServeError::Shape`] on weightless conv nodes or compile
    /// failures.
    pub fn register_network_graph(
        &self,
        name: impl Into<String>,
        mut graph: ComputeGraph,
        input: (usize, usize, usize),
    ) -> Result<Arc<NetworkPlan>, ServeError> {
        let name = name.into();
        let mut span = wino_probe::span("serve.register_network");
        span.arg("network", || name.clone());
        graph.fuse_relu();
        // Resolve + pin engines first so the graph kept as the oracle
        // agrees with the layer plans the compiler will bind.
        for (id, desc) in graph.conv_nodes() {
            let mut canonical = desc;
            canonical.batch = 1;
            let engine = select_engine_cached(&canonical, &self.cache, &self.device);
            graph.set_engine(id, engine);
            let weights = graph
                .weights(id)
                .ok_or_else(|| {
                    ServeError::Shape(format!(
                        "network {name:?}: conv node {} has no weights",
                        id.0
                    ))
                })?
                .clone();
            self.register_with_engine(format!("{name}/node{}", id.0), desc, weights, engine)?;
        }
        let net = wino_exec::compile(name.clone(), &graph, input, &mut |id: NodeId, _desc| {
            let layer = format!("{name}/node{}", id.0);
            self.get(&layer)
                .map(|plan| plan as Arc<dyn ConvPlan>)
                .ok_or(wino_exec::ExecError::MissingPlan(id.0))
        })
        .map_err(|e| ServeError::Shape(e.to_string()))?;
        let net = Arc::new(net);
        let plan = Arc::new(NetworkPlan {
            name: name.clone(),
            pool: Arc::new(ArenaPool::new(&net)),
            net,
            graph,
        });
        self.networks.write().insert(name, Arc::clone(&plan));
        NET_REGISTERED.add(1);
        Ok(plan)
    }

    /// Registers a zoo network for graph-level serving by name
    /// (`"alexnet"`, `"nin"`, `"inception-v1"`, `"inception-3a-3b"`)
    /// with deterministic seeded weights.
    ///
    /// # Errors
    /// [`ServeError::UnknownModel`] for names outside the zoo, plus
    /// everything [`PlanRegistry::register_network_graph`] reports.
    pub fn register_zoo_network(&self, network: &str) -> Result<Arc<NetworkPlan>, ServeError> {
        let (built, input) = match network {
            "alexnet" => (build_alexnet_graph(), (3, 227, 227)),
            "nin" => (build_nin_graph(), (3, 227, 227)),
            "inception-v1" => (build_inception_v1_graph(), (64, 56, 56)),
            "inception-3a-3b" => (build_inception_3a_3b(), (192, 28, 28)),
            _ => return Err(ServeError::UnknownModel(network.to_string())),
        };
        let (mut graph, _out) = built.map_err(|e| ServeError::Shape(e.to_string()))?;
        for (id, desc) in graph.conv_nodes() {
            // Deterministic per-node weights, matching the per-layer
            // zoo registration's amplitude so guardrail spot checks
            // stay in tolerance.
            let seed = fnv1a(&format!("{network}/node{}", id.0));
            let mut rng = StdRng::seed_from_u64(seed);
            let weights = Tensor4::<f32>::random(
                desc.out_ch,
                desc.in_ch,
                desc.ksz,
                desc.ksz,
                -0.1,
                0.1,
                &mut rng,
            );
            graph
                .set_weights(id, weights)
                .map_err(|e| ServeError::Shape(e.to_string()))?;
        }
        self.register_network_graph(network, graph, input)
    }

    /// Looks up a registered network plan.
    pub fn network(&self, name: &str) -> Option<Arc<NetworkPlan>> {
        self.networks.read().get(name).cloned()
    }

    /// Every registered network plan, in name order (the server seeds
    /// breakers and reserves arenas per network at start).
    pub fn network_plans(&self) -> Vec<Arc<NetworkPlan>> {
        self.networks.read().values().cloned().collect()
    }

    /// Registered network names, sorted.
    pub fn network_names(&self) -> Vec<String> {
        self.networks.read().keys().cloned().collect()
    }

    /// Looks up a registered plan.
    pub fn get(&self, name: &str) -> Option<Arc<LayerPlan>> {
        self.layers.read().get(name).cloned()
    }

    /// Registered layer names, sorted.
    pub fn layer_names(&self) -> Vec<String> {
        self.layers.read().keys().cloned().collect()
    }

    /// Every registered plan, in name order (the server seeds one
    /// circuit breaker per plan at start).
    pub fn plans(&self) -> Vec<Arc<LayerPlan>> {
        self.layers.read().values().cloned().collect()
    }

    /// Number of registered layers.
    pub fn len(&self) -> usize {
        self.layers.read().len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.layers.read().is_empty()
    }
}

/// FNV-1a of a layer name — the stable weight seed.
fn fnv1a(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for byte in s.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_tuner::{Evaluation, TuningPoint};

    fn small_desc() -> ConvDesc {
        ConvDesc::new(3, 1, 1, 4, 1, 8, 8, 2)
    }

    fn small_weights() -> Tensor4<f32> {
        let mut rng = StdRng::seed_from_u64(7);
        Tensor4::random(4, 2, 3, 3, -0.5, 0.5, &mut rng)
    }

    #[test]
    fn register_and_lookup() {
        let reg = PlanRegistry::new();
        reg.register_layer("net/c1", small_desc(), small_weights())
            .unwrap();
        let plan = reg.get("net/c1").unwrap();
        assert_eq!(plan.desc.batch, 1);
        assert!(matches!(plan.engine, EngineChoice::Winograd(_)));
        assert!(plan.warm.is_some(), "winograd plans carry warm filters");
        assert_eq!(plan.tail_engine(), Engine::Direct);
        assert!(reg.get("net/none").is_none());
        assert_eq!(reg.layer_names(), vec!["net/c1".to_string()]);
    }

    #[test]
    fn weights_must_match_desc() {
        let reg = PlanRegistry::new();
        let mut bad = small_desc();
        bad.out_ch = 5;
        assert!(matches!(
            reg.register_layer("x", bad, small_weights()),
            Err(ServeError::Shape(_))
        ));
    }

    #[test]
    fn tuned_plan_pins_the_engine() {
        use wino_codegen::{PlanVariant, Unroll};
        let cache = TuningCache::new();
        let mut canonical = small_desc();
        canonical.batch = 1;
        cache.put(
            &canonical,
            "test-dev",
            &Evaluation {
                point: TuningPoint {
                    variant: PlanVariant::WinogradNonFused { m: 3 },
                    unroll: Unroll::Full,
                    mnt: 2,
                    mnb: 4,
                    threads: 1,
                },
                time_ms: 0.1,
            },
        );
        let reg = PlanRegistry::with_cache(cache, "test-dev");
        reg.register_layer("net/c1", small_desc(), small_weights())
            .unwrap();
        let plan = reg.get("net/c1").unwrap();
        assert_eq!(plan.head_engine(), Engine::NonFusedWinograd(3));
        assert_eq!(plan.warm.as_ref().unwrap().spec().m, 3);
    }

    #[test]
    fn zoo_networks_register_by_name() {
        let reg = PlanRegistry::new();
        let names = reg.register_network("alexnet").unwrap();
        assert_eq!(names.len(), 5);
        assert!(reg.get("alexnet/conv3").is_some());
        // conv1 is 11x11 stride 4: no Winograd, no warm filters.
        let conv1 = reg.get("alexnet/conv1").unwrap();
        assert_eq!(conv1.head_engine(), Engine::Im2col);
        assert!(conv1.warm.is_none());
        // conv3 is a unit-stride 3x3: Winograd with warm filters.
        let conv3 = reg.get("alexnet/conv3").unwrap();
        assert!(matches!(conv3.head_engine(), Engine::NonFusedWinograd(_)));
        assert!(conv3.warm.is_some());
        assert!(matches!(
            reg.register_network("resnet-9000"),
            Err(ServeError::UnknownModel(_))
        ));
    }

    #[test]
    fn graph_registration_walks_conv_nodes() {
        let mut g = ComputeGraph::new();
        let input = g.add_input();
        let desc = small_desc();
        let conv = g.add_conv(input, desc).unwrap();
        g.set_weights(conv, small_weights()).unwrap();
        let reg = PlanRegistry::new();
        let names = reg.register_graph("toy", &g).unwrap();
        assert_eq!(names.len(), 1);
        assert!(reg.get(&names[0]).is_some());
    }
}
