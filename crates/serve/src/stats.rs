//! Per-request serve traces and the server statistics snapshot.
//!
//! Every admitted request gets a process-unique id at submission;
//! the executor fills in a [`RequestTrace`] when the request is
//! served — queue wait, batch composition, which engine actually ran
//! it, and the per-phase conv breakdown captured from the executor
//! thread's own span buffer. The last [`RECENT_CAP`] traces are kept
//! in a ring for [`crate::Server::stats`]; each response also carries
//! its own trace.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use wino_guard::Engine;

/// Completed request traces retained for [`ServerStats::recent`].
pub const RECENT_CAP: usize = 64;

/// The full story of one served request.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    /// Process-unique request id, assigned at submission.
    pub id: u64,
    /// Layer the request ran against.
    pub layer: String,
    /// Submission to execution start.
    pub queue_wait: Duration,
    /// Time inside the guarded convolution (shared by the whole
    /// coalesced group).
    pub execute: Duration,
    /// Submission to response send.
    pub e2e: Duration,
    /// Size of the coalesced group this request rode in (requests,
    /// not images).
    pub batch_size: usize,
    /// Ids of the other requests in the group.
    pub batch_peers: Vec<u64>,
    /// Engine that produced the output, after any demotions.
    pub served_by: Engine,
    /// Guard demotions taken on the way to `served_by`.
    pub demotions: usize,
    /// Whether the deadline policy demoted this request to the
    /// terminal fallback engine before execution.
    pub deadline_demoted: bool,
    /// Per-phase conv durations (ns) summed from the executor
    /// thread's spans for this group; empty when tracing is off.
    pub phases: Vec<(&'static str, u64)>,
}

/// Shared mutable state behind request ids and the recent-trace ring.
pub(crate) struct StatsInner {
    next_id: AtomicU64,
    recent: Mutex<VecDeque<RequestTrace>>,
}

impl StatsInner {
    pub(crate) fn new() -> Self {
        StatsInner {
            next_id: AtomicU64::new(1),
            recent: Mutex::new(VecDeque::new()),
        }
    }

    pub(crate) fn assign_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn push(&self, trace: RequestTrace) {
        let mut recent = crate::server::lock_recover(&self.recent);
        if recent.len() == RECENT_CAP {
            recent.pop_front();
        }
        recent.push_back(trace);
    }

    pub(crate) fn recent(&self) -> Vec<RequestTrace> {
        crate::server::lock_recover(&self.recent)
            .iter()
            .cloned()
            .collect()
    }
}

/// Point-in-time server statistics.
///
/// The counters are read from the process-global probe registry, so
/// with several servers in one process they aggregate across all of
/// them (the probe counters are process-global by design); the
/// `recent` ring and `queue_depth` are this server's own.
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// Requests admitted to the queue.
    pub enqueued: u64,
    /// Requests shed at admission (queue full).
    pub shed: u64,
    /// Coalesced batches dispatched.
    pub batches: u64,
    /// Requests that rode in a batch of size > 1.
    pub batched: u64,
    /// Requests executed to completion.
    pub executed: u64,
    /// Requests the deadline policy demoted to the fallback engine.
    pub deadline_demotions: u64,
    /// Current submission-queue depth.
    pub queue_depth: usize,
    /// The most recent completed request traces, oldest first.
    pub recent: Vec<RequestTrace>,
}
