//! Per-layer circuit breakers.
//!
//! A layer whose full degradation chain keeps demoting (guardrail
//! rejections, engine panics, engine errors) wastes the doomed
//! engines' work on every batch. The breaker watches *consecutive*
//! unclean batch executions per layer and, past a threshold, trips the
//! layer straight to its terminal fallback engine for a cool-down
//! window. After the window one half-open **probe batch** rides the
//! full chain again: a clean probe closes the breaker, an unclean one
//! reopens it for another window.
//!
//! State machine (per layer):
//!
//! ```text
//! Closed --(threshold consecutive unclean)--> Open
//! Open   --(cooldown elapsed)--------------> HalfOpen (one probe)
//! HalfOpen --(probe clean)-----------------> Closed
//! HalfOpen --(probe unclean)---------------> Open
//! ```
//!
//! Deadline-demoted groups already run the fallback engine by design
//! and never feed the breaker. Breaker bookkeeping is independent of
//! the probe's stats gate — tripping must work even with metrics off —
//! only the counters and the per-layer state gauge are gated.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

static OPEN: wino_probe::Counter = wino_probe::Counter::new("serve.breaker.open");
static HALF_OPEN: wino_probe::Counter = wino_probe::Counter::new("serve.breaker.half_open");
static CLOSE: wino_probe::Counter = wino_probe::Counter::new("serve.breaker.close");

/// Breaker position, exposed through [`crate::Server::health`] and as
/// the per-layer `serve.breaker_state.<layer>` gauge (0 = closed,
/// 1 = half-open, 2 = open).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Batches ride the full degradation chain.
    Closed,
    /// Batches ride the terminal fallback engine until the cool-down
    /// window elapses.
    Open,
    /// The window elapsed: one probe batch rides the full chain while
    /// everything else stays on the fallback.
    HalfOpen,
}

impl BreakerState {
    fn gauge_value(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        })
    }
}

/// How the breaker wants the next batch executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BreakerDecision {
    /// Full degradation chain; the outcome feeds the failure streak.
    Full,
    /// Full chain as the half-open probe; the outcome closes or
    /// reopens the breaker.
    Probe,
    /// Terminal fallback engine only; the outcome is not judged.
    Fallback,
}

impl BreakerDecision {
    pub(crate) fn full_chain(self) -> bool {
        !matches!(self, BreakerDecision::Fallback)
    }
}

/// Point-in-time view of one layer's breaker.
#[derive(Clone, Debug)]
pub struct BreakerSnapshot {
    /// Layer the breaker guards.
    pub layer: String,
    /// Current position.
    pub state: BreakerState,
    /// Times the breaker has opened over the server's lifetime.
    pub trips: u64,
}

struct BreakerInner {
    state: BreakerState,
    consecutive_unclean: u32,
    opened_at: Option<Instant>,
    probe_in_flight: bool,
    trips: u64,
}

/// One layer's breaker. `threshold == 0` disables it (every decision
/// is `Full`, outcomes are ignored).
pub(crate) struct Breaker {
    layer: String,
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<BreakerInner>,
    gauge: wino_probe::GaugeHandle,
}

impl Breaker {
    fn new(layer: &str, threshold: u32, cooldown: Duration) -> Breaker {
        Breaker {
            layer: layer.to_string(),
            threshold,
            cooldown,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_unclean: 0,
                opened_at: None,
                probe_in_flight: false,
                trips: 0,
            }),
            gauge: wino_probe::gauge(&format!("serve.breaker_state.{layer}")),
        }
    }

    /// Decides how the next batch for this layer executes.
    pub(crate) fn decide(&self) -> BreakerDecision {
        if self.threshold == 0 {
            return BreakerDecision::Full;
        }
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => BreakerDecision::Full,
            BreakerState::Open => {
                let elapsed = inner
                    .opened_at
                    .is_some_and(|at| at.elapsed() >= self.cooldown);
                if elapsed {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_in_flight = true;
                    HALF_OPEN.add(1);
                    self.gauge.set(inner.state.gauge_value());
                    wino_probe::diag(format!(
                        "serve: breaker for {:?} half-open, probing full chain",
                        self.layer
                    ));
                    BreakerDecision::Probe
                } else {
                    BreakerDecision::Fallback
                }
            }
            BreakerState::HalfOpen => {
                if inner.probe_in_flight {
                    // One probe at a time; everyone else stays safe.
                    BreakerDecision::Fallback
                } else {
                    inner.probe_in_flight = true;
                    BreakerDecision::Probe
                }
            }
        }
    }

    /// Feeds one batch outcome back. `clean` is `Some(true)` when the
    /// full-chain group served without demotion or error, `Some(false)`
    /// when it demoted/failed/panicked, and `None` when no full-chain
    /// group actually ran (every member was deadline-demoted) — a
    /// `Probe` decision with no outcome returns the probe slot so the
    /// breaker cannot wedge half-open.
    pub(crate) fn resolve(&self, decision: BreakerDecision, clean: Option<bool>) {
        if self.threshold == 0 || decision == BreakerDecision::Fallback {
            return;
        }
        let mut inner = self.inner.lock();
        let Some(clean) = clean else {
            if decision == BreakerDecision::Probe {
                inner.probe_in_flight = false;
            }
            return;
        };
        match decision {
            BreakerDecision::Probe => {
                inner.probe_in_flight = false;
                if clean {
                    inner.state = BreakerState::Closed;
                    inner.consecutive_unclean = 0;
                    CLOSE.add(1);
                    wino_probe::diag(format!("serve: breaker for {:?} closed", self.layer));
                } else {
                    self.trip(&mut inner);
                }
                self.gauge.set(inner.state.gauge_value());
            }
            BreakerDecision::Full => {
                if clean {
                    inner.consecutive_unclean = 0;
                } else {
                    inner.consecutive_unclean += 1;
                    if inner.consecutive_unclean >= self.threshold
                        && inner.state == BreakerState::Closed
                    {
                        self.trip(&mut inner);
                        self.gauge.set(inner.state.gauge_value());
                    }
                }
            }
            BreakerDecision::Fallback => unreachable!("filtered above"),
        }
    }

    fn trip(&self, inner: &mut BreakerInner) {
        inner.state = BreakerState::Open;
        inner.opened_at = Some(Instant::now());
        inner.consecutive_unclean = 0;
        inner.trips += 1;
        OPEN.add(1);
        wino_probe::diag(format!(
            "serve: breaker for {:?} open, serving terminal fallback for {:?}",
            self.layer, self.cooldown
        ));
        wino_probe::flight::dump_incident("serve.breaker_open");
    }

    fn snapshot(&self) -> BreakerSnapshot {
        let inner = self.inner.lock();
        BreakerSnapshot {
            layer: self.layer.clone(),
            state: inner.state,
            trips: inner.trips,
        }
    }
}

/// All breakers of one server, keyed by layer. Layers registered after
/// [`crate::Server::start`] get their breaker lazily on first batch.
pub(crate) struct BreakerMap {
    threshold: u32,
    cooldown: Duration,
    map: RwLock<BTreeMap<String, Arc<Breaker>>>,
}

impl BreakerMap {
    pub(crate) fn new(threshold: u32, cooldown: Duration) -> BreakerMap {
        BreakerMap {
            threshold,
            cooldown,
            map: RwLock::new(BTreeMap::new()),
        }
    }

    /// Interns the breaker for `layer` (pre-seeded at server start so
    /// the state gauges exist from the first metrics render).
    pub(crate) fn intern(&self, layer: &str) -> Arc<Breaker> {
        if let Some(b) = self.map.read().get(layer) {
            return Arc::clone(b);
        }
        let mut map = self.map.write();
        Arc::clone(
            map.entry(layer.to_string())
                .or_insert_with(|| Arc::new(Breaker::new(layer, self.threshold, self.cooldown))),
        )
    }

    /// Breaker + execution decision for the next batch of `layer`.
    pub(crate) fn decide(&self, layer: &str) -> (Arc<Breaker>, BreakerDecision) {
        let breaker = self.intern(layer);
        let decision = breaker.decide();
        (breaker, decision)
    }

    /// Snapshot of every breaker, sorted by layer name.
    pub(crate) fn snapshot(&self) -> Vec<BreakerSnapshot> {
        self.map.read().values().map(|b| b.snapshot()).collect()
    }

    /// `true` when any layer's breaker is not closed.
    pub(crate) fn any_open(&self) -> bool {
        self.map
            .read()
            .values()
            .any(|b| b.inner.lock().state != BreakerState::Closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> Breaker {
        Breaker::new("t/l", 3, Duration::from_millis(20))
    }

    #[test]
    fn trips_after_threshold_consecutive_unclean() {
        let b = breaker();
        for _ in 0..2 {
            let d = b.decide();
            assert_eq!(d, BreakerDecision::Full);
            b.resolve(d, Some(false));
        }
        // A clean batch resets the streak.
        b.resolve(b.decide(), Some(true));
        for _ in 0..2 {
            b.resolve(b.decide(), Some(false));
        }
        assert_eq!(b.decide(), BreakerDecision::Full, "still closed at 2/3");
        b.resolve(BreakerDecision::Full, Some(false));
        assert_eq!(b.decide(), BreakerDecision::Fallback, "tripped at 3/3");
        assert_eq!(b.snapshot().state, BreakerState::Open);
        assert_eq!(b.snapshot().trips, 1);
    }

    #[test]
    fn half_open_probe_closes_or_reopens() {
        let b = breaker();
        for _ in 0..3 {
            b.resolve(BreakerDecision::Full, Some(false));
        }
        assert_eq!(b.decide(), BreakerDecision::Fallback);
        std::thread::sleep(Duration::from_millis(25));
        // Cooldown elapsed: exactly one probe, concurrent batches stay
        // on the fallback.
        assert_eq!(b.decide(), BreakerDecision::Probe);
        assert_eq!(b.decide(), BreakerDecision::Fallback);
        // Unclean probe reopens.
        b.resolve(BreakerDecision::Probe, Some(false));
        assert_eq!(b.snapshot().state, BreakerState::Open);
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.decide(), BreakerDecision::Probe);
        b.resolve(BreakerDecision::Probe, Some(true));
        assert_eq!(b.snapshot().state, BreakerState::Closed);
        assert_eq!(b.decide(), BreakerDecision::Full);
        assert_eq!(b.snapshot().trips, 2);
    }

    #[test]
    fn vacuous_probe_outcome_returns_the_probe_slot() {
        let b = breaker();
        for _ in 0..3 {
            b.resolve(BreakerDecision::Full, Some(false));
        }
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.decide(), BreakerDecision::Probe);
        // The probe batch turned out to be all-deadline-demoted: no
        // verdict, but the next batch must get to probe again.
        b.resolve(BreakerDecision::Probe, None);
        assert_eq!(b.decide(), BreakerDecision::Probe);
    }

    #[test]
    fn zero_threshold_disables() {
        let b = Breaker::new("t/l", 0, Duration::from_millis(5));
        for _ in 0..10 {
            let d = b.decide();
            assert_eq!(d, BreakerDecision::Full);
            b.resolve(d, Some(false));
        }
        assert_eq!(b.snapshot().state, BreakerState::Closed);
    }

    #[test]
    fn map_interns_per_layer() {
        let m = BreakerMap::new(2, Duration::from_millis(5));
        let (a1, _) = m.decide("a");
        let (a2, _) = m.decide("a");
        assert!(Arc::ptr_eq(&a1, &a2));
        m.decide("b");
        let snap = m.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(!m.any_open());
        a1.resolve(BreakerDecision::Full, Some(false));
        a1.resolve(BreakerDecision::Full, Some(false));
        assert!(m.any_open());
    }
}
