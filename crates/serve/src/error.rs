//! Typed serving errors.

/// Why a request was refused or failed.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The submission queue is at capacity; the request was shed at
    /// admission (the caller should back off or retry elsewhere).
    Overloaded {
        /// Queue depth observed at admission.
        depth: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The server is draining: late submissions are refused while
    /// in-flight requests complete.
    ShuttingDown,
    /// No layer with this name is registered.
    UnknownLayer(String),
    /// No network with this name exists in the zoo.
    UnknownModel(String),
    /// The request tensor does not match the registered layer's shape.
    Shape(String),
    /// Every engine in the layer's degradation chain failed.
    Engine(String),
    /// The serving machinery itself failed while holding the request —
    /// a batch panicked in an executor, the executor or scheduler
    /// thread died, or the response channel was lost. The request was
    /// *terminated*, never stranded: crash containment guarantees a
    /// waiter always observes exactly one terminal result.
    Internal {
        /// Human-readable failure cause (panic payload or supervisor
        /// verdict).
        cause: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { depth, capacity } => {
                write!(f, "overloaded: queue depth {depth} at capacity {capacity}")
            }
            ServeError::ShuttingDown => f.write_str("server is shutting down"),
            ServeError::UnknownLayer(name) => write!(f, "unknown layer {name:?}"),
            ServeError::UnknownModel(name) => write!(f, "unknown model {name:?}"),
            ServeError::Shape(msg) => write!(f, "shape error: {msg}"),
            ServeError::Engine(msg) => write!(f, "engine failure: {msg}"),
            ServeError::Internal { cause } => write!(f, "internal server failure: {cause}"),
        }
    }
}

impl std::error::Error for ServeError {}
