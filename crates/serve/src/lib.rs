//! `wino-serve`: a batching inference server over the guarded
//! convolution stack.
//!
//! The paper's tuned Winograd plans are only worth their tuning cost
//! when the same layer runs many times — exactly the serving regime.
//! This crate closes that loop:
//!
//! - [`PlanRegistry`] resolves each registered layer to a pinned plan
//!   (persisted tuner cache first, static heuristic as fallback) and
//!   precomputes the filter transform `U = G·g·Gᵀ` once per layer, so
//!   steady-state requests skip the filter-transform phase entirely.
//!   Whole reference networks register by name from the zoo, and any
//!   [`wino_graph::ComputeGraph`] by walking its conv nodes.
//! - [`Server`] accepts [`ConvRequest`]s on a bounded submission
//!   queue, coalesces same-layer requests into dynamic batches under
//!   `max_batch`/`max_wait`, and executes them through
//!   [`wino_guard::GuardedConv`] with the warm filters. Batched
//!   responses are bit-identical to one-at-a-time runs.
//! - Admission control sheds at capacity ([`ServeError::Overloaded`]),
//!   per-request deadlines demote near-late members to the terminal
//!   fallback engine, and shutdown drains in-flight work while
//!   refusing late submissions ([`ServeError::ShuttingDown`]).
//! - The server **self-heals**: batch panics are contained
//!   ([`ServeError::Internal`], never a hung waiter), a supervisor
//!   thread respawns dead executors under a restart budget, and a
//!   per-layer circuit breaker ([`BreakerState`]) trips repeatedly
//!   failing layers to their terminal fallback engine with half-open
//!   probe batches. [`Server::health`] snapshots the whole supervision
//!   state.
//!
//! Everything is threads and channels — no async runtime.

mod breaker;
mod error;
mod registry;
mod server;
mod stats;
mod supervisor;

pub use breaker::{BreakerSnapshot, BreakerState};
pub use error::ServeError;
pub use registry::{LayerPlan, NetworkPlan, PlanRegistry};
pub use server::{ConvRequest, ConvResponse, NetworkRequest, ResponseHandle, Server, ServerConfig};
pub use stats::{RequestTrace, ServerStats, RECENT_CAP};
pub use supervisor::{ExecutorHealth, HealthStatus, ServerHealth};
