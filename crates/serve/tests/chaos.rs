//! Chaos property: under randomized executor-kill schedules, deadline
//! mixes, and pool sizes, every concurrent submission resolves to
//! **exactly one** terminal result — no double delivery, no hang
//! (enforced by a watchdog) — and every Ok output is bit-identical to
//! a direct [`GuardedConv`] run on the engine that served it.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wino_guard::GuardedConv;
use wino_probe::fault;
use wino_serve::{ConvRequest, ConvResponse, PlanRegistry, ServeError, Server, ServerConfig};
use wino_tensor::{ConvDesc, Tensor4};

const WATCHDOG: Duration = Duration::from_secs(60);

/// Silences the expected injected-fault panics; anything else keeps
/// the default reporting.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains("wino-fault"))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains("wino-fault"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn registry() -> Arc<PlanRegistry> {
    let reg = PlanRegistry::new();
    let desc = ConvDesc::new(3, 1, 1, 4, 1, 8, 8, 2);
    let mut rng = StdRng::seed_from_u64(7);
    let weights = Tensor4::random(4, 2, 3, 3, -0.5, 0.5, &mut rng);
    reg.register_layer("chaos/l", desc, weights).unwrap();
    Arc::new(reg)
}

fn input(seed: u64) -> Tensor4<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor4::random(1, 2, 8, 8, -1.0, 1.0, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn every_submission_resolves_exactly_once(
        kill_nth in 1u64..8,
        requests in 4usize..9,
        deadline_mask in any::<u16>(),
        executors in 1usize..3,
    ) {
        quiet_injected_panics();
        let reg = registry();
        // Arm one executor kill at a randomized point in the schedule
        // (beyond the last batch = no kill at all — also a valid
        // schedule). The scoped guard also serializes fault-armed
        // tests process-wide.
        let _fault = fault::scoped(&format!("serve_exec:panic:{kill_nth}"));
        let server = Server::start(
            Arc::clone(&reg),
            ServerConfig {
                executors,
                max_batch: 2,
                max_wait: Duration::from_micros(200),
                ..ServerConfig::default()
            },
        );
        type Outcome = Option<Result<ConvResponse, ServeError>>;
        let results: Vec<(u64, Outcome)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..requests)
                .map(|i| {
                    let server = &server;
                    s.spawn(move || {
                        let seed = i as u64;
                        let mut req = ConvRequest::new("chaos/l", input(seed));
                        if (deadline_mask >> i) & 1 == 1 {
                            req = req.with_deadline(Duration::ZERO);
                        }
                        match server.submit(req) {
                            Ok(handle) => (seed, handle.wait_timeout(WATCHDOG)),
                            Err(refused) => (seed, Some(Err(refused))),
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("submitter threads never panic"))
                .collect()
        });
        prop_assert_eq!(results.len(), requests, "one outcome per submission");
        for (seed, outcome) in results {
            let outcome = match outcome {
                Some(o) => o,
                None => {
                    return Err(TestCaseError::fail(format!(
                        "request {seed} hung past the watchdog"
                    )))
                }
            };
            match outcome {
                Ok(resp) => {
                    // Bit-identity: re-run the request alone on the
                    // engine that served it.
                    let plan = reg.get("chaos/l").unwrap();
                    let direct = GuardedConv::new(plan.warm.as_ref().unwrap().spec().m)
                        .with_chain(vec![resp.served_by])
                        .with_gemm_config(plan.gemm)
                        .run(&input(seed), &plan.weights, &plan.desc)
                        .expect("direct re-run on the serving engine");
                    prop_assert_eq!(
                        resp.output.data(),
                        direct.output.data(),
                        "request {} served by {:?} must be bit-identical to a direct run",
                        seed,
                        resp.served_by
                    );
                }
                // A kill may fail its batch members (Internal) and a
                // teardown race may refuse late work (ShuttingDown);
                // both are terminal, which is all the property asks.
                Err(ServeError::Internal { .. }) | Err(ServeError::ShuttingDown) => {}
                Err(other) => {
                    return Err(TestCaseError::fail(format!(
                        "request {seed}: unexpected error {other}"
                    )))
                }
            }
        }
        server.shutdown();
        prop_assert_eq!(server.queue_depth(), 0, "queue drains after chaos");
    }
}
