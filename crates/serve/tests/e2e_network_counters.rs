//! Exact accounting for network-level serving: warm filter transforms
//! fire once per conv per registered network, cross-request batches
//! coalesce, and the steady state does zero graph-level allocation.
//!
//! One test, alone in this binary: it owns the process-global probe
//! counters.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use wino_graph::EngineChoice;
use wino_probe::Mode;
use wino_serve::{NetworkRequest, PlanRegistry, Server, ServerConfig};
use wino_tensor::Tensor4;

#[test]
fn network_serving_accounts_exactly() {
    const NETWORKS: [&str; 2] = ["alexnet", "inception-3a-3b"];
    const LOAD_PER_NETWORK: usize = 8;

    wino_probe::reset();
    wino_probe::set_mode(Mode::Summary);
    wino_exec::set_steady_phase(false);

    // Registration: exactly one filter transform per Winograd conv per
    // registered network, all at registration time.
    let registry = Arc::new(PlanRegistry::new());
    let mut winograd_convs = 0u64;
    for name in NETWORKS {
        let plan = registry.register_zoo_network(name).unwrap();
        winograd_convs += plan
            .graph
            .conv_nodes()
            .iter()
            .filter(|(id, _)| matches!(plan.graph.engine(*id), EngineChoice::Winograd(_)))
            .count() as u64;
    }
    assert!(winograd_convs > 0);
    let transforms = wino_probe::counter("conv.filter_transforms");
    assert_eq!(
        transforms.get(),
        winograd_convs,
        "registration transforms each Winograd conv exactly once per network"
    );

    // Server start reserves arenas (per executor, at max_batch images).
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(5),
            queue_capacity: 256,
            executors: 2,
            ..ServerConfig::default()
        },
    );

    let mk_input = |name: &str, seed: u64| {
        let plan = registry.network(name).unwrap();
        let (c, h, w) = plan.input_dims();
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor4::<f32>::random(1, c, h, w, -1.0, 1.0, &mut rng)
    };

    // Warmup: one request per network, then flip steady accounting.
    for name in NETWORKS {
        server
            .infer_network(NetworkRequest::new(name, mk_input(name, 0)))
            .unwrap();
    }
    wino_exec::set_steady_phase(true);

    // Steady load: submit everything first so the scheduler can
    // coalesce, then collect.
    let mut handles = Vec::new();
    for i in 0..LOAD_PER_NETWORK {
        for name in NETWORKS {
            handles.push(
                server
                    .submit_network(NetworkRequest::new(name, mk_input(name, i as u64)))
                    .unwrap(),
            );
        }
    }
    let mut batched_with_seen = 0usize;
    for h in handles {
        let resp = h.wait().unwrap();
        batched_with_seen = batched_with_seen.max(resp.batched_with);
    }
    wino_exec::set_steady_phase(false);
    server.shutdown();

    let total = (NETWORKS.len() * LOAD_PER_NETWORK) as u64 + NETWORKS.len() as u64;
    let counters: HashMap<String, u64> = wino_probe::counter_values().into_iter().collect();
    assert_eq!(counters["serve.net_enqueued"], total);
    assert_eq!(counters["serve.net_executed"], total);
    assert_eq!(counters["serve.enqueued"], total);
    assert_eq!(counters.get("serve.shed").copied().unwrap_or(0), 0);
    assert_eq!(counters["serve.networks_registered"], NETWORKS.len() as u64);
    // Cross-request coalescing actually happened (everything was
    // queued before collection began, max_batch 4, 2 executors).
    assert!(
        batched_with_seen > 1,
        "no network batch coalesced (max batched_with {batched_with_seen})"
    );
    assert!(counters.get("serve.net_batched").copied().unwrap_or(0) >= 2);
    // Steady state: zero graph-level allocations after warmup...
    assert_eq!(
        counters.get("exec.allocs_steady").copied().unwrap_or(0),
        0,
        "steady-state network serving must not allocate at graph level"
    );
    // ...and no filter transform ever ran again.
    assert_eq!(
        transforms.get(),
        winograd_convs,
        "serving must never re-run a filter transform"
    );
    wino_probe::set_mode(Mode::Off);
    wino_probe::reset();
}
