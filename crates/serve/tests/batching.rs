//! Batch coalescing is invisible to callers: a coalesced batch's
//! per-request outputs are bit-identical to one-at-a-time direct runs,
//! for arbitrary layer shapes and request splits.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wino_guard::GuardedConv;
use wino_serve::{ConvRequest, PlanRegistry, Server, ServerConfig};
use wino_tensor::{ConvDesc, Tensor4};

/// Serves `splits.len()` same-layer requests (each carrying
/// `splits[i]` images) through a coalescing server and checks every
/// response against a cold, unbatched [`GuardedConv`] run.
fn assert_coalesced_bit_identity(
    out_ch: usize,
    in_ch: usize,
    hw: usize,
    splits: &[usize],
    seed: u64,
) {
    let desc = ConvDesc::new(3, 1, 1, out_ch, 1, hw, hw, in_ch);
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = Tensor4::random(out_ch, in_ch, 3, 3, -0.5, 0.5, &mut rng);
    let registry = Arc::new(PlanRegistry::new());
    registry
        .register_layer("prop/layer", desc, weights)
        .unwrap();
    let plan = registry.get("prop/layer").unwrap();

    let inputs: Vec<Tensor4<f32>> = splits
        .iter()
        .map(|&n| Tensor4::random(n, in_ch, hw, hw, -1.0, 1.0, &mut rng))
        .collect();
    let references: Vec<Tensor4<f32>> = inputs
        .iter()
        .map(|input| {
            let mut d = plan.desc;
            d.batch = input.dims().0;
            let m = plan.warm.as_ref().map_or(4, |pre| pre.spec().m);
            GuardedConv::new(m)
                .with_chain(plan.chain.clone())
                .with_gemm_config(plan.gemm)
                .run(input, &plan.weights, &d)
                .unwrap()
                .output
        })
        .collect();

    // max_batch = request count and a generous max_wait force the
    // scheduler to coalesce everything into one batch (submissions
    // take microseconds).
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            max_batch: splits.len(),
            max_wait: Duration::from_secs(2),
            ..ServerConfig::default()
        },
    );
    let handles: Vec<_> = inputs
        .into_iter()
        .map(|input| {
            server
                .submit(ConvRequest::new("prop/layer", input))
                .unwrap()
        })
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let resp = handle.wait().unwrap();
        assert_eq!(
            resp.batched_with,
            splits.len(),
            "all requests must ride one coalesced batch"
        );
        assert_eq!(resp.output.dims(), references[i].dims());
        let exact = resp
            .output
            .data()
            .iter()
            .zip(references[i].data())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(exact, "request {i} diverged from its unbatched reference");
    }
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn coalesced_batches_are_bit_identical_to_one_at_a_time(
        out_ch in 1usize..5,
        in_ch in 1usize..4,
        hw in 6usize..12,
        splits in proptest::collection::vec(1usize..3, 2..5),
        seed in any::<u64>(),
    ) {
        assert_coalesced_bit_identity(out_ch, in_ch, hw, &splits, seed);
    }
}

#[test]
fn four_requests_coalesce_into_one_batch() {
    assert_coalesced_bit_identity(4, 2, 10, &[1, 2, 1, 3], 0xba7c4);
}
