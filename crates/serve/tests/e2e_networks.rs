//! Network-level serving acceptance: whole zoo networks registered
//! for graph execution, served concurrently, and bit-identical to a
//! layer-by-layer direct [`GuardedConv`] walk of the same graph.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use wino_graph::{NodeId, Op};
use wino_guard::GuardedConv;
use wino_serve::{NetworkPlan, NetworkRequest, PlanRegistry, Server, ServerConfig};
use wino_tensor::Tensor4;

fn network_input(plan: &NetworkPlan, seed: u64) -> Tensor4<f32> {
    let (c, h, w) = plan.input_dims();
    let mut rng = StdRng::seed_from_u64(0xbeef ^ seed.wrapping_mul(0x9e3779b97f4a7c15));
    Tensor4::random(1, c, h, w, -1.0, 1.0, &mut rng)
}

/// The acceptance oracle: walk the network's fused graph node by node,
/// running every convolution through a direct (unserved, unbatched)
/// [`GuardedConv`] with the registry's pinned chain and warm filters —
/// exactly what per-layer serving would compute one request at a time.
fn layer_by_layer_reference(
    reg: &PlanRegistry,
    plan: &NetworkPlan,
    input: &Tensor4<f32>,
) -> Tensor4<f32> {
    let g = &plan.graph;
    let mut values: Vec<Option<Tensor4<f32>>> = vec![None; g.len()];
    for i in 0..g.len() {
        let node = g.node(NodeId(i));
        let value = match &node.op {
            Op::Input => match node.inputs.first() {
                Some(&src) => values[src.0].clone().expect("topological order"),
                None => input.clone(),
            },
            Op::Relu => {
                let src = values[node.inputs[0].0]
                    .as_ref()
                    .expect("topological order");
                src.map(|v| v.max(0.0))
            }
            Op::MaxPool { k, s } => {
                let src = values[node.inputs[0].0]
                    .as_ref()
                    .expect("topological order");
                wino_graph::max_pool(src, *k, *s)
            }
            Op::Concat => {
                let srcs: Vec<&Tensor4<f32>> = node
                    .inputs
                    .iter()
                    .map(|s| values[s.0].as_ref().expect("topological order"))
                    .collect();
                wino_graph::concat_channels(&srcs).unwrap()
            }
            Op::Conv { desc, fused_relu } => {
                let src = values[node.inputs[0].0]
                    .as_ref()
                    .expect("topological order");
                let lp = reg
                    .get(&format!("{}/node{i}", plan.name))
                    .expect("network registration pins every conv as a layer");
                let mut d = *desc;
                d.batch = src.n();
                let m = lp.warm.as_ref().map_or(4, |pre| pre.spec().m);
                let out = GuardedConv::new(m)
                    .with_chain(lp.chain.clone())
                    .with_gemm_config(lp.gemm)
                    .run_warm(src, &lp.weights, &d, lp.warm.as_ref())
                    .expect("reference chain must serve")
                    .output;
                if *fused_relu {
                    out.map(|v| v.max(0.0))
                } else {
                    out
                }
            }
        };
        values[i] = Some(value);
    }
    values.pop().flatten().expect("non-empty graph")
}

#[test]
fn zoo_networks_serve_bit_identically_to_layer_by_layer_guarded_runs() {
    const NETWORKS: [&str; 3] = ["alexnet", "nin", "inception-v1"];
    const REQUESTS_PER_NETWORK: usize = 2;

    let registry = Arc::new(PlanRegistry::new());
    let mut references: HashMap<String, Tensor4<f32>> = HashMap::new();
    for name in NETWORKS {
        let plan = registry.register_zoo_network(name).unwrap();
        let input = network_input(&plan, 0);
        references.insert(
            name.to_string(),
            layer_by_layer_reference(&registry, &plan, &input),
        );
    }

    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(3),
            queue_capacity: 64,
            executors: 2,
            ..ServerConfig::default()
        },
    );
    // Concurrent same-network requests: coalescing into cross-request
    // batches must not perturb a single bit.
    std::thread::scope(|scope| {
        for name in NETWORKS {
            for _ in 0..REQUESTS_PER_NETWORK {
                let server = &server;
                let registry = &registry;
                let references = &references;
                scope.spawn(move || {
                    let plan = registry.network(name).unwrap();
                    let input = network_input(&plan, 0);
                    let resp = server
                        .infer_network(NetworkRequest::new(name, input))
                        .expect("network request must be served");
                    let expected = &references[name];
                    assert_eq!(resp.output.dims(), expected.dims());
                    assert_eq!(
                        resp.output.data(),
                        expected.data(),
                        "served {name} must be bit-identical to the layer-by-layer \
                         direct GuardedConv walk"
                    );
                });
            }
        }
    });
    server.shutdown();
}

#[test]
fn network_zero_deadline_serves_in_degraded_mode() {
    let registry = Arc::new(PlanRegistry::new());
    let plan = registry.register_zoo_network("inception-3a-3b").unwrap();
    let server = Server::start(Arc::clone(&registry), ServerConfig::default());
    let input = network_input(&plan, 1);
    let resp = server
        .infer_network(NetworkRequest::new("inception-3a-3b", input).with_deadline(Duration::ZERO))
        .unwrap();
    assert!(resp.trace.deadline_demoted);
    // Degraded mode runs every conv on its terminal fallback engine.
    assert_eq!(resp.served_by, wino_guard::Engine::Direct);
    assert!(resp.output.data().iter().all(|v| v.is_finite()));
    server.shutdown();
}

#[test]
fn unknown_network_and_bad_shape_are_refused() {
    let registry = Arc::new(PlanRegistry::new());
    registry.register_zoo_network("inception-3a-3b").unwrap();
    let server = Server::start(Arc::clone(&registry), ServerConfig::default());
    assert!(server
        .submit_network(NetworkRequest::new(
            "resnet-9000",
            Tensor4::zeros(1, 1, 1, 1)
        ))
        .is_err());
    assert!(server
        .submit_network(NetworkRequest::new(
            "inception-3a-3b",
            Tensor4::zeros(1, 3, 28, 28),
        ))
        .is_err());
    server.shutdown();
}
