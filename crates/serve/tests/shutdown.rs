//! Shutdown semantics: drain completes every admitted request, late
//! submissions are refused, and teardown is idempotent.

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use wino_serve::{ConvRequest, PlanRegistry, ServeError, Server, ServerConfig};
use wino_tensor::{ConvDesc, Tensor4};

fn registry() -> Arc<PlanRegistry> {
    let reg = PlanRegistry::new();
    let desc = ConvDesc::new(3, 1, 1, 4, 1, 10, 10, 3);
    let mut rng = StdRng::seed_from_u64(42);
    let weights = Tensor4::random(4, 3, 3, 3, -0.5, 0.5, &mut rng);
    reg.register_layer("net/l", desc, weights).unwrap();
    Arc::new(reg)
}

fn input(seed: u64) -> Tensor4<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor4::random(1, 3, 10, 10, -1.0, 1.0, &mut rng)
}

#[test]
fn drain_completes_every_admitted_request() {
    let server = Server::start(
        registry(),
        ServerConfig {
            // A long max_wait parks requests in the queue; shutdown's
            // drain must flush them without waiting it out.
            max_wait: Duration::from_secs(5),
            max_batch: 2,
            ..ServerConfig::default()
        },
    );
    let handles: Vec<_> = (0..6)
        .map(|i| server.submit(ConvRequest::new("net/l", input(i))).unwrap())
        .collect();
    server.shutdown();
    for handle in handles {
        let resp = handle.wait().expect("in-flight requests complete on drain");
        assert_eq!(resp.output.dims(), (1, 4, 10, 10));
    }
}

#[test]
fn late_submissions_get_shutting_down() {
    let server = Server::start(registry(), ServerConfig::default());
    let admitted = server.submit(ConvRequest::new("net/l", input(0))).unwrap();
    server.shutdown();
    assert!(matches!(
        server.submit(ConvRequest::new("net/l", input(1))),
        Err(ServeError::ShuttingDown)
    ));
    assert!(admitted.wait().is_ok(), "pre-shutdown request still served");
    server.shutdown(); // idempotent
}

#[test]
fn drop_tears_the_server_down() {
    let server = Server::start(registry(), ServerConfig::default());
    let handle = server.submit(ConvRequest::new("net/l", input(7))).unwrap();
    drop(server);
    // Drop runs the same drain: the admitted request was served.
    assert!(handle.wait().is_ok());
}
