//! Fault drill: with `transform:nan` poisoning every Winograd tile
//! transform, network serving still answers every request via the
//! per-conv degradation chain (the guardrails catch the NaNs and
//! demote to im2col/direct). Alone in this binary: the fault scope is
//! process-global.

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use wino_probe::fault;
use wino_serve::{NetworkRequest, PlanRegistry, Server, ServerConfig};
use wino_tensor::Tensor4;

#[test]
fn poisoned_transforms_still_serve_networks_via_fallback() {
    let registry = Arc::new(PlanRegistry::new());
    let plan = registry.register_zoo_network("inception-3a-3b").unwrap();
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            max_batch: 2,
            max_wait: Duration::from_millis(2),
            // Breakers stay armed (default threshold): even if the
            // repeated NaNs trip the network's breaker mid-test, open
            // (degraded) batches must still serve.
            ..ServerConfig::default()
        },
    );
    let (c, h, w) = plan.input_dims();
    let _fault = fault::scoped("transform:nan");
    let mut demotions_seen = 0usize;
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor4::<f32>::random(1, c, h, w, -1.0, 1.0, &mut rng);
        let resp = server
            .infer_network(NetworkRequest::new("inception-3a-3b", input))
            .expect("poisoned transforms must degrade, not fail");
        assert!(
            resp.output.data().iter().all(|v| v.is_finite()),
            "fallback output must be finite"
        );
        demotions_seen += resp.trace.demotions;
    }
    assert!(
        demotions_seen > 0,
        "the NaN fault must have demoted at least one conv"
    );
    server.shutdown();
}
