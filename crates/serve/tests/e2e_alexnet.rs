//! End-to-end serving acceptance: AlexNet registered from the zoo,
//! 100+ concurrent mixed-layer requests, every response bit-identical
//! to a direct [`GuardedConv`] run, and the filter transform computed
//! exactly once per Winograd layer (probe counters prove the serving
//! steady state never re-transforms).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use wino_guard::GuardedConv;
use wino_probe::Mode;
use wino_serve::{ConvRequest, LayerPlan, PlanRegistry, Server, ServerConfig};
use wino_tensor::Tensor4;

/// Deterministic per-(layer, seed) request input.
fn layer_input(plan: &LayerPlan, seed: u64) -> Tensor4<f32> {
    let d = &plan.desc;
    let mut rng = StdRng::seed_from_u64(0x5e12e ^ seed.wrapping_mul(0x9e3779b97f4a7c15));
    Tensor4::random(1, d.in_ch, d.in_h, d.in_w, -1.0, 1.0, &mut rng)
}

/// A cold, unbatched, direct run of the layer's pinned chain — the
/// bit-exact oracle every served response must match.
fn direct_reference(plan: &LayerPlan, input: &Tensor4<f32>) -> Tensor4<f32> {
    let m = plan.warm.as_ref().map_or(4, |pre| pre.spec().m);
    GuardedConv::new(m)
        .with_chain(plan.chain.clone())
        .with_gemm_config(plan.gemm)
        .run(input, &plan.weights, &plan.desc)
        .expect("reference chain must serve")
        .output
}

#[test]
fn alexnet_serves_bit_identically_with_warm_filters() {
    const SEEDS_PER_LAYER: u64 = 2;
    const TOTAL_REQUESTS: usize = 104;
    const SUBMITTERS: usize = 8;

    // Phase 1: cold references with the probe off, so registration
    // below owns the filter-transform counter exactly.
    wino_probe::set_mode(Mode::Off);
    let oracle_reg = PlanRegistry::new();
    let names = oracle_reg.register_network("alexnet").unwrap();
    assert_eq!(names.len(), 5);
    let mut references: HashMap<(String, u64), Tensor4<f32>> = HashMap::new();
    for name in &names {
        let plan = oracle_reg.get(name).unwrap();
        for seed in 0..SEEDS_PER_LAYER {
            let input = layer_input(&plan, seed);
            references.insert((name.clone(), seed), direct_reference(&plan, &input));
        }
    }

    // Phase 2: the serving registry under an enabled probe. Warm
    // transforms happen here, once per Winograd layer, never again.
    wino_probe::reset();
    wino_probe::set_mode(Mode::Summary);
    let registry = Arc::new(PlanRegistry::new());
    let served_names = registry.register_network("alexnet").unwrap();
    let winograd_layers = served_names
        .iter()
        .filter(|n| registry.get(n).unwrap().warm.is_some())
        .count();
    assert!(winograd_layers >= 4, "conv2..conv5 are Winograd layers");
    let transforms = wino_probe::counter("conv.filter_transforms");
    assert_eq!(
        transforms.get() as usize,
        winograd_layers,
        "registration transforms each Winograd layer exactly once"
    );

    // Phase 3: concurrent mixed-layer load.
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(3),
            queue_capacity: 1024,
            executors: 2,
            ..ServerConfig::default()
        },
    );
    let mix: Vec<(String, u64)> = (0..TOTAL_REQUESTS)
        .map(|i| {
            let name = served_names[i % served_names.len()].clone();
            (name, (i / served_names.len()) as u64 % SEEDS_PER_LAYER)
        })
        .collect();
    std::thread::scope(|scope| {
        for chunk in mix.chunks(TOTAL_REQUESTS / SUBMITTERS) {
            let server = &server;
            let registry = &registry;
            let references = &references;
            scope.spawn(move || {
                let handles: Vec<_> = chunk
                    .iter()
                    .map(|(name, seed)| {
                        let plan = registry.get(name).unwrap();
                        let input = layer_input(&plan, *seed);
                        let handle = server
                            .submit(ConvRequest::new(name.clone(), input))
                            .expect("queue sized for full load: nothing sheds");
                        (name, *seed, handle)
                    })
                    .collect();
                for (name, seed, handle) in handles {
                    let resp = handle.wait().expect("request must be served");
                    let expected = &references[&(name.clone(), seed)];
                    assert_eq!(resp.output.dims(), expected.dims());
                    assert_eq!(
                        resp.output.data(),
                        expected.data(),
                        "served {name} (seed {seed}) must be bit-identical to the \
                         direct GuardedConv run"
                    );
                }
            });
        }
    });
    server.shutdown();

    // Phase 4: steady state never re-ran the filter transform, and
    // the serve counters account for every request.
    assert_eq!(
        transforms.get() as usize,
        winograd_layers,
        "serving {TOTAL_REQUESTS} requests must not re-transform filters"
    );
    let counters: HashMap<String, u64> = wino_probe::counter_values().into_iter().collect();
    assert_eq!(counters["serve.enqueued"], TOTAL_REQUESTS as u64);
    assert_eq!(counters["serve.executed"], TOTAL_REQUESTS as u64);
    assert_eq!(counters.get("serve.shed").copied().unwrap_or(0), 0);
    wino_probe::set_mode(Mode::Off);
    wino_probe::reset();
}
