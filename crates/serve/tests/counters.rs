//! Exact-counter regression under injected faults: the serve counters
//! and the queue-depth gauge stay consistent across shed, injected
//! executor/scheduler/response faults, and shutdown — no leaked
//! response handles, no counter drift, no hangs.
//!
//! The probe counters are process-global, so every test here holds a
//! serialization lock and asserts *deltas* against its own baseline.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use wino_probe::fault;
use wino_serve::{ConvRequest, HealthStatus, PlanRegistry, ServeError, Server, ServerConfig};
use wino_tensor::{ConvDesc, Tensor4};

const WATCHDOG: Duration = Duration::from_secs(60);

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Silences the expected injected-fault panics (executor kills print
/// nothing); every other panic keeps the default reporting.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains("wino-fault"))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains("wino-fault"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn registry() -> Arc<PlanRegistry> {
    let reg = PlanRegistry::new();
    let desc = ConvDesc::new(3, 1, 1, 4, 1, 8, 8, 2);
    let mut rng = StdRng::seed_from_u64(17);
    let weights = Tensor4::random(4, 2, 3, 3, -0.5, 0.5, &mut rng);
    reg.register_layer("cnt/l", desc, weights).unwrap();
    Arc::new(reg)
}

fn input(seed: u64) -> Tensor4<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor4::random(1, 2, 8, 8, -1.0, 1.0, &mut rng)
}

/// Current value of a probe counter by name (0 if never touched).
fn c(name: &str) -> u64 {
    wino_probe::counter_values()
        .into_iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| v)
}

fn depth_gauge() -> i64 {
    wino_probe::gauge("serve.queue_depth").get()
}

#[test]
fn shed_requests_count_exactly_once_and_never_enqueue() {
    let _serial = serial();
    wino_probe::set_mode(wino_probe::Mode::Summary);
    let (e0, s0) = (c("serve.enqueued"), c("serve.shed"));
    // queue_capacity 1 plus a long coalescing wait parks the first
    // submission; the second is shed at admission.
    let server = Server::start(
        registry(),
        ServerConfig {
            queue_capacity: 1,
            max_batch: 8,
            max_wait: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    );
    let first = server.submit(ConvRequest::new("cnt/l", input(1))).unwrap();
    assert!(matches!(
        server.submit(ConvRequest::new("cnt/l", input(2))),
        Err(ServeError::Overloaded {
            depth: 1,
            capacity: 1
        })
    ));
    assert_eq!(c("serve.enqueued"), e0 + 1, "shed request must not enqueue");
    assert_eq!(c("serve.shed"), s0 + 1, "exactly one shed");
    assert_eq!(depth_gauge(), 1, "only the parked request is queued");
    server.shutdown();
    first.wait().expect("parked request served on drain");
    assert_eq!(depth_gauge(), 0, "gauge drains with the server");
}

#[test]
fn executor_kill_keeps_every_counter_consistent() {
    let _serial = serial();
    quiet_injected_panics();
    wino_probe::set_mode(wino_probe::Mode::Summary);
    let _fault = fault::scoped("serve_exec:panic:1");
    let (e0, x0, i0, r0) = (
        c("serve.enqueued"),
        c("serve.executed"),
        c("serve.internal_errors"),
        c("serve.executor_restarts"),
    );
    let server = Server::start(
        registry(),
        ServerConfig {
            executors: 1,
            max_batch: 1,
            max_wait: Duration::ZERO,
            ..ServerConfig::default()
        },
    );
    let mut oks = 0;
    let mut internals = 0;
    for i in 0..4u64 {
        let handle = server.submit(ConvRequest::new("cnt/l", input(i))).unwrap();
        match handle
            .wait_timeout(WATCHDOG)
            .expect("watchdog: every request must resolve")
        {
            Ok(resp) => {
                assert_eq!(resp.output.dims(), (1, 4, 8, 8));
                oks += 1;
            }
            Err(ServeError::Internal { .. }) => internals += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(
        (oks, internals),
        (3, 1),
        "first batch dies with its executor, the respawn serves the rest"
    );
    let health = server.health();
    assert_eq!(health.status, HealthStatus::Degraded);
    assert_eq!(health.executor_restarts, 1);
    assert_eq!(
        health.batch_panics, 0,
        "the injected kill unwinds past containment by design"
    );
    assert_eq!(health.executors_alive, 1, "the respawned executor is up");
    server.shutdown();
    assert_eq!(c("serve.enqueued"), e0 + 4);
    assert_eq!(c("serve.executed"), x0 + 3);
    assert_eq!(c("serve.internal_errors"), i0 + 1);
    assert_eq!(c("serve.executor_restarts"), r0 + 1);
    assert_eq!(depth_gauge(), 0);
}

#[test]
fn dropped_response_maps_to_internal_not_a_hang() {
    let _serial = serial();
    wino_probe::set_mode(wino_probe::Mode::Summary);
    let (d0, x0) = (c("serve.responses_dropped"), c("serve.executed"));
    let _fault = fault::scoped("serve_resp:drop:1");
    let server = Server::start(registry(), ServerConfig::default());
    let handle = server.submit(ConvRequest::new("cnt/l", input(9))).unwrap();
    match handle.wait_timeout(WATCHDOG).expect("watchdog") {
        Err(ServeError::Internal { .. }) => {}
        other => panic!("expected Internal after a dropped response, got {other:?}"),
    }
    // The drop lost only the delivery — the batch itself executed, and
    // the server keeps serving afterwards.
    let second = server.infer(ConvRequest::new("cnt/l", input(10))).unwrap();
    assert_eq!(second.output.dims(), (1, 4, 8, 8));
    server.shutdown();
    assert_eq!(c("serve.responses_dropped"), d0 + 1);
    assert_eq!(c("serve.executed"), x0 + 2);
    assert_eq!(depth_gauge(), 0);
}

#[test]
fn contained_response_panic_fails_the_batch_and_counts() {
    let _serial = serial();
    quiet_injected_panics();
    wino_probe::set_mode(wino_probe::Mode::Summary);
    let (p0, x0) = (c("serve.batch_panics"), c("serve.executed"));
    let _fault = fault::scoped("serve_resp:panic:1");
    let server = Server::start(registry(), ServerConfig::default());
    let handle = server.submit(ConvRequest::new("cnt/l", input(11))).unwrap();
    // The injected panic fires after the response slot was consumed,
    // so containment's explicit Internal cannot be delivered there —
    // the waiter observes the closed channel instead, which maps to
    // Internal. Either way: a terminal error, never a hang.
    match handle.wait_timeout(WATCHDOG).expect("watchdog") {
        Err(ServeError::Internal { .. }) => {}
        other => panic!("expected contained Internal, got {other:?}"),
    }
    let health = server.health();
    assert_eq!(health.status, HealthStatus::Degraded);
    assert_eq!(health.batch_panics, 1);
    assert_eq!(
        health.executor_restarts, 0,
        "containment keeps the executor alive — no respawn needed"
    );
    // Same executor thread serves the next request.
    server.infer(ConvRequest::new("cnt/l", input(12))).unwrap();
    server.shutdown();
    assert_eq!(c("serve.batch_panics"), p0 + 1);
    assert_eq!(c("serve.executed"), x0 + 2, "both batches executed");
    assert_eq!(depth_gauge(), 0);
}

#[test]
fn scheduler_death_fails_pending_requests_terminally() {
    let _serial = serial();
    quiet_injected_panics();
    wino_probe::set_mode(wino_probe::Mode::Summary);
    let s0 = c("serve.scheduler_deaths");
    let _fault = fault::scoped("serve_sched:panic:1");
    let server = Server::start(registry(), ServerConfig::default());
    let handle = server.submit(ConvRequest::new("cnt/l", input(20))).unwrap();
    match handle.wait_timeout(WATCHDOG).expect("watchdog") {
        Err(ServeError::Internal { .. }) => {}
        other => panic!("expected Internal after scheduler death, got {other:?}"),
    }
    assert_eq!(server.health().status, HealthStatus::Failed);
    assert!(
        matches!(
            server.submit(ConvRequest::new("cnt/l", input(21))),
            Err(ServeError::ShuttingDown)
        ),
        "a failed server refuses admission"
    );
    assert_eq!(c("serve.scheduler_deaths"), s0 + 1);
    server.shutdown();
    assert_eq!(depth_gauge(), 0);
}

#[test]
fn scheduler_stall_delays_but_serves_everything() {
    let _serial = serial();
    wino_probe::set_mode(wino_probe::Mode::Summary);
    let f0 = c("fault.injected.serve_sched");
    let _fault = fault::scoped("serve_sched:stall:2");
    let server = Server::start(registry(), ServerConfig::default());
    for i in 30..33u64 {
        let resp = server.infer(ConvRequest::new("cnt/l", input(i))).unwrap();
        assert_eq!(resp.output.dims(), (1, 4, 8, 8));
    }
    server.shutdown();
    assert_eq!(c("fault.injected.serve_sched"), f0 + 1, "stall fired once");
    assert_eq!(depth_gauge(), 0);
}
