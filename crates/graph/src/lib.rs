//! # wino-graph — ConvNet compute graph and model zoo
//!
//! The front-end of the reproduced system (Figure 2 of the paper): a
//! ConvNet model becomes a [`ComputeGraph`] suitable for graph-level
//! optimization (ReLU fusion) and per-layer variant selection; the
//! [`zoo`] module defines the convolution layers of AlexNet,
//! Network-in-Network and InceptionV1 and regenerates the paper's 31
//! benchmark convolutions (Table 4).

#![warn(missing_docs)]

mod graph;
mod select;
pub mod zoo;

pub use graph::{
    concat_channels, concat_into, max_pool, max_pool_into, run_conv, ComputeGraph, EngineChoice,
    GraphError, Node, NodeId, Op,
};
pub use select::{
    default_tile_size, engine_from_evaluation, select_engine, select_engine_cached,
    select_engine_static,
};
pub use zoo::{
    alexnet_convs, all_network_convs, build_alexnet_graph, build_inception_3a_3b,
    build_inception_module, build_inception_v1_graph, build_nin_graph, extract_benchmark_convs,
    inception_v1_convs, nin_convs, table4_convs, table4_paper_flops, NamedConv,
};
