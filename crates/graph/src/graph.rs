//! The compute graph: Boda's front-end representation (§3, Figure 2).
//!
//! A ConvNet model parses into a DAG of tensor operations; the
//! framework runs graph-level optimization (here: ReLU fusion into the
//! preceding convolution) and then executes each node with the engine
//! the variant selector picked for it.

use std::collections::HashMap;
use std::fmt;

use wino_conv::{conv_direct_f32, conv_im2col, conv_winograd, ConvError, WinogradConfig};
use wino_tensor::{ConvDesc, Tensor4};

/// Node identifier within one graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Which engine executes a convolution node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EngineChoice {
    /// Direct convolution.
    Direct,
    /// im2col + GEMM.
    Im2col,
    /// Winograd with the given configuration.
    Winograd(WinogradConfig),
}

/// A graph operation.
#[derive(Clone, Debug)]
pub enum Op {
    /// External input tensor.
    Input,
    /// 2-D convolution. Weights are attached via
    /// [`ComputeGraph::set_weights`]; `fused_relu` is set by the
    /// graph-level optimizer.
    Conv {
        /// Shape descriptor (batch inferred at run time).
        desc: ConvDesc,
        /// Apply `max(x, 0)` to the output in the same pass.
        fused_relu: bool,
    },
    /// Rectified linear unit.
    Relu,
    /// Max pooling with square window `k` and stride `s`.
    MaxPool {
        /// Window size.
        k: usize,
        /// Stride.
        s: usize,
    },
    /// Channel-wise concatenation of all inputs (the join of an
    /// Inception module's branches).
    Concat,
}

/// One node: an operation and its input edges.
#[derive(Clone, Debug)]
pub struct Node {
    /// The operation.
    pub op: Op,
    /// Producer nodes (all current ops take 0 or 1 inputs).
    pub inputs: Vec<NodeId>,
}

/// Errors from graph construction and execution.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphError {
    /// A node referenced an id that does not exist (or a later node).
    BadEdge(String),
    /// A convolution has no weights attached.
    MissingWeights(NodeId),
    /// Shapes do not line up at execution time.
    Shape(String),
    /// Engine failure.
    Conv(ConvError),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::BadEdge(msg) => write!(f, "bad edge: {msg}"),
            GraphError::MissingWeights(id) => write!(f, "conv node {id:?} has no weights"),
            GraphError::Shape(msg) => write!(f, "shape error: {msg}"),
            GraphError::Conv(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<ConvError> for GraphError {
    fn from(e: ConvError) -> Self {
        GraphError::Conv(e)
    }
}

/// A ConvNet compute graph with attached weights and per-conv engine
/// choices.
#[derive(Clone, Default)]
pub struct ComputeGraph {
    nodes: Vec<Node>,
    weights: HashMap<NodeId, Tensor4<f32>>,
    engines: HashMap<NodeId, EngineChoice>,
}

impl ComputeGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an input node.
    pub fn add_input(&mut self) -> NodeId {
        self.push(Node {
            op: Op::Input,
            inputs: vec![],
        })
    }

    /// Adds a convolution node consuming `input`.
    ///
    /// # Errors
    /// [`GraphError::BadEdge`] on a dangling input reference.
    pub fn add_conv(&mut self, input: NodeId, desc: ConvDesc) -> Result<NodeId, GraphError> {
        self.check_edge(input)?;
        Ok(self.push(Node {
            op: Op::Conv {
                desc,
                fused_relu: false,
            },
            inputs: vec![input],
        }))
    }

    /// Adds a ReLU node.
    ///
    /// # Errors
    /// [`GraphError::BadEdge`] on a dangling input reference.
    pub fn add_relu(&mut self, input: NodeId) -> Result<NodeId, GraphError> {
        self.check_edge(input)?;
        Ok(self.push(Node {
            op: Op::Relu,
            inputs: vec![input],
        }))
    }

    /// Adds a max-pool node.
    ///
    /// # Errors
    /// [`GraphError::BadEdge`] on a dangling input reference.
    pub fn add_max_pool(
        &mut self,
        input: NodeId,
        k: usize,
        s: usize,
    ) -> Result<NodeId, GraphError> {
        self.check_edge(input)?;
        Ok(self.push(Node {
            op: Op::MaxPool { k, s },
            inputs: vec![input],
        }))
    }

    /// Adds a channel-wise concatenation of two or more nodes.
    ///
    /// # Errors
    /// [`GraphError::BadEdge`] on a dangling reference or fewer than
    /// two inputs.
    pub fn add_concat(&mut self, inputs: &[NodeId]) -> Result<NodeId, GraphError> {
        if inputs.len() < 2 {
            return Err(GraphError::BadEdge(
                "concat needs at least two inputs".into(),
            ));
        }
        for &i in inputs {
            self.check_edge(i)?;
        }
        Ok(self.push(Node {
            op: Op::Concat,
            inputs: inputs.to_vec(),
        }))
    }

    /// Infers the output shape of every node given the graph-input
    /// shape, without executing (weights not required).
    ///
    /// # Errors
    /// [`GraphError::Shape`] on any dimension mismatch.
    pub fn infer_shapes(
        &self,
        input: (usize, usize, usize, usize),
    ) -> Result<Vec<(usize, usize, usize, usize)>, GraphError> {
        let mut shapes: Vec<(usize, usize, usize, usize)> = Vec::with_capacity(self.nodes.len());
        for (i, node) in self.nodes.iter().enumerate() {
            let shape = match &node.op {
                Op::Input => match node.inputs.first() {
                    Some(&src) => shapes[src.0],
                    None => input,
                },
                Op::Relu => self.single_input_shape(&shapes, node)?,
                Op::MaxPool { k, s } => {
                    let (n, c, h, w) = self.single_input_shape(&shapes, node)?;
                    if h < *k || w < *k {
                        return Err(GraphError::Shape(format!(
                            "node {i}: pool window {k} larger than {h}x{w}"
                        )));
                    }
                    (n, c, (h - k) / s + 1, (w - k) / s + 1)
                }
                Op::Conv { desc, .. } => {
                    let (n, c, h, w) = self.single_input_shape(&shapes, node)?;
                    if (c, h, w) != (desc.in_ch, desc.in_h, desc.in_w) {
                        return Err(GraphError::Shape(format!(
                            "node {i}: input {c}x{h}x{w} does not match {desc}"
                        )));
                    }
                    (n, desc.out_ch, desc.out_h(), desc.out_w())
                }
                Op::Concat => {
                    let first = shapes[node.inputs[0].0];
                    let mut channels = 0;
                    for &src in &node.inputs {
                        let (n, c, h, w) = shapes[src.0];
                        if (n, h, w) != (first.0, first.2, first.3) {
                            return Err(GraphError::Shape(format!(
                                "node {i}: concat inputs disagree spatially"
                            )));
                        }
                        channels += c;
                    }
                    (first.0, channels, first.2, first.3)
                }
            };
            shapes.push(shape);
        }
        Ok(shapes)
    }

    fn single_input_shape(
        &self,
        shapes: &[(usize, usize, usize, usize)],
        node: &Node,
    ) -> Result<(usize, usize, usize, usize), GraphError> {
        let src = node
            .inputs
            .first()
            .ok_or_else(|| GraphError::BadEdge("node has no input".into()))?;
        Ok(shapes[src.0])
    }

    fn push(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }

    fn check_edge(&self, id: NodeId) -> Result<(), GraphError> {
        if id.0 >= self.nodes.len() {
            return Err(GraphError::BadEdge(format!(
                "node {} does not exist yet (graph has {})",
                id.0,
                self.nodes.len()
            )));
        }
        Ok(())
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` for an empty graph.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Read access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// The filter weights attached to a conv node, if any (the serving
    /// registry reads these when registering a whole graph).
    pub fn weights(&self, id: NodeId) -> Option<&Tensor4<f32>> {
        self.weights.get(&id)
    }

    /// All convolution nodes with their descriptors.
    pub fn conv_nodes(&self) -> Vec<(NodeId, ConvDesc)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match n.op {
                Op::Conv { desc, .. } => Some((NodeId(i), desc)),
                _ => None,
            })
            .collect()
    }

    /// Attaches filter weights `(K, C, r, r)` to a conv node.
    ///
    /// # Errors
    /// [`GraphError::Shape`] if the node is not a conv or dims do not
    /// match its descriptor.
    pub fn set_weights(&mut self, id: NodeId, weights: Tensor4<f32>) -> Result<(), GraphError> {
        match self.nodes.get(id.0).map(|n| &n.op) {
            Some(Op::Conv { desc, .. }) => {
                if weights.dims() != (desc.out_ch, desc.in_ch, desc.ksz, desc.ksz) {
                    return Err(GraphError::Shape(format!(
                        "weights {:?} do not match {desc}",
                        weights.dims()
                    )));
                }
                self.weights.insert(id, weights);
                Ok(())
            }
            _ => Err(GraphError::Shape(format!(
                "node {id:?} is not a convolution"
            ))),
        }
    }

    /// Sets the engine executing a conv node (default: direct).
    pub fn set_engine(&mut self, id: NodeId, engine: EngineChoice) {
        self.engines.insert(id, engine);
    }

    /// The engine a conv node executes with (the default
    /// [`EngineChoice::Direct`] when never set).
    pub fn engine(&self, id: NodeId) -> EngineChoice {
        self.engines
            .get(&id)
            .copied()
            .unwrap_or(EngineChoice::Direct)
    }

    /// Graph-level optimization: fuse each ReLU whose sole producer is
    /// a convolution into that convolution (the optimization sketched
    /// in Figure 2's "graph-level optimization" stage). Returns the
    /// number of fused pairs. The ReLU node remains but becomes a
    /// pass-through at execution.
    pub fn fuse_relu(&mut self) -> usize {
        let mut fused = 0;
        for i in 0..self.nodes.len() {
            if !matches!(self.nodes[i].op, Op::Relu) {
                continue;
            }
            let Some(&src) = self.nodes[i].inputs.first() else {
                continue;
            };
            if let Op::Conv { fused_relu, .. } = &mut self.nodes[src.0].op {
                if !*fused_relu {
                    *fused_relu = true;
                    fused += 1;
                }
                // Make the ReLU a pass-through (identity) node.
                self.nodes[i].op = Op::Input;
                self.nodes[i].inputs = vec![src];
            }
        }
        fused
    }

    /// Executes the graph on `input`, returning the value of the last
    /// node. Every node opens a `graph.node.<op>` probe span so the
    /// naive reference trace lines up against `wino-exec`'s `exec.*`
    /// spans.
    ///
    /// # Errors
    /// Missing weights, shape mismatches, or engine failures.
    pub fn execute(&self, input: &Tensor4<f32>) -> Result<Tensor4<f32>, GraphError> {
        let mut values: Vec<Option<Tensor4<f32>>> = vec![None; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i);
            // Span names must be 'static; one per op kind, with the
            // node index attached as an arg.
            let span_name = match &node.op {
                Op::Input => "graph.node.input",
                Op::Relu => "graph.node.relu",
                Op::MaxPool { .. } => "graph.node.max_pool",
                Op::Concat => "graph.node.concat",
                Op::Conv { .. } => "graph.node.conv",
            };
            let mut span = wino_probe::span(span_name);
            span.arg("node", || i.to_string());
            let value = match &node.op {
                Op::Input => match node.inputs.first() {
                    // Pass-through (fused ReLU remnant).
                    Some(&src) => values[src.0].clone().expect("topological order"),
                    None => input.clone(),
                },
                Op::Relu => {
                    let src = self.input_value(&values, node)?;
                    src.map(|v| v.max(0.0))
                }
                Op::MaxPool { k, s } => {
                    let src = self.input_value(&values, node)?;
                    max_pool(src, *k, *s)
                }
                Op::Concat => {
                    let srcs: Vec<&Tensor4<f32>> = node
                        .inputs
                        .iter()
                        .map(|src| values[src.0].as_ref().expect("topological order"))
                        .collect();
                    concat_channels(&srcs)?
                }
                Op::Conv { desc, fused_relu } => {
                    let src = self.input_value(&values, node)?;
                    let mut desc = *desc;
                    desc.batch = src.n();
                    if (src.c(), src.h(), src.w()) != (desc.in_ch, desc.in_h, desc.in_w) {
                        return Err(GraphError::Shape(format!(
                            "node {i}: input {:?} does not match {desc}",
                            src.dims()
                        )));
                    }
                    let weights = self
                        .weights
                        .get(&id)
                        .ok_or(GraphError::MissingWeights(id))?;
                    let engine = self
                        .engines
                        .get(&id)
                        .copied()
                        .unwrap_or(EngineChoice::Direct);
                    let out = run_conv(engine, src, weights, &desc)?;
                    if *fused_relu {
                        out.map(|v| v.max(0.0))
                    } else {
                        out
                    }
                }
            };
            values[i] = Some(value);
        }
        values
            .pop()
            .flatten()
            .ok_or_else(|| GraphError::Shape("empty graph".into()))
    }

    fn input_value<'a>(
        &self,
        values: &'a [Option<Tensor4<f32>>],
        node: &Node,
    ) -> Result<&'a Tensor4<f32>, GraphError> {
        let src = node
            .inputs
            .first()
            .ok_or_else(|| GraphError::BadEdge("node has no input".into()))?;
        values[src.0]
            .as_ref()
            .ok_or_else(|| GraphError::BadEdge("input not yet computed".into()))
    }
}

/// Dispatches one convolution to the chosen engine.
///
/// # Errors
/// Engine failures.
pub fn run_conv(
    engine: EngineChoice,
    input: &Tensor4<f32>,
    weights: &Tensor4<f32>,
    desc: &ConvDesc,
) -> Result<Tensor4<f32>, ConvError> {
    match engine {
        EngineChoice::Direct => conv_direct_f32(input, weights, desc),
        EngineChoice::Im2col => conv_im2col(input, weights, desc),
        EngineChoice::Winograd(cfg) => conv_winograd(input, weights, desc, &cfg),
    }
}

/// Channel-wise concatenation; all inputs must agree on (n, h, w).
pub fn concat_channels(inputs: &[&Tensor4<f32>]) -> Result<Tensor4<f32>, GraphError> {
    let (n, _, h, w) = inputs[0].dims();
    let total_c: usize = inputs.iter().map(|t| t.c()).sum();
    for t in inputs {
        if (t.n(), t.h(), t.w()) != (n, h, w) {
            return Err(GraphError::Shape(format!(
                "concat inputs disagree: {:?} vs {:?}",
                t.dims(),
                inputs[0].dims()
            )));
        }
    }
    let mut out = Tensor4::<f32>::zeros(n, total_c, h, w);
    concat_into(inputs, &mut out)?;
    Ok(out)
}

/// [`concat_channels`] writing into a caller-owned output tensor
/// (the arena executor's allocation-free path). Values are
/// bit-identical to [`concat_channels`] — both are plane copies.
///
/// # Errors
/// [`GraphError::Shape`] when inputs disagree spatially or `out` does
/// not match the concatenated shape.
pub fn concat_into(inputs: &[&Tensor4<f32>], out: &mut Tensor4<f32>) -> Result<(), GraphError> {
    let (n, _, h, w) = inputs[0].dims();
    let total_c: usize = inputs.iter().map(|t| t.c()).sum();
    if out.dims() != (n, total_c, h, w) {
        return Err(GraphError::Shape(format!(
            "concat output {:?} does not match ({n}, {total_c}, {h}, {w})",
            out.dims()
        )));
    }
    let mut c_base = 0;
    for t in inputs {
        if (t.n(), t.h(), t.w()) != (n, h, w) {
            return Err(GraphError::Shape(format!(
                "concat inputs disagree: {:?} vs {:?}",
                t.dims(),
                inputs[0].dims()
            )));
        }
        for ni in 0..n {
            for c in 0..t.c() {
                out.plane_mut(ni, c_base + c)
                    .copy_from_slice(t.plane(ni, c));
            }
        }
        c_base += t.c();
    }
    Ok(())
}

/// Max pooling with square window `k` and stride `s`.
pub fn max_pool(input: &Tensor4<f32>, k: usize, s: usize) -> Tensor4<f32> {
    let oh = (input.h() - k) / s + 1;
    let ow = (input.w() - k) / s + 1;
    let mut out = Tensor4::<f32>::zeros(input.n(), input.c(), oh, ow);
    max_pool_into(input, k, s, &mut out);
    out
}

/// [`max_pool`] writing into a caller-owned output tensor. Each output
/// element is the same `f32::max` reduction in the same window order,
/// so values are bit-identical to [`max_pool`].
///
/// # Panics
/// When `out`'s shape does not match the pooled shape of `input`.
pub fn max_pool_into(input: &Tensor4<f32>, k: usize, s: usize, out: &mut Tensor4<f32>) {
    let oh = (input.h() - k) / s + 1;
    let ow = (input.w() - k) / s + 1;
    assert_eq!(
        out.dims(),
        (input.n(), input.c(), oh, ow),
        "max_pool output shape mismatch"
    );
    for n in 0..input.n() {
        for c in 0..input.c() {
            for y in 0..oh {
                for x in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    for dy in 0..k {
                        for dx in 0..k {
                            best = best.max(input[(n, c, y * s + dy, x * s + dx)]);
                        }
                    }
                    out[(n, c, y, x)] = best;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_net() -> (ComputeGraph, NodeId) {
        let mut g = ComputeGraph::new();
        let input = g.add_input();
        let desc = ConvDesc::new(3, 1, 1, 4, 1, 8, 8, 2);
        let conv = g.add_conv(input, desc).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        g.set_weights(conv, Tensor4::random(4, 2, 3, 3, -1.0, 1.0, &mut rng))
            .unwrap();
        (g, conv)
    }

    fn rand_input(seed: u64) -> Tensor4<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor4::random(1, 2, 8, 8, -1.0, 1.0, &mut rng)
    }

    #[test]
    fn single_conv_executes() {
        let (g, _) = small_net();
        let out = g.execute(&rand_input(2)).unwrap();
        assert_eq!(out.dims(), (1, 4, 8, 8));
    }

    #[test]
    fn engines_agree_in_graph_context() {
        let (mut g, conv) = small_net();
        let input = rand_input(3);
        let direct = g.execute(&input).unwrap();
        g.set_engine(conv, EngineChoice::Im2col);
        let im2col = g.execute(&input).unwrap();
        g.set_engine(conv, EngineChoice::Winograd(WinogradConfig::new(2)));
        let wino = g.execute(&input).unwrap();
        for i in 0..direct.len() {
            assert!((direct.data()[i] - im2col.data()[i]).abs() < 1e-4);
            assert!((direct.data()[i] - wino.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn relu_fusion_preserves_semantics() {
        let mut g = ComputeGraph::new();
        let input = g.add_input();
        let desc = ConvDesc::new(3, 1, 1, 3, 1, 6, 6, 2);
        let conv = g.add_conv(input, desc).unwrap();
        let _relu = g.add_relu(conv).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        g.set_weights(conv, Tensor4::random(3, 2, 3, 3, -1.0, 1.0, &mut rng))
            .unwrap();
        let x = {
            let mut rng = StdRng::seed_from_u64(5);
            Tensor4::random(1, 2, 6, 6, -1.0, 1.0, &mut rng)
        };
        let before = g.execute(&x).unwrap();
        assert_eq!(g.fuse_relu(), 1);
        let after = g.execute(&x).unwrap();
        assert_eq!(before, after);
        assert!(after.data().iter().all(|&v| v >= 0.0));
        // Fusing again is a no-op.
        assert_eq!(g.fuse_relu(), 0);
    }

    #[test]
    fn max_pool_shapes_and_values() {
        let mut g = ComputeGraph::new();
        let input = g.add_input();
        let _pool = g.add_max_pool(input, 2, 2).unwrap();
        let x = Tensor4::from_fn(1, 1, 4, 4, |_, _, y, xx| (y * 4 + xx) as f32);
        let out = g.execute(&x).unwrap();
        assert_eq!(out.dims(), (1, 1, 2, 2));
        assert_eq!(out[(0, 0, 0, 0)], 5.0);
        assert_eq!(out[(0, 0, 1, 1)], 15.0);
    }

    #[test]
    fn missing_weights_detected() {
        let mut g = ComputeGraph::new();
        let input = g.add_input();
        let desc = ConvDesc::new(3, 1, 1, 4, 1, 8, 8, 2);
        let conv = g.add_conv(input, desc).unwrap();
        assert!(matches!(
            g.execute(&rand_input(6)),
            Err(GraphError::MissingWeights(id)) if id == conv
        ));
    }

    #[test]
    fn shape_mismatch_detected() {
        let (g, _) = small_net();
        let bad = Tensor4::<f32>::zeros(1, 3, 8, 8);
        assert!(matches!(g.execute(&bad), Err(GraphError::Shape(_))));
    }

    #[test]
    fn bad_edges_rejected() {
        let mut g = ComputeGraph::new();
        assert!(g.add_relu(NodeId(5)).is_err());
        let i = g.add_input();
        assert!(g.add_conv(i, ConvDesc::new(3, 1, 1, 1, 1, 4, 4, 1)).is_ok());
    }

    #[test]
    fn batch_adapts_to_input() {
        let (g, _) = small_net();
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor4::random(3, 2, 8, 8, -1.0, 1.0, &mut rng);
        let out = g.execute(&x).unwrap();
        assert_eq!(out.n(), 3);
    }
}
