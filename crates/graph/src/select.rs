//! Rule-based variant pre-selection.
//!
//! Before auto-tuning, the framework needs a sound default engine per
//! layer ("once the framework picks a Winograd convolution according
//! to the hardware and the convolution parameters", §3). These rules
//! encode the paper's own findings: Winograd for unit-stride 3×3 and
//! 5×5 layers (filters above five "are probably not suitable for
//! deployment", §4.2), im2col + GEMM otherwise, with the output tile
//! size picked by the paper's sweet-spot analysis (α = 8 where
//! possible, §4.2: F(6,3) and F(4,5)).

use wino_conv::{WinogradConfig, WinogradVariant};
use wino_tensor::ConvDesc;

use crate::graph::EngineChoice;

/// Default output tile size for a filter size, from the paper's
/// conclusion: "choosing the right output tile size m, depending on
/// the filter size … e.g. F(m = 6, r = 3), F(m = 4, r = 5)".
pub fn default_tile_size(r: usize) -> usize {
    match r {
        3 => 6,
        5 => 4,
        7 => 2,
        _ => 2,
    }
}

/// Picks the default engine for a convolution.
pub fn select_engine(desc: &ConvDesc) -> EngineChoice {
    if !desc.winograd_applicable() || desc.ksz > 5 || desc.ksz < 3 {
        return EngineChoice::Im2col;
    }
    let m = default_tile_size(desc.ksz);
    // Small output maps cannot amortize a large tile.
    let m = m.min(desc.out_h().max(1)).max(2);
    // Fused kernels suit small convolutions (small α and few
    // channels); non-fused otherwise (§3.2.2's rule of thumb).
    let variant = if desc.ksz == 3 && desc.in_ch <= 256 && m <= 4 {
        WinogradVariant::Fused
    } else {
        WinogradVariant::NonFused
    };
    EngineChoice::Winograd(WinogradConfig::new(m).with_variant(variant))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_by_three_gets_winograd() {
        let d = ConvDesc::new(3, 1, 1, 64, 1, 14, 14, 32);
        assert!(matches!(select_engine(&d), EngineChoice::Winograd(cfg) if cfg.m == 6));
    }

    #[test]
    fn five_by_five_gets_f45() {
        let d = ConvDesc::new(5, 1, 2, 64, 1, 14, 14, 32);
        assert!(matches!(select_engine(&d), EngineChoice::Winograd(cfg) if cfg.m == 4));
    }

    #[test]
    fn strided_and_large_filters_fall_back() {
        let strided = ConvDesc::new(3, 2, 1, 64, 1, 14, 14, 32);
        assert!(matches!(select_engine(&strided), EngineChoice::Im2col));
        let seven = ConvDesc::new(7, 1, 3, 64, 1, 14, 14, 32);
        assert!(matches!(select_engine(&seven), EngineChoice::Im2col));
        let one = ConvDesc::new(1, 1, 0, 64, 1, 14, 14, 32);
        assert!(matches!(select_engine(&one), EngineChoice::Im2col));
    }

    #[test]
    fn tiny_outputs_clamp_tile_size() {
        let d = ConvDesc::new(3, 1, 1, 1024, 1, 6, 6, 384);
        if let EngineChoice::Winograd(cfg) = select_engine(&d) {
            assert!(cfg.m <= 6);
            assert!(cfg.m >= 2);
        } else {
            panic!("expected Winograd");
        }
    }

    #[test]
    fn default_tiles_give_alpha_8() {
        assert_eq!(default_tile_size(3) + 3 - 1, 8);
        assert_eq!(default_tile_size(5) + 5 - 1, 8);
        assert_eq!(default_tile_size(7) + 7 - 1, 8);
    }
}
