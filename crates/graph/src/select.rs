//! Variant pre-selection: tuned plans first, rules second.
//!
//! The framework needs a sound engine per layer ("once the framework
//! picks a Winograd convolution according to the hardware and the
//! convolution parameters", §3). The preferred source is a persisted
//! tuning cache — serving must pin the *specific* tuned `(m, variant)`
//! plan per layer rather than re-deciding per request. When no tuned
//! plan exists, static rules encode the paper's own findings: Winograd
//! for unit-stride 3×3 and 5×5 layers (filters above five "are
//! probably not suitable for deployment", §4.2), im2col + GEMM
//! otherwise, with the output tile size picked by the paper's
//! sweet-spot analysis (α = 8 where possible, §4.2: F(6,3) and
//! F(4,5)).
//!
//! [`select_engine`] consults the cache named by the `WINO_TUNE_CACHE`
//! environment variable (device key `WINO_TUNE_DEVICE`, default
//! `"cpu"`), loaded once per process through the never-failing
//! `load_or_rebuild`. [`select_engine_cached`] takes an explicit cache
//! for callers that manage their own (the serving plan registry).

use std::path::Path;
use std::sync::OnceLock;

use wino_codegen::PlanVariant;
use wino_conv::{WinogradConfig, WinogradVariant};
use wino_tensor::ConvDesc;
use wino_tuner::{Evaluation, TuningCache};

use crate::graph::EngineChoice;

/// Default output tile size for a filter size, from the paper's
/// conclusion: "choosing the right output tile size m, depending on
/// the filter size … e.g. F(m = 6, r = 3), F(m = 4, r = 5)".
pub fn default_tile_size(r: usize) -> usize {
    match r {
        3 => 6,
        5 => 4,
        7 => 2,
        _ => 2,
    }
}

/// Picks the engine for a convolution: the process-wide tuning cache
/// (`WINO_TUNE_CACHE`) when one is configured and holds this shape,
/// the static heuristic otherwise.
pub fn select_engine(desc: &ConvDesc) -> EngineChoice {
    match env_cache() {
        Some((cache, device)) => select_engine_cached(desc, cache, device),
        None => select_engine_static(desc),
    }
}

/// Picks the engine for a convolution from an explicit tuning cache,
/// falling back to [`select_engine_static`] — with a `probe::diag`
/// note — when the cache has no plan for this (shape, device).
pub fn select_engine_cached(desc: &ConvDesc, cache: &TuningCache, device: &str) -> EngineChoice {
    match cache.get(desc, device) {
        Some(eval) => engine_from_evaluation(&eval),
        None => {
            wino_probe::diag(format!(
                "select: no tuned plan for {desc} on {device:?}; using static heuristic"
            ));
            select_engine_static(desc)
        }
    }
}

/// Maps a tuned evaluation onto the engine it prescribes, carrying the
/// winning GEMM blocking into the Winograd configuration.
pub fn engine_from_evaluation(eval: &Evaluation) -> EngineChoice {
    let winograd = |m: usize, variant: WinogradVariant| {
        EngineChoice::Winograd(
            WinogradConfig::new(m)
                .with_variant(variant)
                .with_gemm_config(eval.point.gemm_config()),
        )
    };
    match eval.point.variant {
        PlanVariant::Direct => EngineChoice::Direct,
        PlanVariant::Im2col => EngineChoice::Im2col,
        PlanVariant::WinogradNonFused { m } => winograd(m, WinogradVariant::NonFused),
        PlanVariant::WinogradFused { m } => winograd(m, WinogradVariant::Fused),
    }
}

/// The rule-based selection, independent of any tuning state.
pub fn select_engine_static(desc: &ConvDesc) -> EngineChoice {
    if !desc.winograd_applicable() || desc.ksz > 5 || desc.ksz < 3 {
        return EngineChoice::Im2col;
    }
    let m = default_tile_size(desc.ksz);
    // Small output maps cannot amortize a large tile.
    let m = m.min(desc.out_h().max(1)).max(2);
    // Fused kernels suit small convolutions (small α and few
    // channels); non-fused otherwise (§3.2.2's rule of thumb).
    let variant = if desc.ksz == 3 && desc.in_ch <= 256 && m <= 4 {
        WinogradVariant::Fused
    } else {
        WinogradVariant::NonFused
    };
    EngineChoice::Winograd(WinogradConfig::new(m).with_variant(variant))
}

/// The cache named by `WINO_TUNE_CACHE`, loaded once per process with
/// the never-failing loader; `None` when the variable is unset.
fn env_cache() -> Option<&'static (TuningCache, String)> {
    static CACHE: OnceLock<Option<(TuningCache, String)>> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            let path = std::env::var_os("WINO_TUNE_CACHE")?;
            let device = std::env::var("WINO_TUNE_DEVICE").unwrap_or_else(|_| "cpu".to_string());
            Some((TuningCache::load_or_rebuild(Path::new(&path)), device))
        })
        .as_ref()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_by_three_gets_winograd() {
        let d = ConvDesc::new(3, 1, 1, 64, 1, 14, 14, 32);
        assert!(matches!(select_engine(&d), EngineChoice::Winograd(cfg) if cfg.m == 6));
    }

    #[test]
    fn five_by_five_gets_f45() {
        let d = ConvDesc::new(5, 1, 2, 64, 1, 14, 14, 32);
        assert!(matches!(select_engine(&d), EngineChoice::Winograd(cfg) if cfg.m == 4));
    }

    #[test]
    fn strided_and_large_filters_fall_back() {
        let strided = ConvDesc::new(3, 2, 1, 64, 1, 14, 14, 32);
        assert!(matches!(select_engine(&strided), EngineChoice::Im2col));
        let seven = ConvDesc::new(7, 1, 3, 64, 1, 14, 14, 32);
        assert!(matches!(select_engine(&seven), EngineChoice::Im2col));
        let one = ConvDesc::new(1, 1, 0, 64, 1, 14, 14, 32);
        assert!(matches!(select_engine(&one), EngineChoice::Im2col));
    }

    #[test]
    fn tiny_outputs_clamp_tile_size() {
        let d = ConvDesc::new(3, 1, 1, 1024, 1, 6, 6, 384);
        if let EngineChoice::Winograd(cfg) = select_engine(&d) {
            assert!(cfg.m <= 6);
            assert!(cfg.m >= 2);
        } else {
            panic!("expected Winograd");
        }
    }

    #[test]
    fn default_tiles_give_alpha_8() {
        assert_eq!(default_tile_size(3) + 3 - 1, 8);
        assert_eq!(default_tile_size(5) + 5 - 1, 8);
        assert_eq!(default_tile_size(7) + 7 - 1, 8);
    }

    #[test]
    fn cached_plan_overrides_static_heuristic() {
        use wino_codegen::Unroll;
        use wino_tuner::TuningPoint;

        // The static rule would pick NonFused F(6,3) for this shape;
        // the cache prescribes Fused F(2,3) with its own blocking.
        let d = ConvDesc::new(3, 1, 1, 64, 1, 14, 14, 32);
        let cache = TuningCache::new();
        let point = TuningPoint {
            variant: PlanVariant::WinogradFused { m: 2 },
            unroll: Unroll::Full,
            mnt: 2,
            mnb: 4,
            threads: 1,
        };
        cache.put(
            &d,
            "cpu",
            &Evaluation {
                point,
                time_ms: 0.5,
            },
        );
        let choice = select_engine_cached(&d, &cache, "cpu");
        let EngineChoice::Winograd(cfg) = choice else {
            panic!("expected Winograd, got {choice:?}");
        };
        assert_eq!(cfg.m, 2);
        assert_eq!(cfg.variant, WinogradVariant::Fused);
        assert_eq!(cfg.gemm, point.gemm_config());
    }

    #[test]
    fn cache_miss_falls_back_with_diag() {
        let d = ConvDesc::new(3, 1, 1, 64, 1, 14, 14, 32);
        let cache = TuningCache::new();
        wino_probe::set_mode(wino_probe::Mode::Summary);
        let _ = wino_probe::take_diagnostics();
        let choice = select_engine_cached(&d, &cache, "cpu");
        let diags = wino_probe::take_diagnostics();
        wino_probe::set_mode(wino_probe::Mode::Off);
        assert_eq!(choice, select_engine_static(&d));
        assert!(
            diags.iter().any(|l| l.contains("no tuned plan")),
            "expected a fallback diagnostic, got {diags:?}"
        );
    }

    #[test]
    fn cached_baseline_variants_map_through() {
        use wino_codegen::Unroll;
        use wino_tuner::TuningPoint;

        let d = ConvDesc::new(3, 1, 1, 64, 1, 14, 14, 32);
        let cache = TuningCache::new();
        for (variant, expected) in [
            (PlanVariant::Im2col, EngineChoice::Im2col),
            (PlanVariant::Direct, EngineChoice::Direct),
        ] {
            cache.put(
                &d,
                "cpu",
                &Evaluation {
                    point: TuningPoint {
                        variant,
                        unroll: Unroll::Full,
                        mnt: 1,
                        mnb: 8,
                        threads: 1,
                    },
                    time_ms: 1.0,
                },
            );
            assert_eq!(select_engine_cached(&d, &cache, "cpu"), expected);
        }
    }
}
