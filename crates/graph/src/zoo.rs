//! The model zoo and the paper's 31 benchmark convolutions (Table 4).
//!
//! The paper extracts every convolution with more than 1e8 FLOPs from
//! AlexNet, Network-in-Network (ImageNet variant) and InceptionV1
//! (GoogLeNet), at batch sizes 1 and 5 — "to model both a single
//! inference and a streaming deployment scenario". This module defines
//! the convolutional layers of those three networks and regenerates
//! the selection; [`table4_convs`] is the literal table for
//! cross-checking.

use wino_tensor::ConvDesc;

use crate::graph::{ComputeGraph, GraphError, NodeId};

/// A named convolution layer of a reference network.
#[derive(Clone, Debug)]
pub struct NamedConv {
    /// Network the layer belongs to.
    pub network: &'static str,
    /// Layer name.
    pub layer: &'static str,
    /// The convolution at batch size 1.
    pub desc: ConvDesc,
}

#[allow(clippy::too_many_arguments)] // table row constructor mirrors ConvDesc's axes
fn c(
    network: &'static str,
    layer: &'static str,
    ksz: usize,
    stride: usize,
    pad: usize,
    oc: usize,
    h: usize,
    w: usize,
    ic: usize,
) -> NamedConv {
    NamedConv {
        network,
        layer,
        desc: ConvDesc::new(ksz, stride, pad, oc, 1, h, w, ic),
    }
}

/// AlexNet convolution layers (spatial convs only).
pub fn alexnet_convs() -> Vec<NamedConv> {
    vec![
        c("alexnet", "conv1", 11, 4, 0, 96, 227, 227, 3),
        c("alexnet", "conv2", 5, 1, 2, 256, 27, 27, 96),
        c("alexnet", "conv3", 3, 1, 1, 384, 13, 13, 256),
        c("alexnet", "conv4", 3, 1, 1, 384, 13, 13, 384),
        c("alexnet", "conv5", 3, 1, 1, 256, 13, 13, 384),
    ]
}

/// Network-in-Network (ImageNet) spatial convolution layers.
pub fn nin_convs() -> Vec<NamedConv> {
    vec![
        c("nin", "conv1", 11, 4, 0, 96, 227, 227, 3),
        c("nin", "conv2", 5, 1, 2, 256, 27, 27, 96),
        c("nin", "conv3", 3, 1, 1, 384, 13, 13, 256),
        c("nin", "conv4-1024", 3, 1, 1, 1024, 6, 6, 384),
    ]
}

/// InceptionV1 (GoogLeNet) spatial convolution layers: the stem 3×3
/// plus the 3×3 and 5×5 branches of every inception module.
pub fn inception_v1_convs() -> Vec<NamedConv> {
    vec![
        c("inception-v1", "conv2/3x3", 3, 1, 1, 192, 56, 56, 64),
        // inception 3a
        c("inception-v1", "3a/3x3", 3, 1, 1, 128, 28, 28, 96),
        c("inception-v1", "3a/5x5", 5, 1, 2, 32, 28, 28, 16),
        // inception 3b
        c("inception-v1", "3b/3x3", 3, 1, 1, 192, 28, 28, 128),
        c("inception-v1", "3b/5x5", 5, 1, 2, 96, 28, 28, 32),
        // inception 4a
        c("inception-v1", "4a/3x3", 3, 1, 1, 208, 14, 14, 96),
        c("inception-v1", "4a/5x5", 5, 1, 2, 48, 14, 14, 16),
        // inception 4b
        c("inception-v1", "4b/3x3", 3, 1, 1, 224, 14, 14, 112),
        c("inception-v1", "4b/5x5", 5, 1, 2, 64, 14, 14, 24),
        // inception 4c
        c("inception-v1", "4c/3x3", 3, 1, 1, 256, 14, 14, 128),
        c("inception-v1", "4c/5x5", 5, 1, 2, 64, 14, 14, 24),
        // inception 4d
        c("inception-v1", "4d/3x3", 3, 1, 1, 288, 14, 14, 144),
        c("inception-v1", "4d/5x5", 5, 1, 2, 64, 14, 14, 32),
        // inception 4e
        c("inception-v1", "4e/3x3", 3, 1, 1, 320, 14, 14, 160),
        c("inception-v1", "4e/5x5", 5, 1, 2, 128, 14, 14, 32),
        // inception 5a
        c("inception-v1", "5a/3x3", 3, 1, 1, 320, 7, 7, 160),
        c("inception-v1", "5a/5x5", 5, 1, 2, 128, 7, 7, 32),
        // inception 5b
        c("inception-v1", "5b/3x3", 3, 1, 1, 384, 7, 7, 192),
        c("inception-v1", "5b/5x5", 5, 1, 2, 128, 7, 7, 48),
    ]
}

/// All reference-network convolutions.
pub fn all_network_convs() -> Vec<NamedConv> {
    let mut v = alexnet_convs();
    v.extend(nin_convs());
    v.extend(inception_v1_convs());
    v
}

/// Regenerates the paper's benchmark selection: every network
/// convolution at batch sizes {1, 5} with at least 1e8 FLOPs,
/// deduplicated and sorted by FLOPs.
pub fn extract_benchmark_convs() -> Vec<ConvDesc> {
    let mut out: Vec<ConvDesc> = Vec::new();
    for named in all_network_convs() {
        for batch in [1usize, 5] {
            let mut d = named.desc;
            d.batch = batch;
            if d.flops() >= 100_000_000 && !out.contains(&d) {
                out.push(d);
            }
        }
    }
    out.sort_by_key(ConvDesc::flops);
    out
}

/// The 31 benchmark convolutions exactly as printed in Table 4 of the
/// paper, sorted by FLOPs. Column order of the constructor mirrors the
/// table: `(KSZ, S, P, OC, B, in_y, in_x, in_chan)`.
pub fn table4_convs() -> Vec<ConvDesc> {
    vec![
        ConvDesc::new(5, 1, 2, 32, 5, 28, 28, 16),
        ConvDesc::new(5, 1, 2, 64, 5, 14, 14, 32),
        ConvDesc::new(3, 1, 1, 256, 1, 14, 14, 128),
        ConvDesc::new(5, 1, 2, 96, 1, 28, 28, 32),
        ConvDesc::new(3, 1, 1, 288, 1, 14, 14, 144),
        ConvDesc::new(3, 1, 1, 128, 1, 28, 28, 96),
        ConvDesc::new(3, 1, 1, 320, 1, 14, 14, 160),
        ConvDesc::new(5, 1, 2, 128, 5, 14, 14, 32),
        ConvDesc::new(3, 1, 1, 320, 5, 7, 7, 160),
        ConvDesc::new(3, 1, 1, 1024, 1, 6, 6, 384),
        ConvDesc::new(3, 1, 1, 256, 1, 13, 13, 384),
        ConvDesc::new(3, 1, 1, 384, 1, 13, 13, 256),
        ConvDesc::new(3, 1, 1, 384, 5, 7, 7, 192),
        ConvDesc::new(3, 1, 1, 192, 1, 28, 28, 128),
        ConvDesc::new(3, 1, 1, 208, 5, 14, 14, 96),
        ConvDesc::new(3, 1, 1, 224, 5, 14, 14, 112),
        ConvDesc::new(3, 1, 1, 384, 1, 13, 13, 384),
        ConvDesc::new(3, 1, 1, 256, 5, 14, 14, 128),
        ConvDesc::new(5, 1, 2, 96, 5, 28, 28, 32),
        ConvDesc::new(3, 1, 1, 192, 1, 56, 56, 64),
        ConvDesc::new(3, 1, 1, 288, 5, 14, 14, 144),
        ConvDesc::new(3, 1, 1, 128, 5, 28, 28, 96),
        ConvDesc::new(5, 1, 2, 256, 1, 27, 27, 96),
        ConvDesc::new(3, 1, 1, 320, 5, 14, 14, 160),
        ConvDesc::new(3, 1, 1, 1024, 5, 6, 6, 384),
        ConvDesc::new(3, 1, 1, 384, 5, 13, 13, 256),
        ConvDesc::new(3, 1, 1, 256, 5, 13, 13, 384),
        ConvDesc::new(3, 1, 1, 192, 5, 28, 28, 128),
        ConvDesc::new(3, 1, 1, 384, 5, 13, 13, 384),
        ConvDesc::new(3, 1, 1, 192, 5, 56, 56, 64),
        ConvDesc::new(5, 1, 2, 256, 5, 27, 27, 96),
    ]
}

/// The FLOPs column as printed in Table 4 (for paper-vs-measured
/// cross-checks).
pub fn table4_paper_flops() -> Vec<f64> {
    vec![
        1.0e8, 1.0e8, 1.16e8, 1.2e8, 1.46e8, 1.73e8, 1.81e8, 2.01e8, 2.26e8, 2.55e8, 2.99e8,
        2.99e8, 3.25e8, 3.47e8, 3.52e8, 4.43e8, 4.49e8, 5.78e8, 6.02e8, 6.94e8, 7.32e8, 8.67e8,
        8.96e8, 9.03e8, 1.27e9, 1.5e9, 1.5e9, 1.73e9, 2.24e9, 3.47e9, 4.48e9,
    ]
}

/// Builds the AlexNet convolution/pool topology as a compute graph
/// (LRN layers elided — they do not affect shapes or the convolution
/// workload). Returns the graph and the final conv node. Weights are
/// not attached; use [`ComputeGraph::infer_shapes`] or attach weights
/// before executing.
pub fn build_alexnet_graph() -> Result<(ComputeGraph, NodeId), GraphError> {
    let mut g = ComputeGraph::new();
    let input = g.add_input();
    let c1 = g.add_conv(input, ConvDesc::new(11, 4, 0, 96, 1, 227, 227, 3))?;
    let r1 = g.add_relu(c1)?;
    let p1 = g.add_max_pool(r1, 3, 2)?; // 55 → 27
    let c2 = g.add_conv(p1, ConvDesc::new(5, 1, 2, 256, 1, 27, 27, 96))?;
    let r2 = g.add_relu(c2)?;
    let p2 = g.add_max_pool(r2, 3, 2)?; // 27 → 13
    let c3 = g.add_conv(p2, ConvDesc::new(3, 1, 1, 384, 1, 13, 13, 256))?;
    let r3 = g.add_relu(c3)?;
    let c4 = g.add_conv(r3, ConvDesc::new(3, 1, 1, 384, 1, 13, 13, 384))?;
    let r4 = g.add_relu(c4)?;
    let c5 = g.add_conv(r4, ConvDesc::new(3, 1, 1, 256, 1, 13, 13, 384))?;
    Ok((g, c5))
}

/// Builds the Network-in-Network (ImageNet) topology: each spatial
/// convolution of [`nin_convs`] followed by its ReLU and the two 1×1
/// "cccp" MLP convolutions, with 3×3/2 max-pools between stages.
/// Returns the graph and the final node.
pub fn build_nin_graph() -> Result<(ComputeGraph, NodeId), GraphError> {
    let mut g = ComputeGraph::new();
    let input = g.add_input();
    // Stage 1: conv1 11×11/4 (227 → 55) + cccp1/cccp2.
    let c1 = g.add_conv(input, ConvDesc::new(11, 4, 0, 96, 1, 227, 227, 3))?;
    let r1 = g.add_relu(c1)?;
    let cccp1 = g.add_conv(r1, ConvDesc::new(1, 1, 0, 96, 1, 55, 55, 96))?;
    let rc1 = g.add_relu(cccp1)?;
    let cccp2 = g.add_conv(rc1, ConvDesc::new(1, 1, 0, 96, 1, 55, 55, 96))?;
    let rc2 = g.add_relu(cccp2)?;
    let p1 = g.add_max_pool(rc2, 3, 2)?; // 55 → 27
                                         // Stage 2: conv2 5×5 pad 2 + cccp3/cccp4.
    let c2 = g.add_conv(p1, ConvDesc::new(5, 1, 2, 256, 1, 27, 27, 96))?;
    let r2 = g.add_relu(c2)?;
    let cccp3 = g.add_conv(r2, ConvDesc::new(1, 1, 0, 256, 1, 27, 27, 256))?;
    let rc3 = g.add_relu(cccp3)?;
    let cccp4 = g.add_conv(rc3, ConvDesc::new(1, 1, 0, 256, 1, 27, 27, 256))?;
    let rc4 = g.add_relu(cccp4)?;
    let p2 = g.add_max_pool(rc4, 3, 2)?; // 27 → 13
                                         // Stage 3: conv3 3×3 pad 1 + cccp5/cccp6.
    let c3 = g.add_conv(p2, ConvDesc::new(3, 1, 1, 384, 1, 13, 13, 256))?;
    let r3 = g.add_relu(c3)?;
    let cccp5 = g.add_conv(r3, ConvDesc::new(1, 1, 0, 384, 1, 13, 13, 384))?;
    let rc5 = g.add_relu(cccp5)?;
    let cccp6 = g.add_conv(rc5, ConvDesc::new(1, 1, 0, 384, 1, 13, 13, 384))?;
    let rc6 = g.add_relu(cccp6)?;
    let p3 = g.add_max_pool(rc6, 3, 2)?; // 13 → 6
                                         // Stage 4: the 1024-channel 3×3.
    let c4 = g.add_conv(p3, ConvDesc::new(3, 1, 1, 1024, 1, 6, 6, 384))?;
    let r4 = g.add_relu(c4)?;
    Ok((g, r4))
}

/// Builds the InceptionV1 (GoogLeNet) body from the `conv2/3x3` stem
/// onward: input is the 56×56×64 activation after the 7×7 stem, then
/// every inception module 3a–5b with the paper's channel plans, with
/// 2×2/2 max-pools between stages (GoogLeNet's ceil-mode 3×3/2 pools
/// reach the same 28/14/7 spatial sizes). Returns the graph and the
/// final concat node (7×7×1024).
pub fn build_inception_v1_graph() -> Result<(ComputeGraph, NodeId), GraphError> {
    let mut g = ComputeGraph::new();
    let input = g.add_input();
    let c2 = g.add_conv(input, ConvDesc::new(3, 1, 1, 192, 1, 56, 56, 64))?;
    let r2 = g.add_relu(c2)?;
    let p2 = g.add_max_pool(r2, 2, 2)?; // 56 → 28
    let m3a = build_inception_module(&mut g, p2, 28, 28, 192, (64, 96, 128, 16, 32, 32))?;
    let m3b = build_inception_module(&mut g, m3a, 28, 28, 256, (128, 128, 192, 32, 96, 64))?;
    let p3 = g.add_max_pool(m3b, 2, 2)?; // 28 → 14
    let m4a = build_inception_module(&mut g, p3, 14, 14, 480, (192, 96, 208, 16, 48, 64))?;
    let m4b = build_inception_module(&mut g, m4a, 14, 14, 512, (160, 112, 224, 24, 64, 64))?;
    let m4c = build_inception_module(&mut g, m4b, 14, 14, 512, (128, 128, 256, 24, 64, 64))?;
    let m4d = build_inception_module(&mut g, m4c, 14, 14, 512, (112, 144, 288, 32, 64, 64))?;
    let m4e = build_inception_module(&mut g, m4d, 14, 14, 528, (256, 160, 320, 32, 128, 128))?;
    let p4 = g.add_max_pool(m4e, 2, 2)?; // 14 → 7
    let m5a = build_inception_module(&mut g, p4, 7, 7, 832, (256, 160, 320, 32, 128, 128))?;
    let m5b = build_inception_module(&mut g, m5a, 7, 7, 832, (384, 192, 384, 48, 128, 128))?;
    Ok((g, m5b))
}

/// Appends one InceptionV1 module to `g`: the 1×1, 3×3 (with 1×1
/// reduce), 5×5 (with 1×1 reduce) and pool-projection branches joined
/// by a channel concat. `(h, w, c_in)` is the input shape;
/// the channel plan `(c1, c3r, c3, c5r, c5, cp)` follows the paper's
/// notation (reduce = the 1×1 bottleneck before a spatial conv).
#[allow(clippy::too_many_arguments)]
pub fn build_inception_module(
    g: &mut ComputeGraph,
    input: NodeId,
    h: usize,
    w: usize,
    c_in: usize,
    channels: (usize, usize, usize, usize, usize, usize),
) -> Result<NodeId, GraphError> {
    let (c1, c3r, c3, c5r, c5, cp) = channels;
    // Branch 1: 1×1.
    let b1 = g.add_conv(input, ConvDesc::new(1, 1, 0, c1, 1, h, w, c_in))?;
    // Branch 2: 1×1 reduce → 3×3.
    let b2r = g.add_conv(input, ConvDesc::new(1, 1, 0, c3r, 1, h, w, c_in))?;
    let b2 = g.add_conv(b2r, ConvDesc::new(3, 1, 1, c3, 1, h, w, c3r))?;
    // Branch 3: 1×1 reduce → 5×5.
    let b3r = g.add_conv(input, ConvDesc::new(1, 1, 0, c5r, 1, h, w, c_in))?;
    let b3 = g.add_conv(b3r, ConvDesc::new(5, 1, 2, c5, 1, h, w, c5r))?;
    // Branch 4: 3×3 max-pool (stride 1 via pad — modelled as a same
    // shape pool with window 1 here to keep shapes exact) → 1×1
    // projection. GoogLeNet pads its pool; our MaxPool has no padding,
    // so the projection consumes the input directly, which preserves
    // both the channel plan and the convolution workload.
    let b4 = g.add_conv(input, ConvDesc::new(1, 1, 0, cp, 1, h, w, c_in))?;
    g.add_concat(&[b1, b2, b3, b4])
}

/// Builds the first two inception modules (3a, 3b) on a 28×28×192
/// input — the fragment whose 3×3/5×5 branches supply several Table-4
/// rows.
pub fn build_inception_3a_3b() -> Result<(ComputeGraph, NodeId), GraphError> {
    let mut g = ComputeGraph::new();
    let input = g.add_input();
    let m3a = build_inception_module(&mut g, input, 28, 28, 192, (64, 96, 128, 16, 32, 32))?;
    // 3a output channels: 64 + 128 + 32 + 32 = 256.
    let m3b = build_inception_module(&mut g, m3a, 28, 28, 256, (128, 128, 192, 32, 96, 64))?;
    Ok((g, m3b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_has_31_rows_sorted_by_flops() {
        let t = table4_convs();
        assert_eq!(t.len(), 31);
        for w in t.windows(2) {
            assert!(w[0].flops() <= w[1].flops());
        }
    }

    #[test]
    fn table4_flops_match_paper_column() {
        let t = table4_convs();
        let paper = table4_paper_flops();
        assert_eq!(t.len(), paper.len());
        for (d, &pf) in t.iter().zip(&paper) {
            let rel = (d.flops() as f64 - pf).abs() / pf;
            assert!(rel < 0.02, "{d}: computed {} vs paper {pf}", d.flops());
        }
    }

    #[test]
    fn every_table4_conv_comes_from_a_zoo_network() {
        let zoo = all_network_convs();
        for d in table4_convs() {
            let mut base = d;
            base.batch = 1;
            assert!(
                zoo.iter().any(|n| n.desc == base),
                "table-4 conv {d} not found in any network definition"
            );
        }
    }

    #[test]
    fn extraction_covers_table4() {
        let extracted = extract_benchmark_convs();
        for d in table4_convs() {
            assert!(extracted.contains(&d), "extraction missed {d}");
        }
    }

    #[test]
    fn extraction_applies_flop_threshold() {
        for d in extract_benchmark_convs() {
            assert!(d.flops() >= 100_000_000);
        }
    }

    #[test]
    fn alexnet_graph_shapes() {
        let (g, last) = build_alexnet_graph().unwrap();
        let shapes = g.infer_shapes((1, 3, 227, 227)).unwrap();
        // conv1: 227 → 55, pool → 27, conv2 same, pool → 13.
        assert_eq!(shapes[1], (1, 96, 55, 55));
        assert_eq!(shapes[3], (1, 96, 27, 27));
        assert_eq!(shapes[4], (1, 256, 27, 27));
        assert_eq!(shapes[last.0], (1, 256, 13, 13));
    }

    #[test]
    fn inception_module_channel_plan() {
        let (g, last) = build_inception_3a_3b().unwrap();
        let shapes = g.infer_shapes((1, 192, 28, 28)).unwrap();
        // 3b output: 128 + 192 + 96 + 64 = 480 channels.
        assert_eq!(shapes[last.0], (1, 480, 28, 28));
    }

    #[test]
    fn inception_module_executes() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use wino_tensor::Tensor4;
        // A scaled-down module so execution is fast: 8×8 input, tiny
        // channel plan.
        let mut g = ComputeGraph::new();
        let input = g.add_input();
        let out = build_inception_module(&mut g, input, 8, 8, 4, (2, 3, 4, 2, 3, 2)).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        // Attach weights to every conv node.
        for (id, desc) in g.conv_nodes() {
            let w = Tensor4::random(
                desc.out_ch,
                desc.in_ch,
                desc.ksz,
                desc.ksz,
                -0.5,
                0.5,
                &mut rng,
            );
            g.set_weights(id, w).unwrap();
        }
        let x = Tensor4::random(1, 4, 8, 8, -1.0, 1.0, &mut rng);
        let y = g.execute(&x).unwrap();
        assert_eq!(y.dims(), (1, 2 + 4 + 3 + 2, 8, 8));
        let shapes = g.infer_shapes((1, 4, 8, 8)).unwrap();
        assert_eq!(shapes[out.0], y.dims());
    }

    #[test]
    fn nin_graph_shapes() {
        let (g, last) = build_nin_graph().unwrap();
        let shapes = g.infer_shapes((1, 3, 227, 227)).unwrap();
        assert_eq!(shapes[last.0], (1, 1024, 6, 6));
        // Every nin_convs spatial layer appears as a graph conv node.
        for named in nin_convs() {
            assert!(
                g.conv_nodes().iter().any(|(_, d)| *d == named.desc),
                "nin graph missing {}",
                named.layer
            );
        }
    }

    #[test]
    fn inception_v1_graph_shapes() {
        let (g, last) = build_inception_v1_graph().unwrap();
        let shapes = g.infer_shapes((1, 64, 56, 56)).unwrap();
        assert_eq!(shapes[last.0], (1, 1024, 7, 7));
        // Every Table-4 inception conv (the stem 3×3 plus each module's
        // 3×3/5×5 branch) appears as a graph conv node.
        for named in inception_v1_convs() {
            assert!(
                g.conv_nodes().iter().any(|(_, d)| *d == named.desc),
                "inception graph missing {}",
                named.layer
            );
        }
    }

    #[test]
    fn network_layer_counts() {
        assert_eq!(alexnet_convs().len(), 5);
        assert_eq!(nin_convs().len(), 4);
        assert_eq!(inception_v1_convs().len(), 19);
    }
}
