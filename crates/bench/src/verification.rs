//! Verifier integration: stamps figure artifacts with the proof
//! status of the very recipes they tabulate, so a published table
//! carries "these op counts come from recipes machine-proven
//! equivalent to their transformation matrices" instead of relying on
//! the reader trusting the pipeline.

use wino_verify::{verify_recipe_db, RecipeSummary, VerificationReport};

use crate::report::{Report, TablePrinter};

/// Runs the recipe verifier over the full shipped DB sweep and
/// appends the verification stamp plus per-recipe diagnostics to
/// `report`. Returns whether every recipe proved out.
pub fn verification_section(report: &mut Report) -> bool {
    let recipes = verify_recipe_db();
    let verification = VerificationReport {
        recipes,
        template_issues: Vec::new(),
        plan_issues: Vec::new(),
        audit_issues: Vec::new(),
        // The figure stamp only re-proves the recipes it tabulates;
        // the kernel/index/safety analyses run in the wino-verify CLI.
        kernel_checks: Vec::new(),
        index_checks: Vec::new(),
        safety: wino_verify::SafetyReport {
            files_scanned: 0,
            unsafe_sites: 0,
            issues: Vec::new(),
        },
        pointer_audit: Vec::new(),
        debug_checks: wino_verify::debug_checks_enabled(),
    };
    append_stamp(report, &verification);
    verification.failed_recipes().is_empty()
}

/// Appends the stamp + diagnostics for an already-computed
/// [`VerificationReport`] (the binaries that also run the lints pass
/// their full report through here).
pub fn append_stamp(report: &mut Report, verification: &VerificationReport) {
    let total = verification.recipes.len();
    let failed = verification.failed_recipes();
    report.blank();
    report.line(format!(
        "verified: {} ({}/{} recipes proven equivalent to their transformation \
         matrices over exact rationals)",
        if failed.is_empty() { "yes" } else { "NO" },
        total - failed.len(),
        total
    ));
    for summary in &failed {
        if let Err(e) = &summary.result {
            report.line(format!("  UNPROVEN {}: {e}", summary.label()));
        }
    }
    if let Some((label, growth)) = verification.peak_coeff_growth() {
        report.line(format!(
            "peak intermediate coefficient growth: {growth:.2}x ({label})"
        ));
    }
    report.blank();
    report.line("Verifier diagnostics (optimized pipeline)");
    report.table(&recipe_stats_table(&verification.recipes));
}

/// Per-recipe diagnostics table for the headline (optimized)
/// pipeline: op counts and coefficient growth per proven recipe.
fn recipe_stats_table(recipes: &[RecipeSummary]) -> TablePrinter {
    let mut t = TablePrinter::new(&[
        "recipe", "add", "mul", "fma", "instr", "tmps", "live", "growth",
    ]);
    for s in recipes.iter().filter(|s| s.pipeline == "optimized") {
        if let Ok(p) = &s.result {
            t.row(vec![
                s.label(),
                p.ops.add.to_string(),
                p.ops.mul.to_string(),
                p.ops.fma.to_string(),
                p.n_instr.to_string(),
                p.n_tmp.to_string(),
                p.max_live_tmps.to_string(),
                format!("{:.2}", p.coeff_growth()),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_reports_verified_yes() {
        let mut report = Report::new("test-verify", "t");
        assert!(verification_section(&mut report));
    }
}
