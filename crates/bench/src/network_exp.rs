//! Whole-network estimation: per-layer tuned times summed over the
//! reference networks — the end-to-end view the paper motivates in its
//! introduction ("speeding [3×3 layers] up would have a great impact on
//! alleviating the inference time") but reports only per-convolution.

use wino_gpu::DeviceProfile;
use wino_graph::{alexnet_convs, inception_v1_convs, nin_convs, NamedConv};
use wino_tensor::ConvDesc;
use wino_tuner::{evaluate_untuned, reduced_space, tune_with_space};

/// Per-layer estimate within a network summary.
#[derive(Clone, Debug)]
pub struct LayerEstimate {
    /// Layer name (e.g. `"3a/3x3"`).
    pub layer: String,
    /// The convolution.
    pub desc: ConvDesc,
    /// Best baseline (direct / im2col) time, ms.
    pub baseline_ms: f64,
    /// Best overall (Winograd allowed) time, ms.
    pub tuned_ms: f64,
}

/// One network's end-to-end convolution summary.
#[derive(Clone, Debug)]
pub struct NetworkEstimate {
    /// Network name.
    pub network: &'static str,
    /// Per-layer results.
    pub layers: Vec<LayerEstimate>,
}

impl NetworkEstimate {
    /// Summed baseline time.
    pub fn baseline_ms(&self) -> f64 {
        self.layers.iter().map(|l| l.baseline_ms).sum()
    }

    /// Summed tuned time.
    pub fn tuned_ms(&self) -> f64 {
        self.layers.iter().map(|l| l.tuned_ms).sum()
    }

    /// End-to-end speedup from enabling the generated Winograd
    /// kernels.
    pub fn speedup(&self) -> f64 {
        self.baseline_ms() / self.tuned_ms()
    }
}

fn estimate_network(
    network: &'static str,
    layers: &[NamedConv],
    device: &DeviceProfile,
    batch: usize,
    threads: usize,
) -> NetworkEstimate {
    let layers = layers
        .iter()
        .filter_map(|named| {
            let mut desc = named.desc;
            desc.batch = batch;
            let space = reduced_space(&desc);
            let base_space: Vec<_> = space
                .iter()
                .filter(|p| p.variant.winograd_m().is_none())
                .cloned()
                .collect();
            let baseline = tune_with_space(&desc, device, threads, base_space)
                .map(|r| r.best.time_ms)
                .or_else(|_| evaluate_untuned(&desc, device).map(|e| e.time_ms))
                .ok()?;
            let tuned = tune_with_space(&desc, device, threads, space)
                .map(|r| r.best.time_ms)
                .ok()?;
            Some(LayerEstimate {
                layer: named.layer.to_string(),
                desc,
                baseline_ms: baseline,
                tuned_ms: tuned,
            })
        })
        .collect();
    NetworkEstimate { network, layers }
}

/// Estimates all three reference networks on a device.
pub fn estimate_networks(
    device: &DeviceProfile,
    batch: usize,
    threads: usize,
) -> Vec<NetworkEstimate> {
    vec![
        estimate_network("alexnet", &alexnet_convs(), device, batch, threads),
        estimate_network("nin", &nin_convs(), device, batch, threads),
        estimate_network(
            "inception-v1",
            &inception_v1_convs(),
            device,
            batch,
            threads,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_gpu::gtx_1080_ti;

    #[test]
    fn networks_speed_up_end_to_end() {
        let device = gtx_1080_ti();
        for net in estimate_networks(&device, 1, 8) {
            assert!(
                !net.layers.is_empty(),
                "{}: no layers estimated",
                net.network
            );
            assert!(
                net.speedup() >= 1.0,
                "{}: enabling Winograd slowed the network ({:.2}x)",
                net.network,
                net.speedup()
            );
        }
    }

    #[test]
    fn winograd_unfriendly_layers_keep_baseline() {
        let device = gtx_1080_ti();
        let nets = estimate_networks(&device, 1, 8);
        let alex = nets
            .iter()
            .find(|n| n.network == "alexnet")
            .expect("present");
        // conv1 is 11×11 stride 4: no Winograd variant exists, so
        // tuned == baseline for that layer.
        let conv1 = alex
            .layers
            .iter()
            .find(|l| l.layer == "conv1")
            .expect("present");
        assert!((conv1.tuned_ms - conv1.baseline_ms).abs() < 1e-9);
        // But the 3×3-heavy tail must improve.
        let conv3 = alex
            .layers
            .iter()
            .find(|l| l.layer == "conv3")
            .expect("present");
        assert!(conv3.tuned_ms < conv3.baseline_ms);
    }
}
