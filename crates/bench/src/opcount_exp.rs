//! Experiment: Figure 5 — arithmetic-operation counts of the Winograd
//! transformations before and after symbolic optimization, for
//! r ∈ {3, 5, 7} and m ∈ [2, 10].

use wino_symbolic::{OpCount, RecipeOptions};
use wino_transform::{elementwise_ops, BaselineOps, TransformRecipes, WinogradSpec};

/// Op counts for one transform stage in the three forms Figure 5
/// distinguishes.
#[derive(Clone, Copy, Debug)]
pub struct StageOps {
    /// Dense matrix-multiplication baseline (the paper's baseline
    /// bars: every entry multiplied, zeros and ones included).
    pub baseline: OpCount,
    /// Trivially sparsified implementation: ×0/×1 eliminated (step 1
    /// of the pipeline) but no factorization, CSE or FMA.
    pub sparse: OpCount,
    /// Fully optimized recipe counts (steps 1–4 + FMA).
    pub optimized: OpCount,
}

impl StageOps {
    /// The paper's *reduction ratio* line: savings of the symbolic
    /// optimization steps (factorization, CSE, FMA fusing) over the
    /// trivially sparsified code. Measuring against the dense baseline
    /// instead would make tiny transforms look best (their matrices
    /// are mostly zeros), contradicting the paper's α = 8 peak.
    pub fn reduction(&self) -> f64 {
        let base = self.sparse.total() as f64;
        if base == 0.0 {
            return 0.0;
        }
        1.0 - self.optimized.total() as f64 / base
    }

    /// Reduction against the dense matrix-multiplication baseline
    /// (what the bar heights of Figure 5 show).
    pub fn reduction_vs_dense(&self) -> f64 {
        let base = self.baseline.total_unfused() as f64;
        if base == 0.0 {
            return 0.0;
        }
        1.0 - self.optimized.total() as f64 / base
    }
}

/// One F(m, r) entry of Figure 5.
#[derive(Clone, Debug)]
pub struct Figure5Row {
    /// Output tile size m.
    pub m: usize,
    /// Filter size r.
    pub r: usize,
    /// Filter transform (Figure 5a).
    pub filter: StageOps,
    /// Input transform (Figure 5b).
    pub input: StageOps,
    /// Output transform (Figure 5c).
    pub output: StageOps,
}

impl Figure5Row {
    /// α = m + r − 1.
    pub fn alpha(&self) -> usize {
        self.m + self.r - 1
    }

    /// Transform-only reduction ratio (Figure 5d, bars).
    pub fn transforms_reduction(&self) -> f64 {
        let base =
            self.filter.sparse.total() + self.input.sparse.total() + self.output.sparse.total();
        let opt = self.filter.optimized.total()
            + self.input.optimized.total()
            + self.output.optimized.total();
        1.0 - opt as f64 / base as f64
    }

    /// Whole-Winograd single-tile reduction (Figure 5d, blue line):
    /// transforms plus the α² element-wise multiplies that both
    /// versions share.
    pub fn whole_winograd_reduction(&self) -> f64 {
        let spec = WinogradSpec::new(self.m, self.r).expect("valid row spec");
        let ew = elementwise_ops(spec).total_unfused();
        let base = self.filter.sparse.total()
            + self.input.sparse.total()
            + self.output.sparse.total()
            + ew;
        let opt = self.filter.optimized.total()
            + self.input.optimized.total()
            + self.output.optimized.total()
            + ew;
        1.0 - opt as f64 / base as f64
    }
}

/// The (m, r) sweep of Figure 5, restricted to configurations with a
/// Table-3 point set (α ≤ 16).
pub fn figure5_rows() -> Vec<Figure5Row> {
    let mut rows = Vec::new();
    for r in [3usize, 5, 7] {
        for m in 2..=10usize {
            let alpha = m + r - 1;
            if !(4..=16).contains(&alpha) {
                continue;
            }
            let spec = WinogradSpec::new(m, r).expect("valid spec");
            let recipes = TransformRecipes::generate(spec, RecipeOptions::optimized())
                .expect("supported configuration");
            let minimal = TransformRecipes::generate(spec, RecipeOptions::minimal())
                .expect("supported configuration");
            let base = BaselineOps::for_spec(spec);
            rows.push(Figure5Row {
                m,
                r,
                filter: StageOps {
                    baseline: base.filter,
                    sparse: minimal.filter_transform_ops_2d(),
                    optimized: recipes.filter_transform_ops_2d(),
                },
                input: StageOps {
                    baseline: base.input,
                    sparse: minimal.input_transform_ops_2d(),
                    optimized: recipes.input_transform_ops_2d(),
                },
                output: StageOps {
                    baseline: base.output,
                    sparse: minimal.output_transform_ops_2d(),
                    optimized: recipes.output_transform_ops_2d(),
                },
            });
        }
    }
    rows
}

/// The maximum reduction over a stage selector — the annotated peak of
/// each Figure 5 panel.
pub fn peak_reduction(
    rows: &[Figure5Row],
    r: usize,
    stage: impl Fn(&Figure5Row) -> f64,
) -> (usize, f64) {
    rows.iter()
        .filter(|row| row.r == r)
        .map(|row| (row.alpha(), stage(row)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("rows exist for r")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_paper_grid() {
        let rows = figure5_rows();
        // r=3: m 2..10 (9 rows); r=5: m 2..10 (α ≤ 14, 9 rows);
        // r=7: α ≤ 16 → m ≤ 10 (9 rows).
        assert_eq!(rows.iter().filter(|r| r.r == 3).count(), 9);
        assert_eq!(rows.iter().filter(|r| r.r == 5).count(), 9);
        assert_eq!(rows.iter().filter(|r| r.r == 7).count(), 9);
    }

    #[test]
    fn reductions_are_substantial_and_bounded() {
        for row in figure5_rows() {
            for (name, stage) in [
                ("filter", &row.filter),
                ("input", &row.input),
                ("output", &row.output),
            ] {
                let red = stage.reduction();
                assert!(
                    (0.0..1.0).contains(&red),
                    "F({},{}) {name}: reduction {red}",
                    row.m,
                    row.r
                );
            }
        }
    }

    #[test]
    fn peak_reduction_reaches_paper_magnitude() {
        // The paper reports reductions of up to 62%; our pipeline must
        // reach at least 55% on its best stage and stay below 85%
        // (beyond that we would be suspiciously better than the
        // original).
        let rows = figure5_rows();
        let mut best = 0.0f64;
        for r in [3, 5, 7] {
            for stage_fn in [
                |row: &Figure5Row| row.filter.reduction(),
                |row: &Figure5Row| row.input.reduction(),
                |row: &Figure5Row| row.output.reduction(),
            ] {
                let (_, red) = peak_reduction(&rows, r, stage_fn);
                best = best.max(red);
            }
        }
        assert!(best > 0.40, "peak stage reduction only {best}");
        assert!(best < 0.85, "peak stage reduction implausibly high: {best}");
    }

    #[test]
    fn whole_winograd_reduction_is_diluted() {
        // Figure 5d: the whole-algorithm reduction (≤ ~40% in the
        // paper) is always below the transform-only reduction because
        // the element-wise stage is shared.
        for row in figure5_rows() {
            assert!(row.whole_winograd_reduction() < row.transforms_reduction());
            assert!(row.whole_winograd_reduction() > 0.0);
        }
    }

    #[test]
    fn alpha8_is_the_sweet_spot_for_3x3_transforms() {
        // The paper's headline observation: the highest transform
        // reduction for 3×3 filters lands at α = 8.
        let rows = figure5_rows();
        let (alpha, _) = peak_reduction(&rows, 3, |row| row.transforms_reduction());
        assert!(
            (7..=9).contains(&alpha),
            "3x3 transform reduction peaks at alpha = {alpha}, expected near 8"
        );
    }
}
