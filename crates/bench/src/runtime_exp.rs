//! Experiments: Figure 6 (optimized vs non-optimized kernel runtimes)
//! and Figures 7–9 (comparisons against the simulated vendor
//! libraries on the three modelled platforms).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use wino_codegen::{generate_plan, CodegenOptions, PlanVariant, Unroll};
use wino_conv::{conv_winograd_rt, WinogradConfig, WinogradVariant};
use wino_gpu::{estimate_plan_ms, gtx_1080_ti, mali_g71, rx_580, DeviceProfile};
use wino_runtime::{default_threads, Runtime};
use wino_tensor::{ConvDesc, Tensor4};
use wino_tuner::{evaluate_untuned, reduced_space, tune_with_space, TuneReport};
use wino_vendor::{acl, cudnn, miopen, VendorLibrary};

/// One bar pair of Figure 6.
#[derive(Clone, Debug)]
pub struct Figure6Row {
    /// Filter size r.
    pub r: usize,
    /// Output tile size m.
    pub m: usize,
    /// Batch size.
    pub batch: usize,
    /// Runtime with naive matrix-multiplication transforms (ms).
    pub non_optimized_ms: f64,
    /// Runtime with symbolic recipes (ms).
    pub optimized_ms: f64,
}

impl Figure6Row {
    /// Speedup of the optimized kernels.
    pub fn speedup(&self) -> f64 {
        self.non_optimized_ms / self.optimized_ms
    }
}

/// The representative layer of the Figure 6 sweep (a mid-network
/// 14×14×32 → 64 convolution).
pub fn figure6_desc(r: usize, batch: usize) -> ConvDesc {
    ConvDesc::new(r, 1, r / 2, 64, batch, 14, 14, 32)
}

/// Regenerates the Figure 6 sweep on the modelled GTX 1080 Ti:
/// r ∈ {3, 5, 7}, m ∈ [2, 9], B ∈ {1, 5, 20}.
pub fn figure6_rows() -> Vec<Figure6Row> {
    let device = gtx_1080_ti();
    let mut rows = Vec::new();
    for batch in [1usize, 5, 20] {
        for r in [3usize, 5, 7] {
            for m in 2..=9usize {
                if !(4..=16).contains(&(m + r - 1)) {
                    continue;
                }
                let desc = figure6_desc(r, batch);
                let run = |naive: bool| -> Option<f64> {
                    let opts = CodegenOptions {
                        unroll: Unroll::Full,
                        naive_transforms: naive,
                        ..CodegenOptions::default()
                    };
                    let plan =
                        generate_plan(&desc, PlanVariant::WinogradNonFused { m }, &opts).ok()?;
                    estimate_plan_ms(&device, &plan).ok()
                };
                if let (Some(non_optimized_ms), Some(optimized_ms)) = (run(true), run(false)) {
                    rows.push(Figure6Row {
                        r,
                        m,
                        batch,
                        non_optimized_ms,
                        optimized_ms,
                    });
                }
            }
        }
    }
    rows
}

/// Runs the Figure 6 representative layer once per engine on the real
/// CPU pipeline, so a probe-enabled `figure6` run captures a
/// *measured* per-phase breakdown (the subject of Figure 6) instead of
/// only the device model's estimate. The pool uses at least two lanes
/// so the work-stealing runtime's per-worker counters are exercised
/// even on single-CPU hosts. Returns `(non-fused ms, fused ms)`
/// wall-clock times.
pub fn figure6_phase_capture(m: usize) -> (f64, f64) {
    let desc = figure6_desc(3, 1);
    let mut rng = StdRng::seed_from_u64(6);
    let input = Tensor4::<f32>::random(
        desc.batch, desc.in_ch, desc.in_h, desc.in_w, -1.0, 1.0, &mut rng,
    );
    let filters = Tensor4::<f32>::random(
        desc.out_ch,
        desc.in_ch,
        desc.ksz,
        desc.ksz,
        -1.0,
        1.0,
        &mut rng,
    );
    let rt = Runtime::with_threads(default_threads().max(2));
    let run = |variant: WinogradVariant| -> f64 {
        let cfg = WinogradConfig::new(m).with_variant(variant);
        let start = Instant::now();
        conv_winograd_rt(&input, &filters, &desc, &cfg, &rt).expect("figure6 phase capture");
        start.elapsed().as_secs_f64() * 1e3
    };
    (run(WinogradVariant::NonFused), run(WinogradVariant::Fused))
}

/// One convolution's worth of a vendor-comparison figure (7 or 8).
#[derive(Clone, Debug)]
pub struct VendorCompareRow {
    /// The convolution.
    pub desc: ConvDesc,
    /// Vendor library's fastest algorithm (ms).
    pub vendor_fastest_ms: f64,
    /// Vendor library's Winograd algorithm, when supported (ms).
    pub vendor_winograd_ms: Option<f64>,
    /// Our framework without Winograd (best tuned baseline, ms).
    pub boda_no_winograd_ms: f64,
    /// Our framework's tuned Winograd (ms).
    pub boda_winograd_ms: f64,
}

impl VendorCompareRow {
    /// Speedup of our Winograd over the vendor's Winograd (the right
    /// axis of Figures 7/8), when the vendor supports the layer.
    pub fn winograd_speedup(&self) -> Option<f64> {
        self.vendor_winograd_ms.map(|v| v / self.boda_winograd_ms)
    }
}

fn compare_against(
    convs: &[ConvDesc],
    device: &DeviceProfile,
    vendor: &VendorLibrary,
    threads: usize,
) -> Vec<VendorCompareRow> {
    convs
        .iter()
        .filter_map(|desc| {
            let vres = vendor.run(desc, device)?;
            let space = reduced_space(desc);
            let wg_space: Vec<_> = space
                .iter()
                .filter(|p| p.variant.winograd_m().is_some())
                .cloned()
                .collect();
            let base_space: Vec<_> = space
                .iter()
                .filter(|p| p.variant.winograd_m().is_none())
                .cloned()
                .collect();
            let boda_wg: TuneReport = tune_with_space(desc, device, threads, wg_space).ok()?;
            let boda_base: TuneReport = tune_with_space(desc, device, threads, base_space).ok()?;
            Some(VendorCompareRow {
                desc: *desc,
                vendor_fastest_ms: vres.fastest_ms,
                vendor_winograd_ms: vres.winograd_ms,
                boda_no_winograd_ms: boda_base.best.time_ms,
                boda_winograd_ms: boda_wg.best.time_ms,
            })
        })
        .collect()
}

/// Figure 7: the given convolutions against cuDNN-sim on the modelled
/// GTX 1080 Ti.
pub fn figure7_rows(convs: &[ConvDesc], threads: usize) -> Vec<VendorCompareRow> {
    compare_against(convs, &gtx_1080_ti(), &cudnn(), threads)
}

/// Figure 8: against MIOpen-sim on the modelled RX 580.
pub fn figure8_rows(convs: &[ConvDesc], threads: usize) -> Vec<VendorCompareRow> {
    compare_against(convs, &rx_580(), &miopen(), threads)
}

/// One convolution of Figure 9 (Mali G71, autotuning study).
#[derive(Clone, Debug)]
pub struct Figure9Row {
    /// The convolution.
    pub desc: ConvDesc,
    /// ARM Compute Library Winograd (ms), when supported.
    pub acl_winograd_ms: Option<f64>,
    /// Our framework without autotuning (fixed non-fused m=2, §4.3).
    pub no_autotuning_ms: f64,
    /// Our framework with autotuning.
    pub autotuning_ms: f64,
}

impl Figure9Row {
    /// The red speedup line of Figure 9.
    pub fn speedup(&self) -> f64 {
        self.no_autotuning_ms / self.autotuning_ms
    }
}

/// Figure 9: the autotuning on/off study on the modelled Mali G71.
pub fn figure9_rows(convs: &[ConvDesc], threads: usize) -> Vec<Figure9Row> {
    let device = mali_g71();
    let lib = acl();
    convs
        .iter()
        .filter_map(|desc| {
            let untuned = evaluate_untuned(desc, &device).ok()?;
            let tuned = tune_with_space(desc, &device, threads, reduced_space(desc)).ok()?;
            let acl_ms = lib.run(desc, &device).and_then(|r| r.winograd_ms);
            Some(Figure9Row {
                desc: *desc,
                acl_winograd_ms: acl_ms,
                no_autotuning_ms: untuned.time_ms,
                autotuning_ms: tuned.best.time_ms,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::geometric_mean;
    use wino_graph::table4_convs;

    fn sample_convs() -> Vec<ConvDesc> {
        // A small, FLOP-diverse subset of Table 4 keeps test time sane.
        let all = table4_convs();
        vec![all[0], all[2], all[10], all[30]]
    }

    #[test]
    fn figure6_optimized_wins() {
        let rows = figure6_rows();
        assert!(!rows.is_empty());
        let speedups: Vec<f64> = rows.iter().map(Figure6Row::speedup).collect();
        let gm = geometric_mean(&speedups);
        // Paper: up to 1.65× speedup from the optimized transforms.
        assert!(gm > 1.0, "optimized kernels must win on average, gm = {gm}");
        assert!(speedups.iter().cloned().fold(0.0, f64::max) > 1.2);
        // Never a large slowdown.
        assert!(speedups.iter().all(|&s| s > 0.85));
    }

    #[test]
    fn figure7_boda_winograd_competitive() {
        let rows = figure7_rows(&sample_convs(), 8);
        assert_eq!(rows.len(), sample_convs().len());
        // Where cuDNN has a Winograd, our tuned Winograd should win on
        // at least one small convolution (the paper reports up to
        // 8.1×).
        let speedups: Vec<f64> = rows.iter().filter_map(|r| r.winograd_speedup()).collect();
        assert!(!speedups.is_empty());
        assert!(
            speedups.iter().cloned().fold(0.0, f64::max) > 1.0,
            "expected at least one win over cuDNN-sim Winograd: {speedups:?}"
        );
    }

    #[test]
    fn figure7_winograd_beats_no_winograd_on_3x3() {
        let rows = figure7_rows(&sample_convs(), 8);
        for row in rows.iter().filter(|r| r.desc.ksz == 3) {
            assert!(
                row.boda_winograd_ms < row.boda_no_winograd_ms * 1.05,
                "{}: winograd {} vs baseline {}",
                row.desc,
                row.boda_winograd_ms,
                row.boda_no_winograd_ms
            );
        }
    }

    #[test]
    fn figure9_autotuning_always_helps() {
        let rows = figure9_rows(&sample_convs(), 8);
        assert!(!rows.is_empty());
        for row in &rows {
            assert!(
                row.speedup() >= 1.0,
                "{}: speedup {}",
                row.desc,
                row.speedup()
            );
        }
        let gm = geometric_mean(&rows.iter().map(Figure9Row::speedup).collect::<Vec<_>>());
        // Paper: average 1.74× from autotuning on Mali.
        assert!(gm > 1.1, "expected a clear average speedup, gm = {gm}");
    }
}
