//! # wino-bench — the experiment harness
//!
//! One module per evaluation artefact of the paper; each `table*` /
//! `figure*` binary in `src/bin/` prints the corresponding table or
//! figure series, and `benches/` contains Criterion timings of the
//! real CPU engines. See EXPERIMENTS.md at the workspace root for the
//! paper-vs-measured record.

#![warn(missing_docs)]

pub mod accuracy_exp;
pub mod network_exp;
pub mod opcount_exp;
pub mod report;
pub mod runtime_exp;
pub mod verification;

pub use accuracy_exp::{figure4_rows, spec_for_alpha, table3_rows, Figure4Row, Table3Row};
pub use network_exp::{estimate_networks, LayerEstimate, NetworkEstimate};
pub use opcount_exp::{figure5_rows, peak_reduction, Figure5Row, StageOps};
pub use report::{env_threads, fmt_sci, geometric_mean, Report, TablePrinter};
pub use runtime_exp::{
    figure6_desc, figure6_phase_capture, figure6_rows, figure7_rows, figure8_rows, figure9_rows,
    Figure6Row, Figure9Row, VendorCompareRow,
};
pub use verification::{append_stamp, verification_section};
