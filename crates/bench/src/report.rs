//! Table formatting, summary statistics, and the shared [`Report`]
//! sink for the experiment binaries.
//!
//! Every `table*`/`figure*` binary used to hand-roll its own env
//! parsing and output plumbing; they now funnel through [`Report`],
//! which also attaches the wino-probe artifacts (`WINO_TRACE=summary`
//! appends the phase summary table, `WINO_TRACE=json[:path]` writes a
//! chrome://tracing file under `results/`).

use std::fmt::Write as _;

/// Geometric mean — the paper's aggregate for speedups across
/// convolutions ("All the average speedups reported across the
/// convolutions are computed using the geometric mean", §4.3).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Scientific-notation rendering matching the paper's FLOPs column
/// (`1.16e+08`).
pub fn fmt_sci(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let exp = v.abs().log10().floor() as i32;
    let mant = v / 10f64.powi(exp);
    if (mant - mant.round()).abs() < 5e-3 {
        format!("{:.0}e{:+03}", mant.round(), exp)
    } else {
        format!("{mant:.2}e{exp:+03}")
    }
}

/// A simple fixed-width column table printer.
pub struct TablePrinter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// Creates a printer with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TablePrinter {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Tuning-thread count for the experiment binaries: `WINO_THREADS`
/// when set to a positive integer, else `default`. Malformed values
/// warn through the probe diagnostics channel instead of being
/// silently ignored.
pub fn env_threads(default: usize) -> usize {
    match std::env::var("WINO_THREADS") {
        Err(_) => default,
        Ok(value) => match value.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                wino_probe::diag(format!(
                    "invalid WINO_THREADS={value:?} (expected a positive integer); \
                     using {default} tuning workers"
                ));
                default
            }
        },
    }
}

/// Output sink shared by the experiment binaries: accumulates the
/// experiment's text, then [`Report::finish`] prints it and attaches
/// whatever probe artifact `WINO_TRACE` asked for.
pub struct Report {
    artifact: &'static str,
    body: String,
}

impl Report {
    /// Starts the report for the binary named `artifact` (the default
    /// trace file is `results/<artifact>.trace.json`), initializing
    /// the probe layer from `WINO_TRACE` and printing `title`.
    pub fn new(artifact: &'static str, title: &str) -> Self {
        wino_probe::init_from_env();
        Report {
            artifact,
            body: format!("{title}\n\n"),
        }
    }

    /// Appends one line.
    pub fn line(&mut self, text: impl AsRef<str>) {
        let _ = writeln!(self.body, "{}", text.as_ref());
    }

    /// Appends an empty line.
    pub fn blank(&mut self) {
        self.body.push('\n');
    }

    /// Appends a rendered table.
    pub fn table(&mut self, table: &TablePrinter) {
        self.body.push_str(&table.render());
    }

    /// Prints the accumulated report, then the probe artifact:
    /// summary mode appends the per-span statistics table; json mode
    /// writes the chrome://tracing file (path from `WINO_TRACE=
    /// json:path`, default `results/<artifact>.trace.json`).
    pub fn finish(self) {
        print!("{}", self.body);
        match wino_probe::mode() {
            wino_probe::Mode::Off => {}
            wino_probe::Mode::Summary => {
                let data = wino_probe::collect();
                println!("\n== wino-probe phase summary ==");
                print!("{}", data.summary().render());
            }
            wino_probe::Mode::Json => {
                let data = wino_probe::collect();
                let path = wino_probe::trace_path()
                    .unwrap_or_else(|| format!("results/{}.trace.json", self.artifact));
                if let Some(dir) = std::path::Path::new(&path).parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                match std::fs::write(&path, data.chrome_trace().to_json()) {
                    Ok(()) => println!("\n[wino-probe] chrome trace written to {path}"),
                    Err(e) => wino_probe::diag(format!("failed to write trace {path}: {e}")),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_values() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_nan());
    }

    #[test]
    fn sci_formatting() {
        assert_eq!(fmt_sci(1.16e8), "1.16e+08");
        assert_eq!(fmt_sci(1.0e8), "1e+08");
        assert_eq!(fmt_sci(4.48e9), "4.48e+09");
        assert_eq!(fmt_sci(0.0), "0");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TablePrinter::new(&["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert_eq!(
            lines[1].chars().filter(|&c| c == '-').count(),
            lines[1].len()
        );
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = TablePrinter::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn report_accumulates() {
        let mut r = Report::new("test", "Title");
        r.line("one");
        r.blank();
        let mut t = TablePrinter::new(&["h"]);
        t.row(vec!["x".into()]);
        r.table(&t);
        assert!(r.body.starts_with("Title\n\n"));
        assert!(r.body.contains("one\n\n"));
        assert!(r.body.contains('h'));
    }

    #[test]
    fn env_threads_default_without_var() {
        // WINO_THREADS is not set in the test environment.
        if std::env::var("WINO_THREADS").is_err() {
            assert_eq!(env_threads(8), 8);
        }
    }
}
