//! Table formatting and summary statistics for the experiment
//! binaries.

/// Geometric mean — the paper's aggregate for speedups across
/// convolutions ("All the average speedups reported across the
/// convolutions are computed using the geometric mean", §4.3).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Scientific-notation rendering matching the paper's FLOPs column
/// (`1.16e+08`).
pub fn fmt_sci(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let exp = v.abs().log10().floor() as i32;
    let mant = v / 10f64.powi(exp);
    if (mant - mant.round()).abs() < 5e-3 {
        format!("{:.0}e{:+03}", mant.round(), exp)
    } else {
        format!("{mant:.2}e{exp:+03}")
    }
}

/// A simple fixed-width column table printer.
pub struct TablePrinter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// Creates a printer with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TablePrinter {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_values() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_nan());
    }

    #[test]
    fn sci_formatting() {
        assert_eq!(fmt_sci(1.16e8), "1.16e+08");
        assert_eq!(fmt_sci(1.0e8), "1e+08");
        assert_eq!(fmt_sci(4.48e9), "4.48e+09");
        assert_eq!(fmt_sci(0.0), "0");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TablePrinter::new(&["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert_eq!(
            lines[1].chars().filter(|&c| c == '-').count(),
            lines[1].len()
        );
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = TablePrinter::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
