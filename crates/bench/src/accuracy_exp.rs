//! Experiments: Table 3 (selected points + relative error) and
//! Figure 4 (L1-error distribution and growth rate per α).

use wino_conv::measure_conv_error;
use wino_transform::{table3_paper_error, table3_points, ErrorStats, WinogradSpec};

/// One row of Table 3.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Internal tile size α.
    pub alpha: usize,
    /// The selected points, rendered like the paper (`BP ∪ (…)`).
    pub points: String,
    /// Measured median relative error (FP32 Winograd vs FP64 direct).
    pub measured: f64,
    /// The paper's reported relative error.
    pub paper: f64,
}

/// The α range of Table 3.
pub const ALPHA_RANGE: std::ops::RangeInclusive<usize> = 4..=16;

/// Spec used for a given α in the accuracy experiments: 3-tap filter,
/// m = α − 2 (the accuracy of a point set is a property of α, not of
/// the m/r split; 3×3 is the dominant layer shape).
pub fn spec_for_alpha(alpha: usize) -> WinogradSpec {
    WinogradSpec::new(alpha - 2, 3).expect("alpha >= 4")
}

/// Regenerates Table 3 with `trials` random convolutions per row.
///
/// # Panics
/// Never for α in [`ALPHA_RANGE`] (point sets exist for all).
pub fn table3_rows(trials: usize, seed: u64) -> Vec<Table3Row> {
    ALPHA_RANGE
        .map(|alpha| {
            let points = table3_points(alpha).expect("supported alpha");
            let stats = measure_conv_error(spec_for_alpha(alpha), &points, trials, seed)
                .expect("accuracy probe runs");
            let rendered = if alpha == 4 {
                "BP = (0, 1, -1)".to_string()
            } else {
                let extra: Vec<String> = points[3..].iter().map(|p| p.to_string()).collect();
                format!("BP u ({})", extra.join(", "))
            };
            Table3Row {
                alpha,
                points: rendered,
                measured: stats.median,
                paper: table3_paper_error(alpha).expect("paper value exists"),
            }
        })
        .collect()
}

/// One row of Figure 4: the error distribution for one α plus the
/// growth rate relative to the previous α.
#[derive(Clone, Debug)]
pub struct Figure4Row {
    /// Internal tile size α.
    pub alpha: usize,
    /// Error distribution statistics.
    pub stats: ErrorStats,
    /// `median(α) / median(α−1)` — the red "error increase rate" line
    /// of Figure 4 (1.0 for the first α).
    pub growth: f64,
}

/// Regenerates the Figure 4 data.
pub fn figure4_rows(trials: usize, seed: u64) -> Vec<Figure4Row> {
    let mut rows: Vec<Figure4Row> = Vec::new();
    for alpha in ALPHA_RANGE {
        let points = table3_points(alpha).expect("supported alpha");
        let stats = measure_conv_error(spec_for_alpha(alpha), &points, trials, seed)
            .expect("accuracy probe runs");
        let growth = match rows.last() {
            Some(prev) if prev.stats.median > 0.0 => stats.median / prev.stats.median,
            _ => 1.0,
        };
        rows.push(Figure4Row {
            alpha,
            stats,
            growth,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shape_matches_paper() {
        let rows = table3_rows(15, 42);
        assert_eq!(rows.len(), 13);
        // Monotone-ish growth: last α must be orders of magnitude worse
        // than the first.
        assert!(rows.last().unwrap().measured > 100.0 * rows[0].measured);
        // Each measured error within two orders of magnitude of the
        // paper's value (different RNG, probe tensor and trial count).
        for row in &rows {
            let ratio = row.measured / row.paper;
            assert!(
                (0.01..100.0).contains(&ratio),
                "alpha {}: measured {} vs paper {}",
                row.alpha,
                row.measured,
                row.paper
            );
        }
    }

    #[test]
    fn table3_point_rendering() {
        let rows = table3_rows(2, 1);
        assert_eq!(rows[0].points, "BP = (0, 1, -1)");
        assert!(rows[1].points.starts_with("BP u (2"));
    }

    #[test]
    fn figure4_growth_is_positive_and_bounded() {
        let rows = figure4_rows(15, 7);
        assert_eq!(rows[0].growth, 1.0);
        for row in &rows[1..] {
            assert!(row.growth > 0.0);
            // The paper observes growth rates between ~1 and ~7 —
            // never an explosion beyond an order of magnitude per step.
            assert!(
                row.growth < 50.0,
                "alpha {}: growth {}",
                row.alpha,
                row.growth
            );
        }
        // Quartiles are ordered.
        for row in &rows {
            assert!(row.stats.q1 <= row.stats.median);
            assert!(row.stats.median <= row.stats.q3);
        }
    }
}
