//! Regenerates Figure 9: auto-tuning on/off plus the ARM Compute
//! Library stand-in on the modelled Mali G71.

use wino_bench::{figure9_rows, fmt_sci, geometric_mean, Figure9Row, TablePrinter};
use wino_graph::table4_convs;

fn main() {
    let threads: usize = std::env::var("WINO_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    println!("Figure 9 — Autotuning on/off + ACL-sim on the Mali G71 model\n");
    let rows = figure9_rows(&table4_convs(), threads);
    let mut t = TablePrinter::new(&[
        "FLOPs",
        "ACL WG",
        "Boda no-autotuning",
        "Boda autotuning",
        "speedup",
    ]);
    for row in &rows {
        t.row(vec![
            fmt_sci(row.desc.flops() as f64),
            row.acl_winograd_ms
                .map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            format!("{:.3}", row.no_autotuning_ms),
            format!("{:.3}", row.autotuning_ms),
            format!("{:.2}x", row.speedup()),
        ]);
    }
    print!("{}", t.render());
    let speedups: Vec<f64> = rows.iter().map(Figure9Row::speedup).collect();
    let beats_acl = rows
        .iter()
        .filter(|r| r.acl_winograd_ms.is_some_and(|a| r.autotuning_ms < a))
        .count();
    println!(
        "\n(all runtimes in ms) geometric-mean autotuning speedup {:.2}x (paper: 1.74x),\n\
         max {:.2}x; tuned kernels beat ACL-sim Winograd on {beats_acl} convolutions\n\
         (ACL's FP16 GEMM keeps it ahead elsewhere, as in the paper).",
        geometric_mean(&speedups),
        speedups.iter().cloned().fold(0.0, f64::max),
    );
}
