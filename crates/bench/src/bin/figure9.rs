//! Regenerates Figure 9: auto-tuning on/off plus the ARM Compute
//! Library stand-in on the modelled Mali G71.
//!
//! `WINO_THREADS` sets tuning parallelism (default 8); `WINO_TRACE`
//! attaches per-candidate tuner spans to the probe artifact.

use wino_bench::{
    env_threads, figure9_rows, fmt_sci, geometric_mean, Figure9Row, Report, TablePrinter,
};
use wino_graph::table4_convs;

fn main() {
    let mut report = Report::new(
        "figure9",
        "Figure 9 — Autotuning on/off + ACL-sim on the Mali G71 model",
    );
    let threads = env_threads(8);
    let rows = figure9_rows(&table4_convs(), threads);
    let mut t = TablePrinter::new(&[
        "FLOPs",
        "ACL WG",
        "Boda no-autotuning",
        "Boda autotuning",
        "speedup",
    ]);
    for row in &rows {
        t.row(vec![
            fmt_sci(row.desc.flops() as f64),
            row.acl_winograd_ms
                .map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            format!("{:.3}", row.no_autotuning_ms),
            format!("{:.3}", row.autotuning_ms),
            format!("{:.2}x", row.speedup()),
        ]);
    }
    report.table(&t);
    let speedups: Vec<f64> = rows.iter().map(Figure9Row::speedup).collect();
    let beats_acl = rows
        .iter()
        .filter(|r| r.acl_winograd_ms.is_some_and(|a| r.autotuning_ms < a))
        .count();
    report.line(format!(
        "\n(all runtimes in ms) geometric-mean autotuning speedup {:.2}x (paper: 1.74x),\n\
         max {:.2}x; tuned kernels beat ACL-sim Winograd on {beats_acl} convolutions\n\
         (ACL's FP16 GEMM keeps it ahead elsewhere, as in the paper).",
        geometric_mean(&speedups),
        speedups.iter().cloned().fold(0.0, f64::max),
    ));
    report.finish();
}
