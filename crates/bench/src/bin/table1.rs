//! Regenerates Table 1: the tuning parameter space.

use wino_bench::TablePrinter;
use wino_tensor::ConvDesc;
use wino_tuner::{search_space, MNB_VALUES, MNT_VALUES};

fn main() {
    println!("Table 1 — Tuning parameters for Winograd convolutions\n");
    let mut t = TablePrinter::new(&["Tuning Parameter", "Purpose", "Values"]);
    t.row(vec![
        "WV".into(),
        "Winograd variant (fused / non-fused)".into(),
        "[0, 1]".into(),
    ]);
    t.row(vec![
        "LU".into(),
        "Loop unrolling factor".into(),
        "[1, 2, 4, 6, inf]".into(),
    ]);
    t.row(vec![
        "MNt".into(),
        "SGEMM register blocking size".into(),
        format!("{MNT_VALUES:?} (exponential of two)"),
    ]);
    t.row(vec![
        "MNb".into(),
        "SGEMM thread blocking size".into(),
        format!("{MNB_VALUES:?} (exponential of two)"),
    ]);
    t.row(vec![
        "m".into(),
        "Winograd output tile size".into(),
        "2 <= m <= 10".into(),
    ]);
    print!("{}", t.render());

    let sample = ConvDesc::new(3, 1, 1, 64, 1, 14, 14, 32);
    println!(
        "\nFull brute-force space for a 3x3 stride-1 convolution: {} points",
        search_space(&sample).len()
    );
}
