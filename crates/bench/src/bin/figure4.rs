//! Regenerates Figure 4: L1-norm error distribution (box-plot
//! statistics) and the error increase rate per internal tile size α.
//!
//! `WINO_TRIALS` overrides the trial count (default 2000).

use wino_bench::{figure4_rows, fmt_sci, Report, TablePrinter};

fn main() {
    let trials: usize = std::env::var("WINO_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000);
    let mut report = Report::new(
        "figure4",
        &format!("Figure 4 — L1-norm error analysis ({trials} trials per alpha)"),
    );
    let mut t = TablePrinter::new(&["alpha", "min", "q1", "median", "q3", "max", "increase rate"]);
    for row in figure4_rows(trials, 0xF16) {
        t.row(vec![
            row.alpha.to_string(),
            fmt_sci(row.stats.min),
            fmt_sci(row.stats.q1),
            fmt_sci(row.stats.median),
            fmt_sci(row.stats.q3),
            fmt_sci(row.stats.max),
            format!("{:.2}", row.growth),
        ]);
    }
    report.table(&t);
    report.line(
        "\nPaper's observation to check: error grows with every added point but NOT\n\
         exponentially; even alpha values grow slower (alpha = 8 lowest rate region).",
    );
    report.finish();
}
