//! Regenerates Figure 7: the 31 Table-4 convolutions against the
//! cuDNN stand-in on the modelled GTX 1080 Ti.
//!
//! `WINO_THREADS` sets tuning parallelism (default 8); `WINO_TRACE`
//! attaches per-candidate tuner spans to the probe artifact.

use wino_bench::{env_threads, figure7_rows, fmt_sci, geometric_mean, Report, TablePrinter};
use wino_graph::table4_convs;

fn main() {
    let mut report = Report::new(
        "figure7",
        "Figure 7 — vs cuDNN-sim on the GTX 1080 Ti model",
    );
    let threads = env_threads(8);
    let rows = figure7_rows(&table4_convs(), threads);
    let mut t = TablePrinter::new(&[
        "FLOPs",
        "cuDNN fastest",
        "Boda no-WG",
        "cuDNN WG",
        "Boda WG",
        "Boda/cuDNN WG speedup",
    ]);
    for row in &rows {
        t.row(vec![
            fmt_sci(row.desc.flops() as f64),
            format!("{:.4}", row.vendor_fastest_ms),
            format!("{:.4}", row.boda_no_winograd_ms),
            row.vendor_winograd_ms
                .map(|v| format!("{v:.4}"))
                .unwrap_or_else(|| "n/a".into()),
            format!("{:.4}", row.boda_winograd_ms),
            row.winograd_speedup()
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    report.table(&t);
    let speedups: Vec<f64> = rows.iter().filter_map(|r| r.winograd_speedup()).collect();
    let wins = speedups.iter().filter(|&&s| s > 1.0).count();
    report.line(format!(
        "\n(all runtimes in ms) geometric-mean speedup over cuDNN-sim Winograd: {:.2}x,\n\
         max {:.2}x, wins on {wins}/{} supported convolutions.\n\
         Expected shape (paper): wins up to 8.1x concentrated on smaller convolutions;\n\
         cuDNN ahead on the largest ones thanks to its GEMM routines. 5x5 layers have\n\
         no cuDNN Winograd at all — our generator covers them.",
        geometric_mean(&speedups),
        speedups.iter().cloned().fold(0.0, f64::max),
        speedups.len(),
    ));
    report.finish();
}
