//! Baseline perf artifact for the CI bench-smoke stage.
//!
//! One fast, deterministic-shaped run that writes
//! `BENCH_baseline.json` — the perf trajectory every later PR is
//! measured against. Three sections:
//!
//! - **zoo layer**: one real model-zoo convolution timed with the
//!   dispatch level pinned to the scalar interpreted path and then to
//!   the compiled-SIMD path, in the same process (same allocator
//!   state, same recipes, same runtime). `speedup` is the headline.
//! - **phases**: wall time and GFLOP/s per Winograd phase (filter /
//!   input transform, batched SGEMM, output transform), attributed by
//!   wino-probe spans and the exact per-recipe FLOP counts.
//! - **serve**: a short closed-loop load on the batching server —
//!   throughput and p50/p90/p99 latency.
//!
//! Numbers from the CI container are smoke-scale (one CPU, short
//! runs): they establish direction and order of magnitude, not
//! steady-state peaks.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use wino_conv::{
    conv_winograd_precomputed_level, winograd_flops, PrecomputedFilters, WinogradConfig,
};
use wino_gemm::{detect_simd, SimdLevel};
use wino_probe::{self as probe, Mode};
use wino_runtime::Runtime;
use wino_serve::{ConvRequest, PlanRegistry, Server, ServerConfig};
use wino_tensor::{ConvDesc, Tensor4};

/// Timed zoo layer: AlexNet conv5 (3×3, 13×13 spatial, 384→256) at
/// batch 1 — the classic Winograd-friendly late layer, small enough
/// for a smoke run.
const ZOO_LAYER: &str = "alexnet/conv5";

/// Phases reported in the per-phase section, in pipeline order.
const PHASES: &[&str] = &[
    "conv.filter_transform",
    "conv.input_transform",
    "conv.batched_sgemm",
    "conv.output_transform",
];

fn zoo_desc() -> ConvDesc {
    wino_graph::zoo::alexnet_convs()
        .into_iter()
        .find(|c| format!("{}/{}", c.network, c.layer) == ZOO_LAYER)
        .expect("zoo layer exists")
        .desc
}

/// Best-of-`n` wall time of the layer under a pinned dispatch level.
fn time_level(
    input: &Tensor4<f32>,
    pre: &PrecomputedFilters,
    desc: &ConvDesc,
    cfg: &WinogradConfig,
    level: SimdLevel,
    n: usize,
) -> Duration {
    let rt = Runtime::global();
    let mut best = Duration::MAX;
    for _ in 0..n {
        let t0 = Instant::now();
        conv_winograd_precomputed_level(input, pre, desc, cfg.variant, &cfg.gemm, rt, level)
            .expect("zoo layer conv");
        best = best.min(t0.elapsed());
    }
    best
}

/// Sums recorded span durations by phase name over one instrumented
/// run and pairs each with its exact FLOP count.
fn measure_phases(
    input: &Tensor4<f32>,
    pre: &PrecomputedFilters,
    desc: &ConvDesc,
    cfg: &WinogradConfig,
    level: SimdLevel,
) -> Vec<(String, f64, f64)> {
    probe::set_mode(Mode::Summary);
    let _ = probe::take_events();
    // Re-transform the filters inside the instrumented window so the
    // conv.filter_transform phase is captured too.
    let pre_fresh = PrecomputedFilters::new(
        &Tensor4::zeros(desc.out_ch, desc.in_ch, desc.ksz, desc.ksz),
        desc,
        Arc::clone(pre.recipes()),
    )
    .expect("filter transform");
    drop(pre_fresh);
    conv_winograd_precomputed_level(
        input,
        pre,
        desc,
        cfg.variant,
        &cfg.gemm,
        Runtime::global(),
        level,
    )
    .expect("instrumented run");
    let events = probe::take_events();
    probe::set_mode(Mode::Off);

    let flops = winograd_flops(desc, pre.recipes()).expect("flop accounting");
    PHASES
        .iter()
        .map(|&phase| {
            let ns: u64 = events
                .iter()
                .filter(|e| e.name == phase)
                .map(|e| e.dur_ns)
                .sum();
            let phase_flops = match phase {
                "conv.filter_transform" => flops.filter_transform,
                "conv.input_transform" => flops.input_transform,
                "conv.batched_sgemm" => flops.multiplication,
                "conv.output_transform" => flops.output_transform,
                _ => unreachable!(),
            };
            let secs = ns as f64 / 1e9;
            let gflops = if secs > 0.0 {
                phase_flops as f64 / secs / 1e9
            } else {
                0.0
            };
            (phase.to_string(), ns as f64 / 1e6, gflops)
        })
        .collect()
}

fn percentile(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)].as_secs_f64() * 1e3
}

struct ServeNumbers {
    requests: usize,
    served: usize,
    throughput_rps: f64,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
}

/// Closed-loop load on one registered layer: 2 submitter threads in
/// lock-step, coalescing enabled.
fn measure_serve() -> ServeNumbers {
    const REQUESTS: usize = 48;
    const CONCURRENCY: usize = 2;
    let registry = PlanRegistry::new();
    let desc = ConvDesc::new(3, 1, 1, 32, 1, 32, 32, 16);
    let mut rng = StdRng::seed_from_u64(0xbeef);
    let weights = Tensor4::random(32, 16, 3, 3, -0.25, 0.25, &mut rng);
    registry
        .register_layer("baseline/conv3x3", desc, weights)
        .expect("layer registers");
    let registry = Arc::new(registry);
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            executors: 1,
            ..ServerConfig::default()
        },
    );
    let input = Tensor4::random(1, 16, 32, 32, -1.0, 1.0, &mut rng);
    let latencies = Mutex::new(Vec::with_capacity(REQUESTS));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..CONCURRENCY {
            let latencies = &latencies;
            let server = &server;
            let input = &input;
            scope.spawn(move || {
                for _ in 0..REQUESTS / CONCURRENCY {
                    let t0 = Instant::now();
                    let req = ConvRequest::new("baseline/conv3x3", input.clone());
                    if server.infer(req).is_ok() {
                        latencies.lock().unwrap().push(t0.elapsed());
                    }
                }
            });
        }
    });
    let wall = start.elapsed();
    server.shutdown();
    let mut latencies = latencies.into_inner().unwrap();
    latencies.sort();
    ServeNumbers {
        requests: REQUESTS,
        served: latencies.len(),
        throughput_rps: latencies.len() as f64 / wall.as_secs_f64().max(1e-9),
        p50_ms: percentile(&latencies, 50.0),
        p90_ms: percentile(&latencies, 90.0),
        p99_ms: percentile(&latencies, 99.0),
    }
}

fn main() {
    let out_path = {
        let mut it = std::env::args().skip(1);
        let mut path = "BENCH_baseline.json".to_string();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--out" => path = it.next().expect("--out requires a path"),
                other => panic!("unknown argument {other:?}"),
            }
        }
        path
    };

    let detected = detect_simd();
    let active = wino_gemm::simd_level();
    let desc = zoo_desc();
    let m = 4usize;
    let cfg = WinogradConfig::new(m);
    let mut rng = StdRng::seed_from_u64(0x5eed);
    let input = Tensor4::random(
        desc.batch, desc.in_ch, desc.in_h, desc.in_w, -1.0, 1.0, &mut rng,
    );
    let filters = Tensor4::random(
        desc.out_ch,
        desc.in_ch,
        desc.ksz,
        desc.ksz,
        -0.5,
        0.5,
        &mut rng,
    );
    let pre = PrecomputedFilters::for_config(&filters, &desc, &cfg).expect("precompute");

    // Warm both paths once, then best-of-3 each.
    time_level(&input, &pre, &desc, &cfg, SimdLevel::Scalar, 1);
    let scalar = time_level(&input, &pre, &desc, &cfg, SimdLevel::Scalar, 3);
    let simd_level = if detected == SimdLevel::Avx2 {
        SimdLevel::Avx2
    } else {
        SimdLevel::Scalar
    };
    time_level(&input, &pre, &desc, &cfg, simd_level, 1);
    let simd = time_level(&input, &pre, &desc, &cfg, simd_level, 3);

    let direct_flops = desc.flops() as f64;
    let scalar_ms = scalar.as_secs_f64() * 1e3;
    let simd_ms = simd.as_secs_f64() * 1e3;
    let speedup = scalar_ms / simd_ms.max(1e-9);
    println!(
        "bench-smoke: {ZOO_LAYER} F({m},3) scalar={scalar_ms:.2}ms simd={simd_ms:.2}ms \
         speedup={speedup:.2} (detected={}, active={})",
        detected.name(),
        active.name()
    );

    let phases = measure_phases(&input, &pre, &desc, &cfg, simd_level);
    for (name, ms, gflops) in &phases {
        println!("bench-smoke: phase {name} {ms:.3}ms {gflops:.2} GFLOP/s");
    }

    let serve = measure_serve();
    println!(
        "bench-smoke: serve served={}/{} throughput={:.1} req/s p50={:.2}ms p90={:.2}ms \
         p99={:.2}ms",
        serve.served,
        serve.requests,
        serve.throughput_rps,
        serve.p50_ms,
        serve.p90_ms,
        serve.p99_ms
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"wino-bench-baseline/v1\",\n");
    let _ = writeln!(
        json,
        "  \"simd\": {{\"detected\": \"{}\", \"active\": \"{}\"}},",
        detected.name(),
        active.name()
    );
    let _ = writeln!(
        json,
        "  \"zoo_layer\": {{\n    \"layer\": \"{ZOO_LAYER}\", \"m\": {m},\n    \
         \"desc\": \"{desc}\",\n    \
         \"scalar_interpreted_ms\": {scalar_ms:.4},\n    \
         \"simd_compiled_ms\": {simd_ms:.4},\n    \
         \"speedup\": {speedup:.4},\n    \
         \"effective_gflops_scalar\": {:.4},\n    \
         \"effective_gflops_simd\": {:.4}\n  }},",
        direct_flops / (scalar_ms / 1e3) / 1e9,
        direct_flops / (simd_ms / 1e3) / 1e9,
    );
    json.push_str("  \"phases\": [\n");
    for (i, (name, ms, gflops)) in phases.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"phase\": \"{name}\", \"ms\": {ms:.4}, \"gflops\": {gflops:.4}}}{}",
            if i + 1 < phases.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"serve\": {{\n    \"layer\": \"baseline/conv3x3\", \"requests\": {}, \
         \"served\": {},\n    \"throughput_rps\": {:.2},\n    \
         \"p50_ms\": {:.4}, \"p90_ms\": {:.4}, \"p99_ms\": {:.4}\n  }}",
        serve.requests,
        serve.served,
        serve.throughput_rps,
        serve.p50_ms,
        serve.p90_ms,
        serve.p99_ms
    );
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write baseline artifact");
    println!("bench-smoke: wrote {out_path}");
}
