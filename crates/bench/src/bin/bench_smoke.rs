//! Perf artifact for the CI bench-smoke + bench-compare stages.
//!
//! One fast, deterministic-shaped run that writes a
//! `wino-bench-baseline/v2` artifact — by default `BENCH_head.json`,
//! which `wino-bench-compare` diffs against the committed
//! `BENCH_baseline.json` to gate the perf trajectory. Three sections:
//!
//! - **zoo layer**: one real model-zoo convolution timed with the
//!   dispatch level pinned to the scalar interpreted path and then to
//!   the compiled-SIMD path, in the same process (same allocator
//!   state, same recipes, same runtime). `speedup` is the headline.
//! - **phases**: wall time and GFLOP/s per Winograd phase, attributed
//!   by wino-probe spans and the exact per-recipe FLOP counts — split
//!   into `cold` (the once-per-model filter transform) and `steady`
//!   (the per-inference input transform / SGEMM / output transform),
//!   so the gate only watches phases that run on every request.
//! - **serve**: a short closed-loop load on the batching server —
//!   throughput plus p50/p90/p99 latency *from the log2 histogram*,
//!   cross-checked in-process against the exact sorted-array
//!   percentiles (they must land in the same bucket, the histogram's
//!   documented error bound). The exact values ride along as
//!   `exact_*_ms` for eyeballing.
//! - **serve_network**: the same closed-loop protocol over
//!   whole-network requests — an Inception module served through the
//!   wave-scheduled graph executor with arena-planned buffers. The
//!   artifact carries the latency percentiles and throughput (gated)
//!   plus the planner's peak arena bytes vs the naive sum of
//!   activations (reported, asserted `peak < naive` in-process).
//!
//! Numbers from the CI container are smoke-scale (one CPU, short
//! runs): they establish direction and order of magnitude, not
//! steady-state peaks.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use wino_conv::{
    conv_winograd_precomputed_level, winograd_flops, PrecomputedFilters, WinogradConfig,
};
use wino_gemm::{detect_simd, SimdLevel};
use wino_probe::{self as probe, hist, HistogramSnapshot, Mode};
use wino_runtime::Runtime;
use wino_serve::{ConvRequest, NetworkRequest, PlanRegistry, Server, ServerConfig};
use wino_tensor::{ConvDesc, Tensor4};

/// Timed zoo layer: AlexNet conv5 (3×3, 13×13 spatial, 384→256) at
/// batch 1 — the classic Winograd-friendly late layer, small enough
/// for a smoke run.
const ZOO_LAYER: &str = "alexnet/conv5";

/// The once-per-model phase: reported under `phases/cold`.
const COLD_PHASES: &[&str] = &["conv.filter_transform"];

/// Per-inference phases: reported under `phases/steady` and gated by
/// `wino-bench-compare`.
const STEADY_PHASES: &[&str] = &[
    "conv.input_transform",
    "conv.batched_sgemm",
    "conv.output_transform",
];

fn zoo_desc() -> ConvDesc {
    wino_graph::zoo::alexnet_convs()
        .into_iter()
        .find(|c| format!("{}/{}", c.network, c.layer) == ZOO_LAYER)
        .expect("zoo layer exists")
        .desc
}

/// Best-of-`n` wall time of the layer under a pinned dispatch level.
fn time_level(
    input: &Tensor4<f32>,
    pre: &PrecomputedFilters,
    desc: &ConvDesc,
    cfg: &WinogradConfig,
    level: SimdLevel,
    n: usize,
) -> Duration {
    let rt = Runtime::global();
    let mut best = Duration::MAX;
    for _ in 0..n {
        let t0 = Instant::now();
        conv_winograd_precomputed_level(input, pre, desc, cfg.variant, &cfg.gemm, rt, level)
            .expect("zoo layer conv");
        best = best.min(t0.elapsed());
    }
    best
}

/// Sums recorded span durations by phase name over one instrumented
/// run and pairs each with its exact FLOP count.
fn measure_phases(
    input: &Tensor4<f32>,
    pre: &PrecomputedFilters,
    desc: &ConvDesc,
    cfg: &WinogradConfig,
    level: SimdLevel,
) -> Vec<(String, f64, f64)> {
    probe::set_mode(Mode::Summary);
    let _ = probe::take_events();
    // Re-transform the filters inside the instrumented window so the
    // conv.filter_transform phase is captured too.
    let pre_fresh = PrecomputedFilters::new(
        &Tensor4::zeros(desc.out_ch, desc.in_ch, desc.ksz, desc.ksz),
        desc,
        Arc::clone(pre.recipes()),
    )
    .expect("filter transform");
    drop(pre_fresh);
    conv_winograd_precomputed_level(
        input,
        pre,
        desc,
        cfg.variant,
        &cfg.gemm,
        Runtime::global(),
        level,
    )
    .expect("instrumented run");
    let events = probe::take_events();
    probe::set_mode(Mode::Off);

    let flops = winograd_flops(desc, pre.recipes()).expect("flop accounting");
    COLD_PHASES
        .iter()
        .chain(STEADY_PHASES)
        .map(|&phase| {
            let ns: u64 = events
                .iter()
                .filter(|e| e.name == phase)
                .map(|e| e.dur_ns)
                .sum();
            let phase_flops = match phase {
                "conv.filter_transform" => flops.filter_transform,
                "conv.input_transform" => flops.input_transform,
                "conv.batched_sgemm" => flops.multiplication,
                "conv.output_transform" => flops.output_transform,
                _ => unreachable!(),
            };
            let secs = ns as f64 / 1e9;
            let gflops = if secs > 0.0 {
                phase_flops as f64 / secs / 1e9
            } else {
                0.0
            };
            (phase.to_string(), ns as f64 / 1e6, gflops)
        })
        .collect()
}

/// Exact nearest-rank percentile: the `⌈p/100·n⌉`-th smallest value —
/// the same rank convention [`HistogramSnapshot::quantile`] estimates,
/// so the two are directly comparable.
fn percentile_ns(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct ServeNumbers {
    requests: usize,
    served: usize,
    throughput_rps: f64,
    /// Histogram-estimated percentiles (what the gate reads).
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    /// Exact sorted-array percentiles (for eyeballing drift).
    exact_p50_ms: f64,
    exact_p90_ms: f64,
    exact_p99_ms: f64,
    max_ms: f64,
}

/// Closed-loop load on one registered layer: 2 submitter threads in
/// lock-step, coalescing enabled. Latencies land in both a sorted
/// array and a [`HistogramSnapshot`]; the reported percentiles come
/// from the histogram and are asserted to sit in the same log2 bucket
/// as the exact rank statistic.
fn measure_serve() -> ServeNumbers {
    const REQUESTS: usize = 48;
    const CONCURRENCY: usize = 2;
    let registry = PlanRegistry::new();
    let desc = ConvDesc::new(3, 1, 1, 32, 1, 32, 32, 16);
    let mut rng = StdRng::seed_from_u64(0xbeef);
    let weights = Tensor4::random(32, 16, 3, 3, -0.25, 0.25, &mut rng);
    registry
        .register_layer("baseline/conv3x3", desc, weights)
        .expect("layer registers");
    let registry = Arc::new(registry);
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            executors: 1,
            ..ServerConfig::default()
        },
    );
    let input = Tensor4::random(1, 16, 32, 32, -1.0, 1.0, &mut rng);
    let latencies = Mutex::new(Vec::with_capacity(REQUESTS));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..CONCURRENCY {
            let latencies = &latencies;
            let server = &server;
            let input = &input;
            scope.spawn(move || {
                for _ in 0..REQUESTS / CONCURRENCY {
                    let t0 = Instant::now();
                    let req = ConvRequest::new("baseline/conv3x3", input.clone());
                    if server.infer(req).is_ok() {
                        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        latencies.lock().unwrap().push(ns);
                    }
                }
            });
        }
    });
    let wall = start.elapsed();
    server.shutdown();
    let sorted = latencies.into_inner().unwrap();
    serve_numbers(REQUESTS, sorted, wall, "serve.e2e.client")
}

/// Builds the report from raw latencies + wall time, cross-checking
/// the histogram estimator against the exact rank statistic: a
/// mismatch means the histogram math regressed, so fail the artifact
/// run loudly rather than emit numbers the gate would trust.
fn serve_numbers(
    requests: usize,
    mut sorted: Vec<u64>,
    wall: Duration,
    hist_name: &'static str,
) -> ServeNumbers {
    sorted.sort_unstable();
    let mut h = HistogramSnapshot::named(hist_name);
    for &ns in &sorted {
        h.observe(ns);
    }
    let ms = |ns: u64| ns as f64 / 1e6;
    let mut est = [0.0f64; 3];
    let mut exact = [0.0f64; 3];
    for (i, q) in [0.5f64, 0.9, 0.99].into_iter().enumerate() {
        let e = h.quantile(q);
        let t = percentile_ns(&sorted, q * 100.0);
        assert_eq!(
            hist::bucket_index(e),
            hist::bucket_index(t),
            "histogram p{} estimate {e}ns not in the same bucket as exact {t}ns",
            q * 100.0,
        );
        est[i] = ms(e);
        exact[i] = ms(t);
    }

    ServeNumbers {
        requests,
        served: sorted.len(),
        throughput_rps: sorted.len() as f64 / wall.as_secs_f64().max(1e-9),
        p50_ms: est[0],
        p90_ms: est[1],
        p99_ms: est[2],
        exact_p50_ms: exact[0],
        exact_p90_ms: exact[1],
        exact_p99_ms: exact[2],
        max_ms: ms(h.max),
    }
}

/// The network served in the `serve_network` section: the branchy
/// Inception module, where the arena planner's reuse actually bites.
const NET: &str = "inception-3a-3b";

/// Same closed-loop protocol as [`measure_serve`], but over
/// whole-network requests through the wave-scheduled graph executor.
/// Also returns the buffer planner's per-image peak arena bytes and
/// the naive sum-of-activations it must undercut.
fn measure_serve_network() -> (ServeNumbers, usize, usize) {
    const REQUESTS: usize = 32;
    const CONCURRENCY: usize = 2;
    let registry = Arc::new(PlanRegistry::new());
    let plan = registry
        .register_zoo_network(NET)
        .expect("zoo network registers");
    let peak = plan.net.peak_arena_bytes(1);
    let naive = plan.net.naive_activation_bytes(1);
    assert!(
        peak < naive,
        "arena planner must beat the naive activation layout ({peak} >= {naive})"
    );
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            max_batch: 2,
            max_wait: Duration::from_millis(1),
            executors: 1,
            ..ServerConfig::default()
        },
    );
    let (c, ih, iw) = plan.input_dims();
    let mut rng = StdRng::seed_from_u64(0x5e7e);
    let input = Tensor4::random(1, c, ih, iw, -1.0, 1.0, &mut rng);
    // Warmup fills the arena pool to its high-water mark, so the timed
    // loop runs allocation-free at graph level.
    server
        .infer_network(NetworkRequest::new(NET, input.clone()))
        .expect("network warmup");
    let latencies = Mutex::new(Vec::with_capacity(REQUESTS));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..CONCURRENCY {
            let latencies = &latencies;
            let server = &server;
            let input = &input;
            scope.spawn(move || {
                for _ in 0..REQUESTS / CONCURRENCY {
                    let t0 = Instant::now();
                    let req = NetworkRequest::new(NET, input.clone());
                    if server.infer_network(req).is_ok() {
                        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        latencies.lock().unwrap().push(ns);
                    }
                }
            });
        }
    });
    let wall = start.elapsed();
    server.shutdown();
    let sorted = latencies.into_inner().unwrap();
    (
        serve_numbers(REQUESTS, sorted, wall, "serve_network.e2e.client"),
        peak,
        naive,
    )
}

fn main() {
    let out_path = {
        let mut it = std::env::args().skip(1);
        let mut path = "BENCH_head.json".to_string();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--out" => path = it.next().expect("--out requires a path"),
                other => panic!("unknown argument {other:?}"),
            }
        }
        path
    };

    let detected = detect_simd();
    let active = wino_gemm::simd_level();
    let desc = zoo_desc();
    let m = 4usize;
    let cfg = WinogradConfig::new(m);
    let mut rng = StdRng::seed_from_u64(0x5eed);
    let input = Tensor4::random(
        desc.batch, desc.in_ch, desc.in_h, desc.in_w, -1.0, 1.0, &mut rng,
    );
    let filters = Tensor4::random(
        desc.out_ch,
        desc.in_ch,
        desc.ksz,
        desc.ksz,
        -0.5,
        0.5,
        &mut rng,
    );
    let pre = PrecomputedFilters::for_config(&filters, &desc, &cfg).expect("precompute");

    // Warm both paths once, then best-of-3 each.
    time_level(&input, &pre, &desc, &cfg, SimdLevel::Scalar, 1);
    let scalar = time_level(&input, &pre, &desc, &cfg, SimdLevel::Scalar, 3);
    let simd_level = if detected == SimdLevel::Avx2 {
        SimdLevel::Avx2
    } else {
        SimdLevel::Scalar
    };
    time_level(&input, &pre, &desc, &cfg, simd_level, 1);
    let simd = time_level(&input, &pre, &desc, &cfg, simd_level, 3);

    let direct_flops = desc.flops() as f64;
    let scalar_ms = scalar.as_secs_f64() * 1e3;
    let simd_ms = simd.as_secs_f64() * 1e3;
    let speedup = scalar_ms / simd_ms.max(1e-9);
    println!(
        "bench-smoke: {ZOO_LAYER} F({m},3) scalar={scalar_ms:.2}ms simd={simd_ms:.2}ms \
         speedup={speedup:.2} (detected={}, active={})",
        detected.name(),
        active.name()
    );

    let phases = measure_phases(&input, &pre, &desc, &cfg, simd_level);
    let (cold, steady): (Vec<_>, Vec<_>) = phases
        .into_iter()
        .partition(|(name, _, _)| COLD_PHASES.contains(&name.as_str()));
    for (kind, list) in [("cold", &cold), ("steady", &steady)] {
        for (name, ms, gflops) in list.iter() {
            println!("bench-smoke: phase {kind:<6} {name} {ms:.3}ms {gflops:.2} GFLOP/s");
        }
    }

    let serve = measure_serve();
    println!(
        "bench-smoke: serve served={}/{} throughput={:.1} req/s p50={:.2}ms p90={:.2}ms \
         p99={:.2}ms (exact p50={:.2}ms p90={:.2}ms p99={:.2}ms max={:.2}ms)",
        serve.served,
        serve.requests,
        serve.throughput_rps,
        serve.p50_ms,
        serve.p90_ms,
        serve.p99_ms,
        serve.exact_p50_ms,
        serve.exact_p90_ms,
        serve.exact_p99_ms,
        serve.max_ms,
    );

    let (net, arena_peak, arena_naive) = measure_serve_network();
    println!(
        "bench-smoke: serve_network {NET} served={}/{} throughput={:.1} req/s p50={:.2}ms \
         p90={:.2}ms p99={:.2}ms arena_peak={}B naive_activations={}B",
        net.served,
        net.requests,
        net.throughput_rps,
        net.p50_ms,
        net.p90_ms,
        net.p99_ms,
        arena_peak,
        arena_naive,
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"wino-bench-baseline/v2\",\n");
    let _ = writeln!(
        json,
        "  \"simd\": {{\"detected\": \"{}\", \"active\": \"{}\"}},",
        detected.name(),
        active.name()
    );
    let _ = writeln!(
        json,
        "  \"zoo_layer\": {{\n    \"layer\": \"{ZOO_LAYER}\", \"m\": {m},\n    \
         \"desc\": \"{desc}\",\n    \
         \"scalar_interpreted_ms\": {scalar_ms:.4},\n    \
         \"simd_compiled_ms\": {simd_ms:.4},\n    \
         \"speedup\": {speedup:.4},\n    \
         \"effective_gflops_scalar\": {:.4},\n    \
         \"effective_gflops_simd\": {:.4}\n  }},",
        direct_flops / (scalar_ms / 1e3) / 1e9,
        direct_flops / (simd_ms / 1e3) / 1e9,
    );
    json.push_str("  \"phases\": {\n");
    for (section, list, last) in [("cold", &cold, false), ("steady", &steady, true)] {
        let _ = writeln!(json, "    \"{section}\": [");
        for (i, (name, ms, gflops)) in list.iter().enumerate() {
            let _ = writeln!(
                json,
                "      {{\"phase\": \"{name}\", \"ms\": {ms:.4}, \"gflops\": {gflops:.4}}}{}",
                if i + 1 < list.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "    ]{}", if last { "" } else { "," });
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"serve\": {{\n    \"layer\": \"baseline/conv3x3\", \"requests\": {}, \
         \"served\": {},\n    \"throughput_rps\": {:.2},\n    \
         \"p50_ms\": {:.4}, \"p90_ms\": {:.4}, \"p99_ms\": {:.4},\n    \
         \"exact_p50_ms\": {:.4}, \"exact_p90_ms\": {:.4}, \"exact_p99_ms\": {:.4},\n    \
         \"max_ms\": {:.4}\n  }},",
        serve.requests,
        serve.served,
        serve.throughput_rps,
        serve.p50_ms,
        serve.p90_ms,
        serve.p99_ms,
        serve.exact_p50_ms,
        serve.exact_p90_ms,
        serve.exact_p99_ms,
        serve.max_ms,
    );
    let _ = writeln!(
        json,
        "  \"serve_network\": {{\n    \"network\": \"{NET}\", \"requests\": {}, \
         \"served\": {},\n    \"throughput_rps\": {:.2},\n    \
         \"p50_ms\": {:.4}, \"p90_ms\": {:.4}, \"p99_ms\": {:.4},\n    \
         \"exact_p50_ms\": {:.4}, \"exact_p90_ms\": {:.4}, \"exact_p99_ms\": {:.4},\n    \
         \"max_ms\": {:.4},\n    \
         \"arena_peak_bytes\": {arena_peak}, \"naive_activation_bytes\": {arena_naive}\n  }}",
        net.requests,
        net.served,
        net.throughput_rps,
        net.p50_ms,
        net.p90_ms,
        net.p99_ms,
        net.exact_p50_ms,
        net.exact_p90_ms,
        net.exact_p99_ms,
        net.max_ms,
    );
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write bench artifact");
    println!("bench-smoke: wrote {out_path}");
}
