//! Regenerates Figure 5: arithmetic-operation counts of the Winograd
//! transformation stages before and after symbolic optimization
//! (r ∈ {3, 5, 7}, m ∈ [2, 10]), plus the overall reduction ratios.

use wino_bench::{
    figure5_rows, peak_reduction, verification_section, Figure5Row, Report, StageOps, TablePrinter,
};

fn stage_table(
    report: &mut Report,
    rows: &[Figure5Row],
    r: usize,
    pick: impl Fn(&Figure5Row) -> &StageOps,
) {
    let mut t = TablePrinter::new(&[
        "F(m,r)",
        "alpha",
        "base add",
        "base mul",
        "opt add",
        "opt mul",
        "opt fma",
        "reduction",
    ]);
    for row in rows.iter().filter(|row| row.r == r) {
        let s = pick(row);
        t.row(vec![
            format!("F({},{})", row.m, row.r),
            row.alpha().to_string(),
            s.baseline.add.to_string(),
            s.baseline.mul.to_string(),
            s.optimized.add.to_string(),
            s.optimized.mul.to_string(),
            s.optimized.fma.to_string(),
            format!("{:.2}", s.reduction()),
        ]);
    }
    report.table(&t);
}

fn main() {
    let mut report = Report::new(
        "figure5",
        "Figure 5 — Transform op counts, symbolic optimization on/off",
    );
    let rows = figure5_rows();

    for (panel, name, pick) in [
        (
            "5a",
            "Filter transform",
            (|row: &Figure5Row| &row.filter) as fn(&Figure5Row) -> &StageOps,
        ),
        ("5b", "Input transform", |row: &Figure5Row| &row.input),
        ("5c", "Output transform", |row: &Figure5Row| &row.output),
    ] {
        for r in [3usize, 5, 7] {
            report.line(format!("\nFigure {panel} — {name}, {r}x{r} conv"));
            stage_table(&mut report, &rows, r, pick);
            let (alpha, red) = peak_reduction(&rows, r, |row| pick(row).reduction());
            report.line(format!(
                "peak reduction: {:.0}% at alpha = {alpha}",
                red * 100.0
            ));
        }
    }

    report.line("\nFigure 5d — Overall reduction ratios (single tile)");
    let mut t = TablePrinter::new(&["F(m,r)", "alpha", "transforms", "whole Winograd"]);
    for row in &rows {
        t.row(vec![
            format!("F({},{})", row.m, row.r),
            row.alpha().to_string(),
            format!("{:.2}", row.transforms_reduction()),
            format!("{:.2}", row.whole_winograd_reduction()),
        ]);
    }
    report.table(&t);
    for r in [3usize, 5, 7] {
        let (alpha, red) = peak_reduction(&rows, r, Figure5Row::transforms_reduction);
        report.line(format!(
            "{r}x{r}: peak transform reduction {:.0}% at alpha = {alpha}",
            red * 100.0
        ));
    }
    // Stamp the artifact: every recipe behind the op counts above is
    // machine-proven equivalent to its transformation matrix.
    verification_section(&mut report);
    report.finish();
}
