//! Fault-injection drill: one process that exercises every guard
//! surface under whatever `WINO_FAULT` is armed, then dumps the probe
//! counters as grep-friendly `counter name=value` lines.
//!
//! `scripts/ci.sh` runs this binary once per fault site and asserts
//! the expected quarantine/demotion counters — proving the guard
//! layer absorbs each fault class end to end, in a real process
//! rather than a unit test.
//!
//! Stages, in order (each site's hooks only fire at that site, so the
//! order only matters for `:n` one-shot specs within a single site):
//!
//! 1. `GuardedConv` default chain (fused head) on a small layer.
//! 2. `GuardedConv` non-fused-head chain (the path a GEMM fault hits).
//! 3. A hardened tuning sweep over the reduced space.
//! 4. A tuning-cache save → load round trip.

use std::path::PathBuf;

use wino_codegen::{PlanVariant, Unroll};
use wino_gpu::gtx_1080_ti;
use wino_guard::{fault, Denylist, Engine, GuardedConv, SandboxBudget};
use wino_probe::{self as probe, Mode};
use wino_tensor::{ConvDesc, Tensor4};
use wino_tuner::{reduced_space, tune_hardened, Evaluation, TuningCache, TuningPoint};

/// Counters the CI fault matrix asserts on; printed even when zero so
/// `grep -x` can distinguish "no fault absorbed" from "not printed".
const DRILL_COUNTERS: &[&str] = &[
    "guard.demote.panic",
    "guard.demote.guardrail",
    "guard.demote.unsupported",
    "guard.served_by_fallback",
    "tuner.quarantine.panic",
    "tuner.quarantine.timeout",
    "tuner.quarantine.nonfinite",
    "tuner.denylist.skipped",
    "tuner.cache.rebuilt",
    "runtime.body_panics",
    "flight.dumps",
];

fn conv_fixture() -> (Tensor4<f32>, Tensor4<f32>, ConvDesc) {
    let desc = ConvDesc::new(3, 1, 1, 2, 1, 8, 8, 3);
    let input = Tensor4::from_fn(1, 3, 8, 8, |n, c, y, x| {
        ((n + 2 * c + 3 * y + 5 * x) % 7) as f32 * 0.25 - 0.5
    });
    let filters = Tensor4::from_fn(2, 3, 3, 3, |k, c, y, x| {
        ((k + c + y + 2 * x) % 5) as f32 * 0.125 - 0.25
    });
    (input, filters, desc)
}

fn drill_guarded_conv() {
    let (input, filters, desc) = conv_fixture();
    let fused_head = GuardedConv::new(4);
    match fused_head.run(&input, &filters, &desc) {
        Ok(out) => println!(
            "drill: fused-head chain served by {} after {} demotions",
            out.served_by,
            out.demotions.len()
        ),
        Err(e) => println!("drill: fused-head chain exhausted: {e}"),
    }

    let nonfused_head = GuardedConv::new(4).with_chain(vec![
        Engine::NonFusedWinograd(4),
        Engine::Im2col,
        Engine::Direct,
    ]);
    match nonfused_head.run(&input, &filters, &desc) {
        Ok(out) => println!(
            "drill: nonfused-head chain served by {} after {} demotions",
            out.served_by,
            out.demotions.len()
        ),
        Err(e) => println!("drill: nonfused-head chain exhausted: {e}"),
    }
}

fn drill_hardened_sweep() {
    let desc = ConvDesc::new(3, 1, 1, 32, 1, 14, 14, 16);
    let device = gtx_1080_ti();
    let denylist = Denylist::new();
    match tune_hardened(
        &desc,
        &device,
        reduced_space(&desc),
        &SandboxBudget::default(),
        &denylist,
        None,
    ) {
        Ok(report) => println!(
            "drill: sweep evaluated {} points, quarantined {}, best {:?}",
            report.report.evaluated,
            report.quarantined.len(),
            report.report.best.point.variant
        ),
        Err(e) => println!("drill: sweep failed: {e}"),
    }
}

fn drill_cache_round_trip() {
    let path: PathBuf =
        std::env::temp_dir().join(format!("wino_guard_drill_{}.json", std::process::id()));
    let desc = ConvDesc::new(3, 1, 1, 64, 1, 14, 14, 32);
    let cache = TuningCache::new();
    cache.put(
        &desc,
        "drill-dev",
        &Evaluation {
            point: TuningPoint {
                variant: PlanVariant::WinogradFused { m: 4 },
                unroll: Unroll::Full,
                mnt: 4,
                mnb: 16,
                threads: 1,
            },
            time_ms: 0.5,
        },
    );
    if let Err(e) = cache.save(&path) {
        println!("drill: cache save failed: {e}");
        return;
    }
    let loaded = TuningCache::load_or_rebuild(&path);
    println!("drill: cache reloaded with {} entries", loaded.len());
    let _ = std::fs::remove_file(&path);
}

fn main() {
    // Injected panics are expected traffic here: keep stderr quiet so
    // the counter lines stay greppable.
    std::panic::set_hook(Box::new(|_| {}));
    probe::set_mode(Mode::Summary);
    // With WINO_METRICS armed this also enables the flight recorder,
    // so demotions triggered below dump incident files (the CI flight
    // drill asserts one exists and names the faulting span).
    wino_telemetry::init_from_env();
    match fault::init_from_env() {
        Some(spec) => println!("drill: fault armed: {spec}"),
        None => println!("drill: no fault armed"),
    }

    drill_guarded_conv();
    drill_hardened_sweep();
    drill_cache_round_trip();

    // Intern the asserted counters first so zeros still print.
    for name in DRILL_COUNTERS {
        probe::counter(name);
    }
    for (name, value) in probe::counter_values() {
        println!("counter {name}={value}");
    }
}
