//! Perf-trajectory gate: diff a head bench-smoke artifact against the
//! committed baseline and exit nonzero on regression.
//!
//! ```text
//! wino-bench-compare BENCH_baseline.json BENCH_head.json
//! ```
//!
//! Both paths must be `wino-bench-baseline/v2` artifacts as written by
//! `wino-bench-smoke`. The gated metrics and their tolerances live in
//! `wino_telemetry::benchcmp::default_specs` — deliberately wide, so
//! the gate trips on trajectory breaks (a kernel falling back to
//! scalar, a serve path serializing), not CI-host jitter. A metric
//! missing from either artifact is a failure too: a silently vanished
//! metric is how gates rot.
//!
//! Exit status: 0 when every gated metric is within tolerance, 1 on
//! any regression or missing metric, 2 on unreadable/unparseable
//! input.

use std::process::ExitCode;

use serde::Value;
use wino_telemetry::benchcmp::{compare, default_specs};

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, head_path] = args.as_slice() else {
        eprintln!("usage: wino-bench-compare <baseline.json> <head.json>");
        return ExitCode::from(2);
    };
    let (baseline, head) = match (load(baseline_path), load(head_path)) {
        (Ok(b), Ok(h)) => (b, h),
        (b, h) => {
            for err in [b.err(), h.err()].into_iter().flatten() {
                eprintln!("bench-compare: {err}");
            }
            return ExitCode::from(2);
        }
    };
    if let Some(Value::Str(schema)) = baseline.get("schema") {
        if let Some(Value::Str(head_schema)) = head.get("schema") {
            if schema != head_schema {
                eprintln!(
                    "bench-compare: schema mismatch: baseline {schema:?} vs head \
                     {head_schema:?} (regenerate the baseline with wino-bench-smoke)"
                );
                return ExitCode::from(2);
            }
        }
    }

    let report = compare(&baseline, &head, &default_specs());
    println!(
        "bench-compare: {baseline_path} (baseline) vs {head_path} (head)\n{}",
        report.render()
    );
    if report.pass() {
        println!("bench-compare: PASS");
        ExitCode::SUCCESS
    } else {
        println!("bench-compare: FAIL (perf trajectory regressed)");
        ExitCode::FAILURE
    }
}
