//! Load generator for the batching inference server.
//!
//! Three modes:
//!
//! - `--smoke`: a deterministic 8-request drill on a tiny layer with
//!   coalescing disabled (`max_wait = 0`, concurrency 1), dumping the
//!   probe counters, gauges, and histograms as grep-friendly
//!   `counter name=value` / `gauge ...` / `hist ...` lines.
//!   `scripts/ci.sh` asserts the exact values, with and without an
//!   armed `WINO_FAULT`, proving admission/batch/execution accounting
//!   and the guard fallback under injected faults. With `WINO_METRICS`
//!   armed (honored via `wino_telemetry::init_from_env`) the server
//!   also emits a Prometheus-style snapshot on shutdown, which CI
//!   cross-checks against the same counters.
//! - closed loop (default): N submitter threads, each submitting and
//!   waiting in lock-step — measures service latency under a fixed
//!   concurrency level.
//! - `--open-loop <rate>`: one submitter at a fixed request rate with
//!   a collector draining responses — measures latency and shedding
//!   when arrival rate, not concurrency, is the control variable.
//! - `--chaos <seed>`: the closed loop run in waves, each wave under a
//!   serve-site fault drawn from the seeded schedule (executor kill,
//!   response drop, scheduler stall, or none) — measures latency *and*
//!   shed/internal-error rates while the server self-heals.
//!
//! All load modes print latency percentiles, throughput, and
//! shed/internal-error rates, and append the report to
//! `results/serve_load.txt`.

use std::io::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wino_probe::{self as probe, fault, HistogramSnapshot, Mode};
use wino_serve::{ConvRequest, PlanRegistry, ServeError, Server, ServerConfig};
use wino_tensor::{ConvDesc, Tensor4};

/// Counters the CI smoke asserts on; printed even when zero so
/// `grep -x` can distinguish "zero" from "not printed".
const SMOKE_COUNTERS: &[&str] = &[
    "serve.enqueued",
    "serve.shed",
    "serve.batches",
    "serve.batched",
    "serve.executed",
    "serve.deadline_demotions",
    "conv.filter_transforms",
    "conv.compiled_fallback",
    "guard.demote.guardrail",
    "guard.demote.panic",
    "guard.served_by_fallback",
];

/// Histograms the CI smoke asserts on; interned even when untouched
/// so a zero-count line still prints.
const SMOKE_HISTS: &[&str] = &["serve.queue_wait", "serve.execute", "serve.e2e"];

struct Args {
    smoke: bool,
    open_loop_rate: Option<f64>,
    chaos_seed: Option<u64>,
    requests: usize,
    concurrency: usize,
    network: String,
    max_batch: usize,
    max_wait_ms: u64,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            smoke: false,
            open_loop_rate: None,
            chaos_seed: None,
            requests: 64,
            concurrency: 4,
            network: "alexnet".to_string(),
            max_batch: 4,
            max_wait_ms: 2,
        };
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match arg.as_str() {
                "--smoke" => args.smoke = true,
                "--open-loop" => {
                    args.open_loop_rate = Some(value("--open-loop").parse().expect("rate"));
                }
                "--chaos" => {
                    args.chaos_seed = Some(value("--chaos").parse().expect("seed"));
                }
                "--requests" => args.requests = value("--requests").parse().expect("count"),
                "--concurrency" => {
                    args.concurrency = value("--concurrency").parse().expect("count");
                }
                "--network" => args.network = value("--network"),
                "--max-batch" => args.max_batch = value("--max-batch").parse().expect("count"),
                "--max-wait-ms" => {
                    args.max_wait_ms = value("--max-wait-ms").parse().expect("millis");
                }
                other => panic!("unknown argument {other:?}"),
            }
        }
        args
    }
}

/// The smoke fixture: one tiny Winograd-eligible layer.
fn smoke_registry() -> Arc<PlanRegistry> {
    let registry = PlanRegistry::new();
    let desc = ConvDesc::new(3, 1, 1, 8, 1, 16, 16, 8);
    let mut rng = StdRng::seed_from_u64(0x10ad);
    let weights = Tensor4::random(8, 8, 3, 3, -0.25, 0.25, &mut rng);
    registry
        .register_layer("smoke/conv", desc, weights)
        .expect("smoke layer registers");
    Arc::new(registry)
}

/// Eight sequential requests, no coalescing: the counter values are
/// exact (enqueued = batches = executed = 8, batched = shed = 0).
fn run_smoke() {
    const REQUESTS: usize = 8;
    // Register before arming, so an armed transform fault poisons
    // runtime batches but never the cached warm filters.
    let registry = smoke_registry();
    match fault::init_from_env() {
        Some(spec) => println!("serve-load: fault armed: {spec}"),
        None => println!("serve-load: no fault armed"),
    }
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            ..ServerConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(0xf00d);
    for i in 0..REQUESTS {
        let input = Tensor4::random(1, 8, 16, 16, -1.0, 1.0, &mut rng);
        match server.infer(ConvRequest::new("smoke/conv", input)) {
            Ok(resp) => println!("smoke: request {i} served by {}", resp.served_by),
            Err(e) => println!("smoke: request {i} failed: {e}"),
        }
    }
    server.shutdown();
    for name in SMOKE_COUNTERS {
        probe::counter(name);
    }
    for (name, value) in probe::counter_values() {
        println!("counter {name}={value}");
    }
    // Gauges print current *and* peak: CI asserts serve.queue_depth
    // drained to exactly zero after shutdown while the peak shows the
    // queue was actually exercised.
    for (name, current, peak) in probe::gauge_values() {
        println!("gauge {name}={current} peak={peak}");
    }
    // Histogram counts are exact under the no-coalescing smoke config
    // (one serve.queue_wait/execute/e2e record per request), so CI can
    // assert `hist serve.queue_wait count=8 ...` by prefix.
    for name in SMOKE_HISTS {
        probe::histogram(name);
    }
    for h in probe::hist_values() {
        println!(
            "hist {} count={} p50_ns={} p90_ns={} p99_ns={} max_ns={}",
            h.name,
            h.count,
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99),
            h.max
        );
    }
}

/// Per-layer request inputs, pre-generated so the measured latency is
/// pure service time.
fn layer_inputs(registry: &PlanRegistry, names: &[String]) -> Vec<(String, Tensor4<f32>)> {
    let mut rng = StdRng::seed_from_u64(0x10ad2);
    names
        .iter()
        .map(|name| {
            let d = registry.get(name).expect("registered").desc;
            let input = Tensor4::random(1, d.in_ch, d.in_h, d.in_w, -1.0, 1.0, &mut rng);
            (name.clone(), input)
        })
        .collect()
}

struct LoadReport {
    mode: String,
    served: usize,
    shed: usize,
    /// Requests terminated with [`ServeError::Internal`] (injected
    /// faults, crash containment); only chaos mode produces these.
    internal: usize,
    wall: Duration,
    latencies: Vec<Duration>,
}

impl LoadReport {
    /// Percentiles come from a log2 [`HistogramSnapshot`] (the same
    /// estimator the server's own `serve.e2e` metric uses, within one
    /// bucket of the exact rank); the max is exact. Shed and
    /// internal-error rates are over all submissions.
    fn render(&self) -> String {
        let mut h = HistogramSnapshot::named("client.e2e");
        for d in &self.latencies {
            h.observe(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
        let ms = |ns: u64| ns as f64 / 1e6;
        let throughput = self.served as f64 / self.wall.as_secs_f64().max(1e-9);
        let submitted = (self.served + self.shed + self.internal).max(1);
        let rate = |n: usize| 100.0 * n as f64 / submitted as f64;
        format!(
            "mode={} served={} shed={} internal={} shed_rate={:.1}% internal_rate={:.1}% \
             wall={:.2}s throughput={:.1} req/s \
             p50={:.2}ms p90={:.2}ms p99={:.2}ms max={:.2}ms",
            self.mode,
            self.served,
            self.shed,
            self.internal,
            rate(self.shed),
            rate(self.internal),
            self.wall.as_secs_f64(),
            throughput,
            ms(h.quantile(0.5)),
            ms(h.quantile(0.9)),
            ms(h.quantile(0.99)),
            ms(h.max),
        )
    }
}

/// Closed loop: `concurrency` threads, each submitting and waiting in
/// lock-step over the layer mix.
fn run_closed_loop(server: &Server, cases: &[(String, Tensor4<f32>)], args: &Args) -> LoadReport {
    let latencies = Mutex::new(Vec::with_capacity(args.requests));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..args.concurrency.max(1) {
            let latencies = &latencies;
            scope.spawn(move || {
                let per_worker = args.requests / args.concurrency.max(1);
                for i in 0..per_worker {
                    let (name, input) = &cases[(worker + i) % cases.len()];
                    let t0 = Instant::now();
                    let req = ConvRequest::new(name.clone(), input.clone());
                    if server.infer(req).is_ok() {
                        latencies.lock().unwrap().push(t0.elapsed());
                    }
                }
            });
        }
    });
    let wall = start.elapsed();
    let latencies = latencies.into_inner().unwrap();
    LoadReport {
        mode: format!("closed-loop(c={})", args.concurrency),
        served: latencies.len(),
        shed: 0,
        internal: 0,
        wall,
        latencies,
    }
}

/// Chaos mode: the closed loop split into waves, each wave running
/// under a serve-site fault drawn from the seeded schedule (or none).
/// Every submission must still resolve to exactly one terminal result
/// (enforced with a watchdog); the report adds the internal-error rate
/// the latency percentiles were paid at.
fn run_chaos_loop(
    server: &Server,
    cases: &[(String, Tensor4<f32>)],
    args: &Args,
    seed: u64,
) -> LoadReport {
    const WATCHDOG: Duration = Duration::from_secs(120);
    let mut rng = StdRng::seed_from_u64(seed);
    let concurrency = args.concurrency.max(1);
    let waves = (args.requests / concurrency).max(1);
    let latencies = Mutex::new(Vec::with_capacity(args.requests));
    let mut shed = 0usize;
    let mut internal = 0usize;
    let start = Instant::now();
    for wave in 0..waves {
        // Last wave always runs clean: the server must still serve
        // after the whole schedule.
        let spec = if wave + 1 == waves {
            String::new()
        } else {
            let nth = rng.gen_range(1..=4u32);
            match rng.gen_range(0..4u32) {
                0 => format!("serve_exec:panic:{nth}"),
                1 => format!("serve_resp:drop:{nth}"),
                2 => format!("serve_sched:stall:{nth}"),
                _ => String::new(),
            }
        };
        fault::init_from_value(&spec);
        let (wave_shed, wave_internal) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..concurrency)
                .map(|worker| {
                    let latencies = &latencies;
                    let (name, input) = &cases[(wave + worker) % cases.len()];
                    scope.spawn(move || {
                        let t0 = Instant::now();
                        let req = ConvRequest::new(name.clone(), input.clone());
                        match server.submit(req) {
                            Ok(handle) => match handle
                                .wait_timeout(WATCHDOG)
                                .expect("chaos invariant violated: request hung past the watchdog")
                            {
                                Ok(_) => {
                                    latencies.lock().unwrap().push(t0.elapsed());
                                    (0usize, 0usize)
                                }
                                Err(ServeError::Internal { .. }) => (0, 1),
                                Err(e) => panic!("unexpected terminal error: {e}"),
                            },
                            Err(ServeError::Overloaded { .. }) => (1, 0),
                            Err(e) => panic!("unexpected submit failure: {e}"),
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("submitter thread panicked"))
                .fold((0, 0), |(s, i), (ds, di)| (s + ds, i + di))
        });
        shed += wave_shed;
        internal += wave_internal;
    }
    fault::init_from_value("off");
    let wall = start.elapsed();
    let latencies = latencies.into_inner().unwrap();
    LoadReport {
        mode: format!("chaos(seed={seed},c={concurrency})"),
        served: latencies.len(),
        shed,
        internal,
        wall,
        latencies,
    }
}

/// Open loop: submit at a fixed rate regardless of completion; a
/// collector thread drains responses. Overload sheds are counted, not
/// retried.
fn run_open_loop(
    server: &Server,
    cases: &[(String, Tensor4<f32>)],
    args: &Args,
    rate: f64,
) -> LoadReport {
    let interval = Duration::from_secs_f64(1.0 / rate.max(1e-3));
    let mut shed = 0usize;
    let mut latencies = Vec::with_capacity(args.requests);
    let mut in_flight = Vec::new();
    let start = Instant::now();
    for i in 0..args.requests {
        let target = start + interval * i as u32;
        if let Some(sleep) = target.checked_duration_since(Instant::now()) {
            std::thread::sleep(sleep);
        }
        let (name, input) = &cases[i % cases.len()];
        let t0 = Instant::now();
        match server.submit(ConvRequest::new(name.clone(), input.clone())) {
            Ok(handle) => in_flight.push((t0, handle)),
            Err(ServeError::Overloaded { .. }) => shed += 1,
            Err(e) => panic!("unexpected submit failure: {e}"),
        }
    }
    for (t0, handle) in in_flight {
        if handle.wait().is_ok() {
            latencies.push(t0.elapsed());
        }
    }
    let wall = start.elapsed();
    LoadReport {
        mode: format!("open-loop(rate={rate}/s)"),
        served: latencies.len(),
        shed,
        internal: 0,
        wall,
        latencies,
    }
}

fn main() {
    // Injected faults panic on purpose; keep stderr quiet so the
    // counter lines stay greppable.
    std::panic::set_hook(Box::new(|_| {}));
    probe::set_mode(Mode::Summary);
    wino_telemetry::init_from_env();
    println!("serve-load: metrics mode: {:?}", wino_telemetry::mode());
    let args = Args::parse();
    if args.smoke {
        run_smoke();
        return;
    }

    // Register the network *before* arming `WINO_FAULT`: registration
    // precomputes warm filter transforms through the hooked transform
    // path, and a fault poisoning those cached filters would outlive
    // its own disarm. Real faults strike at runtime, not at model load.
    let registry = Arc::new(PlanRegistry::new());
    let names = registry
        .register_network(&args.network)
        .unwrap_or_else(|e| panic!("cannot register {:?}: {e}", args.network));
    match fault::init_from_env() {
        Some(spec) => println!("serve-load: fault armed: {spec}"),
        None => println!("serve-load: no fault armed"),
    }
    println!(
        "serve-load: registered {} layers of {}",
        names.len(),
        args.network
    );
    let cases = layer_inputs(&registry, &names);
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            max_batch: args.max_batch,
            max_wait: Duration::from_millis(args.max_wait_ms),
            executors: 2,
            // Chaos mode may kill executors repeatedly; give the
            // supervisor enough respawn budget for the whole schedule.
            max_executor_restarts: if args.chaos_seed.is_some() {
                args.requests as u64
            } else {
                ServerConfig::default().max_executor_restarts
            },
            ..ServerConfig::default()
        },
    );
    let report = match (args.chaos_seed, args.open_loop_rate) {
        (Some(seed), _) => run_chaos_loop(&server, &cases, &args, seed),
        (None, Some(rate)) => run_open_loop(&server, &cases, &args, rate),
        (None, None) => run_closed_loop(&server, &cases, &args),
    };
    if args.chaos_seed.is_some() {
        let health = server.health();
        println!(
            "serve-load: health status={:?} restarts={} batch_panics={}",
            health.status, health.executor_restarts, health.batch_panics
        );
    }
    server.shutdown();
    let line = report.render();
    println!("serve-load: {line}");
    let _ = std::fs::create_dir_all("results");
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("results/serve_load.txt")
    {
        let _ = writeln!(f, "{} {line}", args.network);
    }
}
