//! Load generator for the batching inference server.
//!
//! Three modes:
//!
//! - `--smoke`: a deterministic 8-request drill on a tiny layer with
//!   coalescing disabled (`max_wait = 0`, concurrency 1), dumping the
//!   probe counters, gauges, and histograms as grep-friendly
//!   `counter name=value` / `gauge ...` / `hist ...` lines.
//!   `scripts/ci.sh` asserts the exact values, with and without an
//!   armed `WINO_FAULT`, proving admission/batch/execution accounting
//!   and the guard fallback under injected faults. With `WINO_METRICS`
//!   armed (honored via `wino_telemetry::init_from_env`) the server
//!   also emits a Prometheus-style snapshot on shutdown, which CI
//!   cross-checks against the same counters.
//! - closed loop (default): N submitter threads, each submitting and
//!   waiting in lock-step — measures service latency under a fixed
//!   concurrency level.
//! - `--open-loop <rate>`: one submitter at a fixed request rate with
//!   a collector draining responses — measures latency and shedding
//!   when arrival rate, not concurrency, is the control variable.
//!
//! Both load modes print latency percentiles and throughput, and
//! append the report to `results/serve_load.txt`.

use std::io::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use wino_probe::{self as probe, fault, HistogramSnapshot, Mode};
use wino_serve::{ConvRequest, PlanRegistry, ServeError, Server, ServerConfig};
use wino_tensor::{ConvDesc, Tensor4};

/// Counters the CI smoke asserts on; printed even when zero so
/// `grep -x` can distinguish "zero" from "not printed".
const SMOKE_COUNTERS: &[&str] = &[
    "serve.enqueued",
    "serve.shed",
    "serve.batches",
    "serve.batched",
    "serve.executed",
    "serve.deadline_demotions",
    "conv.filter_transforms",
    "conv.compiled_fallback",
    "guard.demote.guardrail",
    "guard.demote.panic",
    "guard.served_by_fallback",
];

/// Histograms the CI smoke asserts on; interned even when untouched
/// so a zero-count line still prints.
const SMOKE_HISTS: &[&str] = &["serve.queue_wait", "serve.execute", "serve.e2e"];

struct Args {
    smoke: bool,
    open_loop_rate: Option<f64>,
    requests: usize,
    concurrency: usize,
    network: String,
    max_batch: usize,
    max_wait_ms: u64,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            smoke: false,
            open_loop_rate: None,
            requests: 64,
            concurrency: 4,
            network: "alexnet".to_string(),
            max_batch: 4,
            max_wait_ms: 2,
        };
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match arg.as_str() {
                "--smoke" => args.smoke = true,
                "--open-loop" => {
                    args.open_loop_rate = Some(value("--open-loop").parse().expect("rate"));
                }
                "--requests" => args.requests = value("--requests").parse().expect("count"),
                "--concurrency" => {
                    args.concurrency = value("--concurrency").parse().expect("count");
                }
                "--network" => args.network = value("--network"),
                "--max-batch" => args.max_batch = value("--max-batch").parse().expect("count"),
                "--max-wait-ms" => {
                    args.max_wait_ms = value("--max-wait-ms").parse().expect("millis");
                }
                other => panic!("unknown argument {other:?}"),
            }
        }
        args
    }
}

/// The smoke fixture: one tiny Winograd-eligible layer.
fn smoke_registry() -> Arc<PlanRegistry> {
    let registry = PlanRegistry::new();
    let desc = ConvDesc::new(3, 1, 1, 8, 1, 16, 16, 8);
    let mut rng = StdRng::seed_from_u64(0x10ad);
    let weights = Tensor4::random(8, 8, 3, 3, -0.25, 0.25, &mut rng);
    registry
        .register_layer("smoke/conv", desc, weights)
        .expect("smoke layer registers");
    Arc::new(registry)
}

/// Eight sequential requests, no coalescing: the counter values are
/// exact (enqueued = batches = executed = 8, batched = shed = 0).
fn run_smoke() {
    const REQUESTS: usize = 8;
    let registry = smoke_registry();
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            ..ServerConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(0xf00d);
    for i in 0..REQUESTS {
        let input = Tensor4::random(1, 8, 16, 16, -1.0, 1.0, &mut rng);
        match server.infer(ConvRequest::new("smoke/conv", input)) {
            Ok(resp) => println!("smoke: request {i} served by {}", resp.served_by),
            Err(e) => println!("smoke: request {i} failed: {e}"),
        }
    }
    server.shutdown();
    for name in SMOKE_COUNTERS {
        probe::counter(name);
    }
    for (name, value) in probe::counter_values() {
        println!("counter {name}={value}");
    }
    // Gauges print current *and* peak: CI asserts serve.queue_depth
    // drained to exactly zero after shutdown while the peak shows the
    // queue was actually exercised.
    for (name, current, peak) in probe::gauge_values() {
        println!("gauge {name}={current} peak={peak}");
    }
    // Histogram counts are exact under the no-coalescing smoke config
    // (one serve.queue_wait/execute/e2e record per request), so CI can
    // assert `hist serve.queue_wait count=8 ...` by prefix.
    for name in SMOKE_HISTS {
        probe::histogram(name);
    }
    for h in probe::hist_values() {
        println!(
            "hist {} count={} p50_ns={} p90_ns={} p99_ns={} max_ns={}",
            h.name,
            h.count,
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99),
            h.max
        );
    }
}

/// Per-layer request inputs, pre-generated so the measured latency is
/// pure service time.
fn layer_inputs(registry: &PlanRegistry, names: &[String]) -> Vec<(String, Tensor4<f32>)> {
    let mut rng = StdRng::seed_from_u64(0x10ad2);
    names
        .iter()
        .map(|name| {
            let d = registry.get(name).expect("registered").desc;
            let input = Tensor4::random(1, d.in_ch, d.in_h, d.in_w, -1.0, 1.0, &mut rng);
            (name.clone(), input)
        })
        .collect()
}

struct LoadReport {
    mode: String,
    served: usize,
    shed: usize,
    wall: Duration,
    latencies: Vec<Duration>,
}

impl LoadReport {
    /// Percentiles come from a log2 [`HistogramSnapshot`] (the same
    /// estimator the server's own `serve.e2e` metric uses, within one
    /// bucket of the exact rank); the max is exact.
    fn render(&self) -> String {
        let mut h = HistogramSnapshot::named("client.e2e");
        for d in &self.latencies {
            h.observe(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
        let ms = |ns: u64| ns as f64 / 1e6;
        let throughput = self.served as f64 / self.wall.as_secs_f64().max(1e-9);
        format!(
            "mode={} served={} shed={} wall={:.2}s throughput={:.1} req/s \
             p50={:.2}ms p90={:.2}ms p99={:.2}ms max={:.2}ms",
            self.mode,
            self.served,
            self.shed,
            self.wall.as_secs_f64(),
            throughput,
            ms(h.quantile(0.5)),
            ms(h.quantile(0.9)),
            ms(h.quantile(0.99)),
            ms(h.max),
        )
    }
}

/// Closed loop: `concurrency` threads, each submitting and waiting in
/// lock-step over the layer mix.
fn run_closed_loop(server: &Server, cases: &[(String, Tensor4<f32>)], args: &Args) -> LoadReport {
    let latencies = Mutex::new(Vec::with_capacity(args.requests));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..args.concurrency.max(1) {
            let latencies = &latencies;
            scope.spawn(move || {
                let per_worker = args.requests / args.concurrency.max(1);
                for i in 0..per_worker {
                    let (name, input) = &cases[(worker + i) % cases.len()];
                    let t0 = Instant::now();
                    let req = ConvRequest::new(name.clone(), input.clone());
                    if server.infer(req).is_ok() {
                        latencies.lock().unwrap().push(t0.elapsed());
                    }
                }
            });
        }
    });
    let wall = start.elapsed();
    let latencies = latencies.into_inner().unwrap();
    LoadReport {
        mode: format!("closed-loop(c={})", args.concurrency),
        served: latencies.len(),
        shed: 0,
        wall,
        latencies,
    }
}

/// Open loop: submit at a fixed rate regardless of completion; a
/// collector thread drains responses. Overload sheds are counted, not
/// retried.
fn run_open_loop(
    server: &Server,
    cases: &[(String, Tensor4<f32>)],
    args: &Args,
    rate: f64,
) -> LoadReport {
    let interval = Duration::from_secs_f64(1.0 / rate.max(1e-3));
    let mut shed = 0usize;
    let mut latencies = Vec::with_capacity(args.requests);
    let mut in_flight = Vec::new();
    let start = Instant::now();
    for i in 0..args.requests {
        let target = start + interval * i as u32;
        if let Some(sleep) = target.checked_duration_since(Instant::now()) {
            std::thread::sleep(sleep);
        }
        let (name, input) = &cases[i % cases.len()];
        let t0 = Instant::now();
        match server.submit(ConvRequest::new(name.clone(), input.clone())) {
            Ok(handle) => in_flight.push((t0, handle)),
            Err(ServeError::Overloaded { .. }) => shed += 1,
            Err(e) => panic!("unexpected submit failure: {e}"),
        }
    }
    for (t0, handle) in in_flight {
        if handle.wait().is_ok() {
            latencies.push(t0.elapsed());
        }
    }
    let wall = start.elapsed();
    LoadReport {
        mode: format!("open-loop(rate={rate}/s)"),
        served: latencies.len(),
        shed,
        wall,
        latencies,
    }
}

fn main() {
    // Injected faults panic on purpose; keep stderr quiet so the
    // counter lines stay greppable.
    std::panic::set_hook(Box::new(|_| {}));
    probe::set_mode(Mode::Summary);
    wino_telemetry::init_from_env();
    println!("serve-load: metrics mode: {:?}", wino_telemetry::mode());
    match fault::init_from_env() {
        Some(spec) => println!("serve-load: fault armed: {spec}"),
        None => println!("serve-load: no fault armed"),
    }
    let args = Args::parse();
    if args.smoke {
        run_smoke();
        return;
    }

    let registry = Arc::new(PlanRegistry::new());
    let names = registry
        .register_network(&args.network)
        .unwrap_or_else(|e| panic!("cannot register {:?}: {e}", args.network));
    println!(
        "serve-load: registered {} layers of {}",
        names.len(),
        args.network
    );
    let cases = layer_inputs(&registry, &names);
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            max_batch: args.max_batch,
            max_wait: Duration::from_millis(args.max_wait_ms),
            executors: 2,
            ..ServerConfig::default()
        },
    );
    let report = match args.open_loop_rate {
        Some(rate) => run_open_loop(&server, &cases, &args, rate),
        None => run_closed_loop(&server, &cases, &args),
    };
    server.shutdown();
    let line = report.render();
    println!("serve-load: {line}");
    let _ = std::fs::create_dir_all("results");
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("results/serve_load.txt")
    {
        let _ = writeln!(f, "{} {line}", args.network);
    }
}
