//! Load generator for the batching inference server.
//!
//! Modes:
//!
//! - `--smoke`: a deterministic 8-request drill on a tiny layer with
//!   coalescing disabled (`max_wait = 0`, concurrency 1), dumping the
//!   probe counters, gauges, and histograms as grep-friendly
//!   `counter name=value` / `gauge ...` / `hist ...` lines.
//!   `scripts/ci.sh` asserts the exact values, with and without an
//!   armed `WINO_FAULT`, proving admission/batch/execution accounting
//!   and the guard fallback under injected faults. With `WINO_METRICS`
//!   armed (honored via `wino_telemetry::init_from_env`) the server
//!   also emits a Prometheus-style snapshot on shutdown, which CI
//!   cross-checks against the same counters.
//! - `--net-smoke`: the network-serving drill — two zoo networks
//!   registered for whole-graph execution, a warmup request each, then
//!   8 concurrent steady-state requests submitted before any is
//!   collected (so cross-request coalescing actually happens). Prints
//!   the `serve.net_*` / `exec.*` counters plus self-checked `ok`
//!   lines: warm filter transforms fired once per Winograd conv, the
//!   arena planner's peak sits under the naive sum of activations, and
//!   steady-state serving did zero graph-level allocations. CI runs it
//!   clean (demotions=0) and under `WINO_FAULT=transform:nan` (every
//!   request still served, demotions > 0).
//! - closed loop (default): N submitter threads, each submitting and
//!   waiting in lock-step — measures service latency under a fixed
//!   concurrency level. With `--net` the same loop submits
//!   whole-network requests through the graph executor instead of
//!   per-layer convolutions.
//! - `--open-loop <rate>`: one submitter at a fixed request rate with
//!   a collector draining responses — measures latency and shedding
//!   when arrival rate, not concurrency, is the control variable.
//! - `--chaos <seed>`: the closed loop run in waves, each wave under a
//!   serve-site fault drawn from the seeded schedule (executor kill,
//!   response drop, scheduler stall, or none) — measures latency *and*
//!   shed/internal-error rates while the server self-heals.
//!
//! All load modes print latency percentiles, throughput, and
//! shed/internal-error rates, and append the report to
//! `results/serve_load.txt`.

use std::io::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wino_graph::EngineChoice;
use wino_probe::{self as probe, fault, HistogramSnapshot, Mode};
use wino_serve::{ConvRequest, NetworkRequest, PlanRegistry, ServeError, Server, ServerConfig};
use wino_tensor::{ConvDesc, Tensor4};

/// Counters the CI smoke asserts on; printed even when zero so
/// `grep -x` can distinguish "zero" from "not printed".
const SMOKE_COUNTERS: &[&str] = &[
    "serve.enqueued",
    "serve.shed",
    "serve.batches",
    "serve.batched",
    "serve.executed",
    "serve.deadline_demotions",
    "conv.filter_transforms",
    "conv.compiled_fallback",
    "guard.demote.guardrail",
    "guard.demote.panic",
    "guard.served_by_fallback",
];

/// Histograms the CI smoke asserts on; interned even when untouched
/// so a zero-count line still prints.
const SMOKE_HISTS: &[&str] = &["serve.queue_wait", "serve.execute", "serve.e2e"];

/// Counters the CI network smoke asserts on (same print-even-when-zero
/// contract as [`SMOKE_COUNTERS`]).
const NET_SMOKE_COUNTERS: &[&str] = &[
    "serve.enqueued",
    "serve.shed",
    "serve.executed",
    "serve.deadline_demotions",
    "serve.net_enqueued",
    "serve.net_batches",
    "serve.net_batched",
    "serve.net_executed",
    "serve.net_degraded",
    "serve.networks_registered",
    "exec.networks_executed",
    "exec.waves_executed",
    "exec.nodes_executed",
    "exec.fused_writes",
    "exec.degraded_runs",
    "exec.arena_allocs",
    "exec.allocs_steady",
    "conv.filter_transforms",
    "guard.demote.guardrail",
    "guard.served_by_fallback",
];

/// Histograms the network smoke interns so zero-count lines print.
const NET_SMOKE_HISTS: &[&str] = &["serve.net_execute", "serve.net_e2e", "exec.network"];

struct Args {
    smoke: bool,
    net_smoke: bool,
    net: bool,
    open_loop_rate: Option<f64>,
    chaos_seed: Option<u64>,
    requests: usize,
    concurrency: usize,
    network: String,
    max_batch: usize,
    max_wait_ms: u64,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            smoke: false,
            net_smoke: false,
            net: false,
            open_loop_rate: None,
            chaos_seed: None,
            requests: 64,
            concurrency: 4,
            network: "alexnet".to_string(),
            max_batch: 4,
            max_wait_ms: 2,
        };
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match arg.as_str() {
                "--smoke" => args.smoke = true,
                "--net-smoke" => args.net_smoke = true,
                "--net" => args.net = true,
                "--open-loop" => {
                    args.open_loop_rate = Some(value("--open-loop").parse().expect("rate"));
                }
                "--chaos" => {
                    args.chaos_seed = Some(value("--chaos").parse().expect("seed"));
                }
                "--requests" => args.requests = value("--requests").parse().expect("count"),
                "--concurrency" => {
                    args.concurrency = value("--concurrency").parse().expect("count");
                }
                "--network" => args.network = value("--network"),
                "--max-batch" => args.max_batch = value("--max-batch").parse().expect("count"),
                "--max-wait-ms" => {
                    args.max_wait_ms = value("--max-wait-ms").parse().expect("millis");
                }
                other => panic!("unknown argument {other:?}"),
            }
        }
        args
    }
}

/// The smoke fixture: one tiny Winograd-eligible layer.
fn smoke_registry() -> Arc<PlanRegistry> {
    let registry = PlanRegistry::new();
    let desc = ConvDesc::new(3, 1, 1, 8, 1, 16, 16, 8);
    let mut rng = StdRng::seed_from_u64(0x10ad);
    let weights = Tensor4::random(8, 8, 3, 3, -0.25, 0.25, &mut rng);
    registry
        .register_layer("smoke/conv", desc, weights)
        .expect("smoke layer registers");
    Arc::new(registry)
}

/// Eight sequential requests, no coalescing: the counter values are
/// exact (enqueued = batches = executed = 8, batched = shed = 0).
fn run_smoke() {
    const REQUESTS: usize = 8;
    // Register before arming, so an armed transform fault poisons
    // runtime batches but never the cached warm filters.
    let registry = smoke_registry();
    match fault::init_from_env() {
        Some(spec) => println!("serve-load: fault armed: {spec}"),
        None => println!("serve-load: no fault armed"),
    }
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            ..ServerConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(0xf00d);
    for i in 0..REQUESTS {
        let input = Tensor4::random(1, 8, 16, 16, -1.0, 1.0, &mut rng);
        match server.infer(ConvRequest::new("smoke/conv", input)) {
            Ok(resp) => println!("smoke: request {i} served by {}", resp.served_by),
            Err(e) => println!("smoke: request {i} failed: {e}"),
        }
    }
    server.shutdown();
    for name in SMOKE_COUNTERS {
        probe::counter(name);
    }
    for (name, value) in probe::counter_values() {
        println!("counter {name}={value}");
    }
    // Gauges print current *and* peak: CI asserts serve.queue_depth
    // drained to exactly zero after shutdown while the peak shows the
    // queue was actually exercised.
    for (name, current, peak) in probe::gauge_values() {
        println!("gauge {name}={current} peak={peak}");
    }
    // Histogram counts are exact under the no-coalescing smoke config
    // (one serve.queue_wait/execute/e2e record per request), so CI can
    // assert `hist serve.queue_wait count=8 ...` by prefix.
    for name in SMOKE_HISTS {
        probe::histogram(name);
    }
    for h in probe::hist_values() {
        println!(
            "hist {} count={} p50_ns={} p90_ns={} p99_ns={} max_ns={}",
            h.name,
            h.count,
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99),
            h.max
        );
    }
}

/// The network-serving drill: two zoo networks registered for graph
/// execution, one warmup request each, then eight steady-state
/// requests submitted before any is collected so cross-request
/// coalescing happens. Counter values the schedule controls are exact
/// (10 network requests enqueued and executed, nothing shed); batch
/// counts depend on scheduler timing and are printed, not asserted.
fn run_net_smoke() {
    const NETWORKS: [&str; 2] = ["alexnet", "inception-3a-3b"];
    const STEADY_REQUESTS: usize = 8;
    fn fail(msg: &str) -> ! {
        println!("net-smoke: FAIL: {msg}");
        std::process::exit(1);
    }

    // Register both networks *before* arming `WINO_FAULT` (same
    // contract as the layer smoke): registration precomputes the warm
    // filter transforms, and runtime faults must never poison that
    // cache.
    let registry = Arc::new(PlanRegistry::new());
    let mut winograd_convs = 0u64;
    for name in NETWORKS {
        let plan = registry
            .register_zoo_network(name)
            .unwrap_or_else(|e| panic!("cannot register {name}: {e}"));
        winograd_convs += plan
            .graph
            .conv_nodes()
            .iter()
            .filter(|(id, _)| matches!(plan.graph.engine(*id), EngineChoice::Winograd(_)))
            .count() as u64;
        println!(
            "net-smoke: registered {name}: {} nodes, {} waves, {} slabs",
            plan.net.step_count(),
            plan.net.wave_count(),
            plan.net.slab_count()
        );
    }
    match fault::init_from_env() {
        Some(spec) => println!("net-smoke: fault armed: {spec}"),
        None => println!("net-smoke: no fault armed"),
    }

    // The buffer planner must beat the naive one-buffer-per-tensor
    // layout on the branchy Inception module.
    let inception = registry.network("inception-3a-3b").expect("registered");
    let peak = inception.net.peak_arena_bytes(1);
    let naive = inception.net.naive_activation_bytes(1);
    println!("net-smoke: inception-3a-3b arena peak_bytes={peak} naive_bytes={naive}");
    if peak >= naive {
        fail("arena planner peak did not beat naive sum-of-activations");
    }
    println!("net-smoke: planner peak under naive activations: ok");

    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(10),
            executors: 2,
            ..ServerConfig::default()
        },
    );
    let mk_input = |name: &str, seed: u64| {
        let plan = registry.network(name).expect("registered");
        let (c, h, w) = plan.input_dims();
        let mut rng = StdRng::seed_from_u64(0x6e75 ^ seed);
        Tensor4::random(1, c, h, w, -1.0, 1.0, &mut rng)
    };

    // Warmup: one request per network fills each arena pool to its
    // high-water mark, so the steady phase can demand zero graph-level
    // allocations.
    wino_exec::set_steady_phase(false);
    for name in NETWORKS {
        match server.infer_network(NetworkRequest::new(name, mk_input(name, 0))) {
            Ok(resp) => println!("net-smoke: warmup {name} served by {}", resp.served_by),
            Err(e) => fail(&format!("warmup {name} failed: {e}")),
        }
    }
    wino_exec::set_steady_phase(true);

    // Steady load: submit everything, then collect — 8 requests in
    // flight at once, alternating networks so both coalesce. Inputs
    // are pre-generated so submission is instantaneous and the
    // scheduler actually sees concurrent same-network requests.
    let steady: Vec<(&str, Tensor4<f32>)> = (0..STEADY_REQUESTS)
        .map(|i| {
            let name = NETWORKS[i % NETWORKS.len()];
            (name, mk_input(name, 1 + i as u64))
        })
        .collect();
    let mut handles = Vec::new();
    for (name, input) in steady {
        match server.submit_network(NetworkRequest::new(name, input)) {
            Ok(h) => handles.push((name, h)),
            Err(e) => fail(&format!("submit {name} failed: {e}")),
        }
    }
    let mut served = 0usize;
    let mut demotions = 0usize;
    let mut max_batched_with = 0usize;
    for (i, (name, h)) in handles.into_iter().enumerate() {
        match h.wait() {
            Ok(resp) => {
                if !resp.output.data().iter().all(|v| v.is_finite()) {
                    fail("served network output is not finite");
                }
                served += 1;
                demotions += resp.trace.demotions;
                max_batched_with = max_batched_with.max(resp.batched_with);
                println!(
                    "net-smoke: request {i} ({name}) served by {}",
                    resp.served_by
                );
            }
            Err(e) => println!("net-smoke: request {i} ({name}) failed: {e}"),
        }
    }
    wino_exec::set_steady_phase(false);
    server.shutdown();

    println!("net-smoke: steady served={served}/{STEADY_REQUESTS}");
    println!("net-smoke: demotions={demotions}");
    println!("net-smoke: max_batched_with={max_batched_with}");
    if probe::counter("conv.filter_transforms").get() == winograd_convs {
        println!("net-smoke: warm transforms once per winograd conv: ok");
    } else {
        fail("filter transforms re-ran during serving");
    }

    for name in NET_SMOKE_COUNTERS {
        probe::counter(name);
    }
    for (name, value) in probe::counter_values() {
        println!("counter {name}={value}");
    }
    for (name, current, peak) in probe::gauge_values() {
        println!("gauge {name}={current} peak={peak}");
    }
    for name in NET_SMOKE_HISTS {
        probe::histogram(name);
    }
    for h in probe::hist_values() {
        println!(
            "hist {} count={} p50_ns={} p90_ns={} p99_ns={} max_ns={}",
            h.name,
            h.count,
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99),
            h.max
        );
    }
}

/// Per-layer request inputs, pre-generated so the measured latency is
/// pure service time.
fn layer_inputs(registry: &PlanRegistry, names: &[String]) -> Vec<(String, Tensor4<f32>)> {
    let mut rng = StdRng::seed_from_u64(0x10ad2);
    names
        .iter()
        .map(|name| {
            let d = registry.get(name).expect("registered").desc;
            let input = Tensor4::random(1, d.in_ch, d.in_h, d.in_w, -1.0, 1.0, &mut rng);
            (name.clone(), input)
        })
        .collect()
}

struct LoadReport {
    mode: String,
    served: usize,
    shed: usize,
    /// Requests terminated with [`ServeError::Internal`] (injected
    /// faults, crash containment); only chaos mode produces these.
    internal: usize,
    wall: Duration,
    latencies: Vec<Duration>,
}

impl LoadReport {
    /// Percentiles come from a log2 [`HistogramSnapshot`] (the same
    /// estimator the server's own `serve.e2e` metric uses, within one
    /// bucket of the exact rank); the max is exact. Shed and
    /// internal-error rates are over all submissions.
    fn render(&self) -> String {
        let mut h = HistogramSnapshot::named("client.e2e");
        for d in &self.latencies {
            h.observe(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
        let ms = |ns: u64| ns as f64 / 1e6;
        let throughput = self.served as f64 / self.wall.as_secs_f64().max(1e-9);
        let submitted = (self.served + self.shed + self.internal).max(1);
        let rate = |n: usize| 100.0 * n as f64 / submitted as f64;
        format!(
            "mode={} served={} shed={} internal={} shed_rate={:.1}% internal_rate={:.1}% \
             wall={:.2}s throughput={:.1} req/s \
             p50={:.2}ms p90={:.2}ms p99={:.2}ms max={:.2}ms",
            self.mode,
            self.served,
            self.shed,
            self.internal,
            rate(self.shed),
            rate(self.internal),
            self.wall.as_secs_f64(),
            throughput,
            ms(h.quantile(0.5)),
            ms(h.quantile(0.9)),
            ms(h.quantile(0.99)),
            ms(h.max),
        )
    }
}

/// Closed loop: `concurrency` threads, each submitting and waiting in
/// lock-step over the layer mix.
fn run_closed_loop(server: &Server, cases: &[(String, Tensor4<f32>)], args: &Args) -> LoadReport {
    let latencies = Mutex::new(Vec::with_capacity(args.requests));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..args.concurrency.max(1) {
            let latencies = &latencies;
            scope.spawn(move || {
                let per_worker = args.requests / args.concurrency.max(1);
                for i in 0..per_worker {
                    let (name, input) = &cases[(worker + i) % cases.len()];
                    let t0 = Instant::now();
                    let req = ConvRequest::new(name.clone(), input.clone());
                    if server.infer(req).is_ok() {
                        latencies.lock().unwrap().push(t0.elapsed());
                    }
                }
            });
        }
    });
    let wall = start.elapsed();
    let latencies = latencies.into_inner().unwrap();
    LoadReport {
        mode: format!("closed-loop(c={})", args.concurrency),
        served: latencies.len(),
        shed: 0,
        internal: 0,
        wall,
        latencies,
    }
}

/// Closed loop over whole-network requests: `concurrency` threads in
/// lock-step, each pushing the registered network through the graph
/// executor (arena-planned, wave-scheduled) instead of a single layer.
fn run_net_closed_loop(
    server: &Server,
    network: &str,
    inputs: &[Tensor4<f32>],
    args: &Args,
) -> LoadReport {
    let latencies = Mutex::new(Vec::with_capacity(args.requests));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..args.concurrency.max(1) {
            let latencies = &latencies;
            scope.spawn(move || {
                let per_worker = args.requests / args.concurrency.max(1);
                for i in 0..per_worker {
                    let input = &inputs[(worker + i) % inputs.len()];
                    let t0 = Instant::now();
                    let req = NetworkRequest::new(network, input.clone());
                    if server.infer_network(req).is_ok() {
                        latencies.lock().unwrap().push(t0.elapsed());
                    }
                }
            });
        }
    });
    let wall = start.elapsed();
    let latencies = latencies.into_inner().unwrap();
    LoadReport {
        mode: format!("net-closed-loop(c={})", args.concurrency),
        served: latencies.len(),
        shed: 0,
        internal: 0,
        wall,
        latencies,
    }
}

/// Chaos mode: the closed loop split into waves, each wave running
/// under a serve-site fault drawn from the seeded schedule (or none).
/// Every submission must still resolve to exactly one terminal result
/// (enforced with a watchdog); the report adds the internal-error rate
/// the latency percentiles were paid at.
fn run_chaos_loop(
    server: &Server,
    cases: &[(String, Tensor4<f32>)],
    args: &Args,
    seed: u64,
) -> LoadReport {
    const WATCHDOG: Duration = Duration::from_secs(120);
    let mut rng = StdRng::seed_from_u64(seed);
    let concurrency = args.concurrency.max(1);
    let waves = (args.requests / concurrency).max(1);
    let latencies = Mutex::new(Vec::with_capacity(args.requests));
    let mut shed = 0usize;
    let mut internal = 0usize;
    let start = Instant::now();
    for wave in 0..waves {
        // Last wave always runs clean: the server must still serve
        // after the whole schedule.
        let spec = if wave + 1 == waves {
            String::new()
        } else {
            let nth = rng.gen_range(1..=4u32);
            match rng.gen_range(0..4u32) {
                0 => format!("serve_exec:panic:{nth}"),
                1 => format!("serve_resp:drop:{nth}"),
                2 => format!("serve_sched:stall:{nth}"),
                _ => String::new(),
            }
        };
        fault::init_from_value(&spec);
        let (wave_shed, wave_internal) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..concurrency)
                .map(|worker| {
                    let latencies = &latencies;
                    let (name, input) = &cases[(wave + worker) % cases.len()];
                    scope.spawn(move || {
                        let t0 = Instant::now();
                        let req = ConvRequest::new(name.clone(), input.clone());
                        match server.submit(req) {
                            Ok(handle) => match handle
                                .wait_timeout(WATCHDOG)
                                .expect("chaos invariant violated: request hung past the watchdog")
                            {
                                Ok(_) => {
                                    latencies.lock().unwrap().push(t0.elapsed());
                                    (0usize, 0usize)
                                }
                                Err(ServeError::Internal { .. }) => (0, 1),
                                Err(e) => panic!("unexpected terminal error: {e}"),
                            },
                            Err(ServeError::Overloaded { .. }) => (1, 0),
                            Err(e) => panic!("unexpected submit failure: {e}"),
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("submitter thread panicked"))
                .fold((0, 0), |(s, i), (ds, di)| (s + ds, i + di))
        });
        shed += wave_shed;
        internal += wave_internal;
    }
    fault::init_from_value("off");
    let wall = start.elapsed();
    let latencies = latencies.into_inner().unwrap();
    LoadReport {
        mode: format!("chaos(seed={seed},c={concurrency})"),
        served: latencies.len(),
        shed,
        internal,
        wall,
        latencies,
    }
}

/// Open loop: submit at a fixed rate regardless of completion; a
/// collector thread drains responses. Overload sheds are counted, not
/// retried.
fn run_open_loop(
    server: &Server,
    cases: &[(String, Tensor4<f32>)],
    args: &Args,
    rate: f64,
) -> LoadReport {
    let interval = Duration::from_secs_f64(1.0 / rate.max(1e-3));
    let mut shed = 0usize;
    let mut latencies = Vec::with_capacity(args.requests);
    let mut in_flight = Vec::new();
    let start = Instant::now();
    for i in 0..args.requests {
        let target = start + interval * i as u32;
        if let Some(sleep) = target.checked_duration_since(Instant::now()) {
            std::thread::sleep(sleep);
        }
        let (name, input) = &cases[i % cases.len()];
        let t0 = Instant::now();
        match server.submit(ConvRequest::new(name.clone(), input.clone())) {
            Ok(handle) => in_flight.push((t0, handle)),
            Err(ServeError::Overloaded { .. }) => shed += 1,
            Err(e) => panic!("unexpected submit failure: {e}"),
        }
    }
    for (t0, handle) in in_flight {
        if handle.wait().is_ok() {
            latencies.push(t0.elapsed());
        }
    }
    let wall = start.elapsed();
    LoadReport {
        mode: format!("open-loop(rate={rate}/s)"),
        served: latencies.len(),
        shed,
        internal: 0,
        wall,
        latencies,
    }
}

fn main() {
    // Injected faults panic on purpose; keep stderr quiet so the
    // counter lines stay greppable.
    std::panic::set_hook(Box::new(|_| {}));
    probe::set_mode(Mode::Summary);
    wino_telemetry::init_from_env();
    println!("serve-load: metrics mode: {:?}", wino_telemetry::mode());
    let args = Args::parse();
    if args.smoke {
        run_smoke();
        return;
    }
    if args.net_smoke {
        run_net_smoke();
        return;
    }
    if args.net {
        assert!(
            args.chaos_seed.is_none() && args.open_loop_rate.is_none(),
            "--net supports the closed loop only"
        );
        run_net_load(&args);
        return;
    }

    // Register the network *before* arming `WINO_FAULT`: registration
    // precomputes warm filter transforms through the hooked transform
    // path, and a fault poisoning those cached filters would outlive
    // its own disarm. Real faults strike at runtime, not at model load.
    let registry = Arc::new(PlanRegistry::new());
    let names = registry
        .register_network(&args.network)
        .unwrap_or_else(|e| panic!("cannot register {:?}: {e}", args.network));
    match fault::init_from_env() {
        Some(spec) => println!("serve-load: fault armed: {spec}"),
        None => println!("serve-load: no fault armed"),
    }
    println!(
        "serve-load: registered {} layers of {}",
        names.len(),
        args.network
    );
    let cases = layer_inputs(&registry, &names);
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            max_batch: args.max_batch,
            max_wait: Duration::from_millis(args.max_wait_ms),
            executors: 2,
            // Chaos mode may kill executors repeatedly; give the
            // supervisor enough respawn budget for the whole schedule.
            max_executor_restarts: if args.chaos_seed.is_some() {
                args.requests as u64
            } else {
                ServerConfig::default().max_executor_restarts
            },
            ..ServerConfig::default()
        },
    );
    let report = match (args.chaos_seed, args.open_loop_rate) {
        (Some(seed), _) => run_chaos_loop(&server, &cases, &args, seed),
        (None, Some(rate)) => run_open_loop(&server, &cases, &args, rate),
        (None, None) => run_closed_loop(&server, &cases, &args),
    };
    if args.chaos_seed.is_some() {
        let health = server.health();
        println!(
            "serve-load: health status={:?} restarts={} batch_panics={}",
            health.status, health.executor_restarts, health.batch_panics
        );
    }
    server.shutdown();
    let line = report.render();
    println!("serve-load: {line}");
    append_result(&args.network, &line);
}

/// The `--net` load path: one zoo network registered for whole-graph
/// execution, one warmup request (fills the arena pools), then the
/// closed loop over [`NetworkRequest`]s.
fn run_net_load(args: &Args) {
    let registry = Arc::new(PlanRegistry::new());
    let plan = registry
        .register_zoo_network(&args.network)
        .unwrap_or_else(|e| panic!("cannot register network {:?}: {e}", args.network));
    match fault::init_from_env() {
        Some(spec) => println!("serve-load: fault armed: {spec}"),
        None => println!("serve-load: no fault armed"),
    }
    println!(
        "serve-load: registered network {} ({} nodes, {} waves, {} slabs, \
         arena peak {}B vs naive {}B per image)",
        args.network,
        plan.net.step_count(),
        plan.net.wave_count(),
        plan.net.slab_count(),
        plan.net.peak_arena_bytes(1),
        plan.net.naive_activation_bytes(1)
    );
    let (c, h, w) = plan.input_dims();
    let mut rng = StdRng::seed_from_u64(0x10ad3);
    let inputs: Vec<Tensor4<f32>> = (0..4)
        .map(|_| Tensor4::random(1, c, h, w, -1.0, 1.0, &mut rng))
        .collect();
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            max_batch: args.max_batch,
            max_wait: Duration::from_millis(args.max_wait_ms),
            executors: 2,
            ..ServerConfig::default()
        },
    );
    server
        .infer_network(NetworkRequest::new(&args.network, inputs[0].clone()))
        .expect("warmup request must serve");
    let report = run_net_closed_loop(&server, &args.network, &inputs, args);
    server.shutdown();
    let line = report.render();
    println!("serve-load: {line}");
    append_result(&format!("net:{}", args.network), &line);
}

fn append_result(tag: &str, line: &str) {
    let _ = std::fs::create_dir_all("results");
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("results/serve_load.txt")
    {
        let _ = writeln!(f, "{tag} {line}");
    }
}
