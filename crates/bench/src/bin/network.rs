//! End-to-end network view: per-layer tuned vs baseline times summed
//! over the three reference networks, per modelled device.

use wino_bench::{estimate_networks, TablePrinter};
use wino_gpu::paper_devices;

fn main() {
    let threads: usize = std::env::var("WINO_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    for device in paper_devices() {
        println!("=== {} (batch 1) ===", device.name);
        for net in estimate_networks(&device, 1, threads) {
            let mut t = TablePrinter::new(&["layer", "conv", "baseline (ms)", "tuned (ms)"]);
            for l in &net.layers {
                t.row(vec![
                    l.layer.clone(),
                    l.desc.to_string(),
                    format!("{:.4}", l.baseline_ms),
                    format!("{:.4}", l.tuned_ms),
                ]);
            }
            println!("\n{}:", net.network);
            print!("{}", t.render());
            println!(
                "total {:.4} ms -> {:.4} ms ({:.2}x end-to-end from generated Winograd)",
                net.baseline_ms(),
                net.tuned_ms(),
                net.speedup()
            );
        }
        println!();
    }
}
