//! Regenerates Table 4: the 31 benchmark convolutions extracted from
//! AlexNet, Network-in-Network and InceptionV1, with FLOP counts
//! cross-checked against the paper's column.

use wino_bench::{fmt_sci, TablePrinter};
use wino_graph::{all_network_convs, extract_benchmark_convs, table4_convs, table4_paper_flops};

fn main() {
    println!("Table 4 — The 31 benchmark convolutions\n");
    let mut t = TablePrinter::new(&[
        "#",
        "FLOPs",
        "paper FLOPs",
        "KSZ",
        "S",
        "P",
        "OC",
        "B",
        "in (y*x*chan)",
        "source layer",
    ]);
    let zoo = all_network_convs();
    for (i, (desc, paper)) in table4_convs().iter().zip(table4_paper_flops()).enumerate() {
        let mut base = *desc;
        base.batch = 1;
        let source = zoo
            .iter()
            .find(|n| n.desc == base)
            .map(|n| format!("{}/{}", n.network, n.layer))
            .unwrap_or_else(|| "?".into());
        t.row(vec![
            (i + 1).to_string(),
            fmt_sci(desc.flops() as f64),
            fmt_sci(paper),
            desc.ksz.to_string(),
            desc.stride.to_string(),
            desc.pad.to_string(),
            desc.out_ch.to_string(),
            desc.batch.to_string(),
            format!("{}x{}x{}", desc.in_h, desc.in_w, desc.in_ch),
            source,
        ]);
    }
    print!("{}", t.render());

    let extracted = extract_benchmark_convs();
    let covered = table4_convs()
        .iter()
        .filter(|d| extracted.contains(d))
        .count();
    println!(
        "\nZoo extraction (all convs >= 1e8 FLOPs at B in {{1,5}}): {} descriptors,\n\
         covering {covered}/31 of the printed table.",
        extracted.len()
    );
}
