//! Regenerates Figure 8: the 31 Table-4 convolutions against the
//! MIOpen stand-in on the modelled RX 580.
//!
//! `WINO_THREADS` sets tuning parallelism (default 8); `WINO_TRACE`
//! attaches per-candidate tuner spans to the probe artifact.

use wino_bench::{env_threads, figure8_rows, fmt_sci, geometric_mean, Report, TablePrinter};
use wino_graph::table4_convs;

fn main() {
    let mut report = Report::new("figure8", "Figure 8 — vs MIOpen-sim on the RX 580 model");
    let threads = env_threads(8);
    let rows = figure8_rows(&table4_convs(), threads);
    let mut t = TablePrinter::new(&[
        "FLOPs",
        "MIOpen fastest",
        "Boda no-WG",
        "MIOpen WG",
        "Boda WG",
        "Boda/MIOpen WG speedup",
    ]);
    for row in &rows {
        t.row(vec![
            fmt_sci(row.desc.flops() as f64),
            format!("{:.4}", row.vendor_fastest_ms),
            format!("{:.4}", row.boda_no_winograd_ms),
            row.vendor_winograd_ms
                .map(|v| format!("{v:.4}"))
                .unwrap_or_else(|| "n/a".into()),
            format!("{:.4}", row.boda_winograd_ms),
            row.winograd_speedup()
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    report.table(&t);
    let speedups: Vec<f64> = rows.iter().filter_map(|r| r.winograd_speedup()).collect();
    report.line(format!(
        "\n(all runtimes in ms) geometric-mean speedup over MIOpen-sim Winograd: {:.2}x,\n\
         max {:.2}x. Expected shape (paper): MIOpen ahead on larger convolutions via\n\
         MIOpenGEMM; our kernels win by up to ~1.9x on specific cases.",
        geometric_mean(&speedups),
        speedups.iter().cloned().fold(0.0, f64::max),
    ));
    report.finish();
}
