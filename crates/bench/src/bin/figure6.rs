//! Regenerates Figure 6: modelled runtimes of optimized vs
//! non-optimized Winograd kernels on the GTX-1080-Ti profile,
//! r ∈ {3, 5, 7}, m ∈ [2, 9], batch ∈ {1, 5, 20}.
//!
//! With `WINO_TRACE` set (`summary` or `json[:path]`), additionally
//! runs the representative layer through both real CPU engines so the
//! emitted probe artifact contains the measured per-phase breakdown
//! (filter/input/output transforms, batched SGEMM, tile
//! scatter/gather) plus the runtime's per-worker counters.

use wino_bench::{
    figure6_phase_capture, figure6_rows, geometric_mean, Figure6Row, Report, TablePrinter,
};

fn main() {
    let mut report = Report::new(
        "figure6",
        "Figure 6 — Optimized vs non-optimized Winograd kernels (GTX 1080 Ti model)",
    );
    let rows = figure6_rows();
    for batch in [1usize, 5, 20] {
        report.line(format!("batch size = {batch}"));
        let mut t =
            TablePrinter::new(&["F(m,r)", "non-optimized (ms)", "optimized (ms)", "speedup"]);
        for row in rows.iter().filter(|r| r.batch == batch) {
            t.row(vec![
                format!("F({},{})", row.m, row.r),
                format!("{:.4}", row.non_optimized_ms),
                format!("{:.4}", row.optimized_ms),
                format!("{:.2}x", row.speedup()),
            ]);
        }
        report.table(&t);
        report.blank();
    }
    let speedups: Vec<f64> = rows.iter().map(Figure6Row::speedup).collect();
    report.line(format!(
        "geometric-mean speedup {:.2}x, max {:.2}x (paper: up to 1.65x, largest gains\n\
         when alpha = 8); 7x7 configurations are much slower in absolute terms, which\n\
         reproduces the paper's advice against Winograd beyond 5x5 filters.",
        geometric_mean(&speedups),
        speedups.iter().cloned().fold(0.0, f64::max),
    ));
    if wino_probe::enabled() {
        let (nonfused_ms, fused_ms) = figure6_phase_capture(4);
        report.line(format!(
            "\nmeasured CPU phase capture F(4,3) on the representative layer:\n\
             non-fused {nonfused_ms:.2} ms, fused {fused_ms:.2} ms (per-phase spans in the \
             probe artifact)",
        ));
    }
    report.finish();
}
