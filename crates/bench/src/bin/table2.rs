//! Regenerates Table 2: the experimental setup — here, the modelled
//! device profiles standing in for the paper's three platforms.

use wino_bench::TablePrinter;
use wino_gpu::paper_devices;

fn main() {
    println!("Table 2 — Experimental setup (modelled devices; see DESIGN.md §2)\n");
    let mut t = TablePrinter::new(&[
        "device",
        "SMs/CUs",
        "clock (GHz)",
        "peak FP32 (TFLOPS)",
        "bandwidth (GB/s)",
        "shared/block (KB)",
        "max thr/block",
        "warp",
        "launch (us)",
    ]);
    for d in paper_devices() {
        t.row(vec![
            d.name.to_string(),
            d.sm_count.to_string(),
            format!("{:.2}", d.clock_ghz),
            format!("{:.2}", d.peak_flops() / 1e12),
            format!("{:.0}", d.mem_bandwidth_gbps),
            format!("{}", d.shared_per_block / 1024),
            d.max_threads_per_block.to_string(),
            d.warp_size.to_string(),
            format!("{:.0}", d.launch_overhead_us),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nPaper platforms: NVIDIA GTX 1080 Ti (CUDA 10, cuDNN 7.3), AMD RX 580\n\
         (MIOpen 2.1), ARM Mali-G71 MP8 on HiKey 960 (ARM Compute Library 20.02.1).\n\
         Vendor libraries are simulated; see crates/vendor."
    );
}
