//! Serve-level chaos drill: a live [`wino_serve::Server`] driven
//! through injected scheduler/executor/response faults, asserting the
//! crash-containment invariants hold in a real process:
//!
//! 1. **Exactly one terminal response** per submitted request — every
//!    wait resolves Ok or Err under a watchdog, never hangs, never
//!    double-delivers (the take-once response slot makes a double
//!    delivery structurally impossible; the watchdog catches hangs).
//! 2. **Bit-identity** — every Ok output equals a direct
//!    [`GuardedConv`] run on the engine that served it.
//! 3. **`serve.queue_depth` returns to 0** after shutdown.
//!
//! Three modes:
//!
//! - default: 12 sequential requests with coalescing off under
//!   whatever `WINO_FAULT` serve-site spec is armed. Coalescing off +
//!   sequential submission makes every counter exact; `scripts/ci.sh`
//!   runs the serve-site matrix and asserts
//!   `serve.batch_panics`/`serve.executor_restarts`/... per site.
//! - `--breaker-smoke`: trip-and-recover under `WINO_FAULT=
//!   transform:nan` — three unclean batches trip the layer breaker to
//!   the terminal fallback, the fault is disarmed in-process, and
//!   after the cool-down a half-open probe batch closes it
//!   (`serve.breaker.open/half_open/close` each exactly 1).
//! - `--seed <n>`: randomized-but-seeded schedule — waves of
//!   concurrent submissions, each wave under a fault drawn from the
//!   serve-site list (or none), then a clean wave; the three
//!   invariants are asserted across the whole run.
//!
//! Output: `drill:` narration, then `counter`/`gauge`/`health` lines
//! for `grep -qx` asserts.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wino_guard::{fault, GuardedConv};
use wino_probe::{self as probe, Mode};
use wino_serve::{
    BreakerState, ConvRequest, ConvResponse, HealthStatus, PlanRegistry, ServeError, Server,
    ServerConfig,
};
use wino_tensor::{ConvDesc, Tensor4};

/// A hang is an invariant violation, not a slow test: fail loudly.
const WATCHDOG: Duration = Duration::from_secs(120);

/// Counters the CI matrix asserts on; interned before printing so
/// zeros still print and `grep -qx` can tell "zero" from "missing".
const DRILL_COUNTERS: &[&str] = &[
    "serve.enqueued",
    "serve.shed",
    "serve.executed",
    "serve.internal_errors",
    "serve.batch_panics",
    "serve.responses_dropped",
    "serve.executor_deaths",
    "serve.executor_restarts",
    "serve.scheduler_deaths",
    "serve.breaker.open",
    "serve.breaker.half_open",
    "serve.breaker.close",
    "serve.lock_poison_recovered",
    "guard.demote.guardrail",
    "fault.injected.serve_exec",
    "fault.injected.serve_sched",
    "fault.injected.serve_resp",
];

const LAYER: &str = "chaos/conv";

fn drill_registry() -> Arc<PlanRegistry> {
    let registry = PlanRegistry::new();
    let desc = ConvDesc::new(3, 1, 1, 8, 1, 16, 16, 8);
    let mut rng = StdRng::seed_from_u64(0xc4a0);
    let weights = Tensor4::random(8, 8, 3, 3, -0.25, 0.25, &mut rng);
    registry
        .register_layer(LAYER, desc, weights)
        .expect("drill layer registers");
    Arc::new(registry)
}

fn drill_input(seed: u64) -> Tensor4<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor4::random(1, 8, 16, 16, -1.0, 1.0, &mut rng)
}

/// Re-runs one request directly on the engine that served it and
/// asserts bit-identity with the served output.
fn assert_bit_identical(registry: &PlanRegistry, seed: u64, resp: &ConvResponse) {
    let plan = registry.get(LAYER).expect("drill layer");
    let direct = GuardedConv::new(plan.warm.as_ref().map_or(4, |p| p.spec().m))
        .with_chain(vec![resp.served_by])
        .with_gemm_config(plan.gemm)
        .run(&drill_input(seed), &plan.weights, &plan.desc)
        .unwrap_or_else(|e| panic!("direct re-run on {} failed: {e}", resp.served_by));
    assert_eq!(
        resp.output.data(),
        direct.output.data(),
        "request {seed} served by {} is not bit-identical to a direct run",
        resp.served_by
    );
}

#[derive(Default)]
struct Tally {
    ok: usize,
    internal: usize,
    refused: usize,
    shed: usize,
}

/// Deterministic sequential drill: 12 requests, coalescing off, one
/// executor, restart budget 8 — the counter values per armed fault
/// site are exact and CI asserts them.
fn run_matrix_drill(registry: &Arc<PlanRegistry>) -> Tally {
    const REQUESTS: u64 = 12;
    let server = Server::start(
        Arc::clone(registry),
        ServerConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            executors: 1,
            max_executor_restarts: 8,
            restart_backoff: Duration::from_millis(1),
            ..ServerConfig::default()
        },
    );
    let mut tally = Tally::default();
    for seed in 0..REQUESTS {
        match server.submit(ConvRequest::new(LAYER, drill_input(seed))) {
            Ok(handle) => match handle
                .wait_timeout(WATCHDOG)
                .expect("invariant violated: request hung past the watchdog")
            {
                Ok(resp) => {
                    // Bit-identity can only be checked while no serve
                    // fault can fire mid-check; the direct re-run
                    // never passes a serve hook, so this is safe even
                    // with a fault armed.
                    assert_bit_identical(registry, seed, &resp);
                    tally.ok += 1;
                }
                Err(ServeError::Internal { .. }) => tally.internal += 1,
                Err(ServeError::ShuttingDown) => tally.refused += 1,
                Err(other) => panic!("unexpected terminal error: {other}"),
            },
            Err(ServeError::ShuttingDown) => tally.refused += 1,
            Err(other) => panic!("unexpected submit refusal: {other}"),
        }
    }
    let health = server.health();
    println!(
        "health status={:?} scheduler_alive={} executors_alive={} restarts={} batch_panics={}",
        health.status,
        health.scheduler_alive,
        health.executors_alive,
        health.executor_restarts,
        health.batch_panics
    );
    server.shutdown();
    tally
}

/// Breaker trip-and-recover smoke. Requires `WINO_FAULT=transform:nan`
/// armed by the caller: three unclean full-chain batches trip the
/// layer to its terminal fallback, disarming the fault and waiting out
/// the cool-down lets the half-open probe close it again.
fn run_breaker_smoke(registry: &Arc<PlanRegistry>) {
    const COOLDOWN: Duration = Duration::from_millis(150);
    assert!(
        fault::armed(fault::Site::Transform),
        "breaker smoke needs WINO_FAULT=transform:nan armed"
    );
    let server = Server::start(
        Arc::clone(registry),
        ServerConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            executors: 1,
            breaker_threshold: 3,
            breaker_cooldown: COOLDOWN,
            ..ServerConfig::default()
        },
    );
    let plan = registry.get(LAYER).expect("drill layer");
    let tail = plan.tail_engine();
    // The response for a batch is delivered *before* the executor
    // feeds the outcome back to the breaker, so a health read right
    // after `infer` can briefly see the pre-resolve state; batch
    // execution itself is serial per executor, so only this observer
    // needs to wait.
    let await_state = |server: &Server, want: BreakerState| -> BreakerState {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let state = server
                .health()
                .breakers
                .first()
                .expect("breaker seeded")
                .state;
            if state == want || Instant::now() >= deadline {
                return state;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    };
    // Three poisoned full-chain batches: each demotes inside the
    // guard (unclean), the third trips the breaker.
    for seed in 0..3u64 {
        let resp = server
            .infer(ConvRequest::new(LAYER, drill_input(seed)))
            .expect("guard absorbs the poisoned transform");
        println!(
            "drill: poisoned request {seed} served by {}",
            resp.served_by
        );
    }
    let open = await_state(&server, BreakerState::Open);
    println!("drill: breaker after 3 unclean batches: {open}");
    assert_eq!(open, BreakerState::Open, "threshold 3 must trip on the 3rd");
    // While open, requests ride the terminal fallback only — the
    // poisoned Winograd transform never runs.
    let fallback = server
        .infer(ConvRequest::new(LAYER, drill_input(3)))
        .expect("fallback serves while open");
    assert_eq!(
        fallback.served_by, tail,
        "open breaker must serve the terminal fallback"
    );
    // Heal the fault, wait out the cool-down: the next batch is the
    // half-open probe on the full chain; clean, so the breaker closes.
    fault::init_from_value("off");
    std::thread::sleep(COOLDOWN + Duration::from_millis(50));
    let probe_resp = server
        .infer(ConvRequest::new(LAYER, drill_input(4)))
        .expect("half-open probe serves");
    println!("drill: half-open probe served by {}", probe_resp.served_by);
    let closed = await_state(&server, BreakerState::Closed);
    assert_eq!(
        closed,
        BreakerState::Closed,
        "clean probe must close the breaker"
    );
    let recovered = server
        .infer(ConvRequest::new(LAYER, drill_input(5)))
        .expect("closed breaker serves the full chain");
    assert_ne!(
        recovered.served_by, tail,
        "after recovery the full chain serves again"
    );
    server.shutdown();
    println!("drill: breaker tripped on poison and recovered after cool-down");
}

/// Randomized-but-seeded schedule: waves of concurrent submissions,
/// each wave under a serve-site fault drawn from the seeded RNG (or
/// none), finishing with a clean wave. Bit-identity for Ok responses
/// is checked after the run, with every fault disarmed.
fn run_seeded_schedule(registry: &Arc<PlanRegistry>, seed: u64, waves: usize) -> Tally {
    const PER_WAVE: usize = 6;
    let mut rng = StdRng::seed_from_u64(seed);
    let server = Server::start(
        Arc::clone(registry),
        ServerConfig {
            max_batch: 2,
            max_wait: Duration::from_micros(200),
            executors: 2,
            // The schedule may kill one executor per wave; give the
            // supervisor budget for all of them.
            max_executor_restarts: (waves as u64) * 2,
            restart_backoff: Duration::from_millis(1),
            ..ServerConfig::default()
        },
    );
    let mut tally = Tally::default();
    let mut served: Vec<(u64, ConvResponse)> = Vec::new();
    for wave in 0..=waves {
        let spec = if wave == waves {
            // Final wave is always clean: the server must still serve
            // after the whole schedule.
            String::new()
        } else {
            let nth = rng.gen_range(1..=4u32);
            match rng.gen_range(0..4u32) {
                0 => format!("serve_exec:panic:{nth}"),
                1 => format!("serve_resp:drop:{nth}"),
                2 => format!("serve_sched:stall:{nth}"),
                _ => String::new(),
            }
        };
        fault::init_from_value(&spec);
        println!(
            "drill: wave {wave} fault={}",
            if spec.is_empty() { "<none>" } else { &spec }
        );
        let outcomes: Vec<(u64, Option<Result<ConvResponse, ServeError>>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..PER_WAVE)
                    .map(|i| {
                        let server = &server;
                        let req_seed = (wave * PER_WAVE + i) as u64;
                        scope.spawn(move || {
                            match server.submit(ConvRequest::new(LAYER, drill_input(req_seed))) {
                                Ok(handle) => (req_seed, handle.wait_timeout(WATCHDOG)),
                                Err(refused) => (req_seed, Some(Err(refused))),
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("submitter thread panicked"))
                    .collect()
            });
        for (req_seed, outcome) in outcomes {
            match outcome.expect("invariant violated: request hung past the watchdog") {
                Ok(resp) => {
                    tally.ok += 1;
                    served.push((req_seed, resp));
                }
                Err(ServeError::Internal { .. }) => tally.internal += 1,
                Err(ServeError::ShuttingDown) => tally.refused += 1,
                Err(ServeError::Overloaded { .. }) => tally.shed += 1,
                Err(other) => panic!("unexpected terminal error: {other}"),
            }
        }
    }
    fault::init_from_value("off");
    assert!(
        tally.ok > 0,
        "the clean final wave must serve at least one request"
    );
    for (req_seed, resp) in &served {
        assert_bit_identical(registry, *req_seed, resp);
    }
    let health = server.health();
    assert_ne!(
        health.status,
        HealthStatus::Failed,
        "the schedule stays within the restart budget"
    );
    println!(
        "health status={:?} scheduler_alive={} executors_alive={} restarts={} batch_panics={}",
        health.status,
        health.scheduler_alive,
        health.executors_alive,
        health.executor_restarts,
        health.batch_panics
    );
    server.shutdown();
    tally
}

fn main() {
    // Injected panics are expected traffic: keep stderr quiet so the
    // counter lines stay greppable.
    std::panic::set_hook(Box::new(|info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("wino-fault"))
            || info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("wino-fault"));
        if !injected {
            eprintln!("{info}");
        }
    }));
    probe::set_mode(Mode::Summary);
    wino_telemetry::init_from_env();
    // Register layers *before* arming `WINO_FAULT`: registration
    // precomputes the warm filter transforms through the same hooked
    // transform path, and a fault that poisons those cached filters
    // would outlive its own disarm. Real faults strike at runtime,
    // not at model load.
    let registry = drill_registry();
    match fault::init_from_env() {
        Some(spec) => println!("drill: fault armed: {spec}"),
        None => println!("drill: no fault armed"),
    }

    let mut breaker_smoke = false;
    let mut seed: Option<u64> = None;
    let mut waves = 4usize;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--breaker-smoke" => breaker_smoke = true,
            "--seed" => seed = Some(value("--seed").parse().expect("seed")),
            "--waves" => waves = value("--waves").parse().expect("count"),
            other => panic!("unknown argument {other:?}"),
        }
    }

    if breaker_smoke {
        run_breaker_smoke(&registry);
    } else {
        let tally = match seed {
            Some(seed) => run_seeded_schedule(&registry, seed, waves),
            None => run_matrix_drill(&registry),
        };
        println!(
            "drill: outcomes ok={} internal={} refused={} shed={}",
            tally.ok, tally.internal, tally.refused, tally.shed
        );
    }

    for name in DRILL_COUNTERS {
        probe::counter(name);
    }
    for (name, value) in probe::counter_values() {
        println!("counter {name}={value}");
    }
    for (name, current, peak) in probe::gauge_values() {
        println!("gauge {name}={current} peak={peak}");
    }
}
