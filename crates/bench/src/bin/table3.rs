//! Regenerates Table 3: selected polynomial points per internal tile
//! size α and their relative error (FP32 Winograd vs FP64 direct,
//! median over random trials).
//!
//! `WINO_TRIALS` overrides the trial count (default 2000; the paper
//! uses 10000).

use wino_bench::{fmt_sci, table3_rows, TablePrinter};

fn main() {
    let trials: usize = std::env::var("WINO_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000);
    println!("Table 3 — Polynomial points and relative error ({trials} trials per alpha)\n");
    let mut t = TablePrinter::new(&[
        "alpha",
        "Points",
        "Measured RelErr",
        "Paper RelErr",
        "ratio",
    ]);
    for row in table3_rows(trials, 0xACC) {
        t.row(vec![
            row.alpha.to_string(),
            row.points.clone(),
            fmt_sci(row.measured),
            fmt_sci(row.paper),
            format!("{:.2}", row.measured / row.paper),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nNote: absolute errors depend on the probe convolution and RNG; the paper's\n\
         trend (monotone growth over alpha, ~5 orders of magnitude from 4 to 16) is\n\
         the reproduced quantity."
    );
}
