//! Criterion timings of the SGEMM substrate: blocked vs naive, plus
//! the batched shape the non-fused Winograd multiplication stage uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;
use wino_gemm::{batched_sgemm, gemm_flops, sgemm, sgemm_naive, BatchedGemmShape};

fn random_vec(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn bench_sgemm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let mut group = c.benchmark_group("sgemm");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);

    for n in [64usize, 192] {
        let a = random_vec(&mut rng, n * n);
        let b = random_vec(&mut rng, n * n);
        let mut cbuf = vec![0.0f32; n * n];
        group.throughput(Throughput::Elements(gemm_flops(n, n, n)));
        group.bench_function(BenchmarkId::new("blocked", n), |bch| {
            bch.iter(|| sgemm(black_box(&a), black_box(&b), &mut cbuf, n, n, n))
        });
        group.bench_function(BenchmarkId::new("naive", n), |bch| {
            bch.iter(|| sgemm_naive(black_box(&a), black_box(&b), &mut cbuf, n, n, n))
        });
    }

    // The Winograd multiplication stage: α² = 64 batched multiplies of
    // K×C · C×P for a 14×14 F(6,3) layer (K=64, C=32, P=9).
    let shape = BatchedGemmShape {
        batches: 64,
        m: 64,
        k: 32,
        n: 9,
    };
    let a = random_vec(&mut rng, shape.a_len());
    let b = random_vec(&mut rng, shape.b_len());
    let mut cbuf = vec![0.0f32; shape.c_len()];
    group.throughput(Throughput::Elements(shape.flops()));
    group.bench_function("batched_winograd_stage", |bch| {
        bch.iter(|| batched_sgemm(&shape, black_box(&a), black_box(&b), &mut cbuf))
    });
    group.finish();
}

criterion_group!(benches, bench_sgemm);
criterion_main!(benches);
