//! Criterion timings of the tile-transform recipes — the *measured*
//! counterpart of Figure 6: optimized recipes vs naive dense
//! matrix-multiplication recipes executing on the CPU.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use wino_conv::TileTransformer;
use wino_symbolic::RecipeOptions;
use wino_transform::{TransformRecipes, WinogradSpec};

fn bench_transforms(c: &mut Criterion) {
    let mut group = c.benchmark_group("input_transform_per_tile");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(30);

    for (m, r) in [(2usize, 3usize), (6, 3), (4, 5)] {
        let spec = WinogradSpec::new(m, r).expect("valid");
        let alpha = spec.alpha();
        let optimized = TransformRecipes::generate(spec, RecipeOptions::optimized()).expect("ok");
        let naive = TransformRecipes::generate_naive(spec).expect("ok");
        let tile: Vec<f32> = (0..alpha * alpha).map(|k| k as f32 * 0.01 - 0.3).collect();
        let mut out = vec![0.0f32; alpha * alpha];

        let mut tt = TileTransformer::new(&optimized.input);
        group.bench_function(BenchmarkId::new("optimized", format!("F({m},{r})")), |b| {
            b.iter(|| tt.transform(black_box(&tile), &mut out))
        });
        let mut tn = TileTransformer::new(&naive.input);
        group.bench_function(
            BenchmarkId::new("naive-matmul", format!("F({m},{r})")),
            |b| b.iter(|| tn.transform(black_box(&tile), &mut out)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transforms);
criterion_main!(benches);
