//! Ablation of the symbolic pipeline's stages: how much each of the
//! paper's four optimization steps contributes, in recipe size and in
//! measured per-tile execution time (F(6,3), the α = 8 sweet spot).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use wino_conv::TileTransformer;
use wino_symbolic::RecipeOptions;
use wino_transform::{TransformRecipes, WinogradSpec};

fn variants() -> Vec<(&'static str, RecipeOptions)> {
    vec![
        (
            "all-off",
            RecipeOptions {
                cse: false,
                factorize: false,
                fma: false,
            },
        ),
        (
            "cse-only",
            RecipeOptions {
                cse: true,
                factorize: false,
                fma: false,
            },
        ),
        (
            "factorize-only",
            RecipeOptions {
                cse: false,
                factorize: true,
                fma: false,
            },
        ),
        (
            "cse+factorize",
            RecipeOptions {
                cse: true,
                factorize: true,
                fma: false,
            },
        ),
        ("all-on", RecipeOptions::optimized()),
    ]
}

fn bench_ablation(c: &mut Criterion) {
    let spec = WinogradSpec::new(6, 3).expect("valid");
    let alpha = spec.alpha();
    let tile: Vec<f32> = (0..alpha * alpha)
        .map(|k| (k as f32) * 0.013 - 0.4)
        .collect();
    let mut out = vec![0.0f32; alpha * alpha];

    let mut group = c.benchmark_group("pipeline_ablation_f63_input_transform");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(30);
    for (label, opts) in variants() {
        let recipes = TransformRecipes::generate(spec, opts).expect("generates");
        let ops = recipes.input.op_count();
        let mut tt = TileTransformer::new(&recipes.input);
        group.bench_function(BenchmarkId::new(label, format!("{ops}")), |b| {
            b.iter(|| tt.transform(black_box(&tile), &mut out))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
