//! Criterion timings of the meta-programming layer itself: symbolic
//! recipe derivation (run once per F(m,r) and cached in the recipe
//! database) and full kernel-plan generation (run once per tuning
//! point).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use wino_codegen::{generate_plan, CodegenOptions, PlanVariant};
use wino_num::RatMat;
use wino_symbolic::{generate_recipe, RecipeOptions};
use wino_tensor::ConvDesc;
use wino_transform::{table3_points, toom_cook_matrices, WinogradSpec};

fn bench_codegen(c: &mut Criterion) {
    let mut group = c.benchmark_group("meta_programming");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(20);

    // Symbolic pipeline cost per transform matrix.
    for alpha in [4usize, 8, 12] {
        let spec = WinogradSpec::new(alpha - 2, 3).expect("valid");
        let mats = toom_cook_matrices(spec, &table3_points(alpha).expect("ok")).expect("ok");
        let bt: RatMat = mats.b_t.clone();
        group.bench_function(
            BenchmarkId::new("recipe_pipeline", format!("alpha{alpha}")),
            |b| b.iter(|| generate_recipe(black_box(&bt), &RecipeOptions::optimized())),
        );
    }

    // Toom-Cook exact matrix construction.
    group.bench_function("toom_cook_alpha8", |b| {
        let spec = WinogradSpec::new(6, 3).expect("valid");
        let points = table3_points(8).expect("ok");
        b.iter(|| toom_cook_matrices(black_box(spec), black_box(&points)).unwrap())
    });

    // Full plan generation (templates + cost derivation), as the
    // auto-tuner pays it per point.
    let desc = ConvDesc::new(3, 1, 1, 64, 1, 14, 14, 32);
    for (label, variant) in [
        ("nonfused_m6", PlanVariant::WinogradNonFused { m: 6 }),
        ("fused_m2", PlanVariant::WinogradFused { m: 2 }),
        ("im2col", PlanVariant::Im2col),
    ] {
        group.bench_function(BenchmarkId::new("generate_plan", label), |b| {
            b.iter(|| generate_plan(black_box(&desc), variant, &CodegenOptions::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codegen);
criterion_main!(benches);
