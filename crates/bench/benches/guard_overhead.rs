//! Criterion timings backing EXPERIMENTS.md's claim that the guard
//! layer is free when you don't use its checks: the same fused
//! Winograd convolution run raw, through `GuardedConv` with guardrails
//! disabled (chain dispatch + one disarmed fault check only), and
//! through `GuardedConv` with the full policy (finite scan + direct
//! spot-check). The first two should agree to within run-to-run
//! noise; the third shows the price of the guardrails themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;
use wino_conv::{conv_winograd, WinogradConfig, WinogradVariant};
use wino_guard::{GuardedConv, GuardrailPolicy};
use wino_tensor::{ConvDesc, Tensor4};

fn bench_guard_overhead(c: &mut Criterion) {
    let desc = ConvDesc::new(3, 1, 1, 32, 1, 28, 28, 16);
    let mut rng = StdRng::seed_from_u64(11);
    let input = Tensor4::<f32>::random(1, 16, 28, 28, -1.0, 1.0, &mut rng);
    let filters = Tensor4::<f32>::random(32, 16, 3, 3, -1.0, 1.0, &mut rng);
    let cfg = WinogradConfig::new(4).with_variant(WinogradVariant::Fused);

    let mut group = c.benchmark_group("guard_overhead_conv3x3_28x28x16to32");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);

    group.bench_function("raw-winograd", |b| {
        b.iter(|| conv_winograd(black_box(&input), black_box(&filters), &desc, &cfg).unwrap())
    });

    let disabled = GuardedConv::new(4).with_policy(GuardrailPolicy::disabled());
    group.bench_function("guarded-checks-off", |b| {
        b.iter(|| {
            disabled
                .run(black_box(&input), black_box(&filters), &desc)
                .unwrap()
        })
    });

    let full = GuardedConv::new(4).with_policy(GuardrailPolicy::full());
    group.bench_function("guarded-full-policy", |b| {
        b.iter(|| {
            full.run(black_box(&input), black_box(&filters), &desc)
                .unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_guard_overhead);
criterion_main!(benches);
