//! Criterion timings of the analytic device model: how fast the
//! simulator evaluates plans (the auto-tuner's inner loop).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use wino_codegen::{generate_plan, CodegenOptions, PlanVariant};
use wino_gpu::{estimate_plan_ms, gtx_1080_ti};
use wino_tensor::ConvDesc;

fn bench_model(c: &mut Criterion) {
    let desc = ConvDesc::new(3, 1, 1, 64, 1, 14, 14, 32);
    let plan = generate_plan(
        &desc,
        PlanVariant::WinogradNonFused { m: 6 },
        &CodegenOptions::default(),
    )
    .expect("generates");
    let device = gtx_1080_ti();
    let mut group = c.benchmark_group("device_model");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));
    group.bench_function("estimate_plan", |b| {
        b.iter(|| estimate_plan_ms(black_box(&device), black_box(&plan)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_model);
criterion_main!(benches);
