//! Thread-scaling of the Winograd engines on the `wino-runtime` pool.
//!
//! Sweeps the tuner's `threads` axis (the CPU counterpart of Table 1's
//! MNb thread blocking) over a Table-4-sized layer, timing both
//! engines under explicit `Runtime::with_threads` pools. The GEMM
//! blocking comes from `TuningPoint::gemm_config()` — the same
//! plumbing the tuner uses — and every parallel run is checked
//! bit-identical to the serial reference before it is timed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;
use wino_conv::{conv_winograd_rt, WinogradConfig, WinogradVariant};
use wino_runtime::Runtime;
use wino_tensor::{ConvDesc, Tensor4};
use wino_tuner::{untuned_point, THREADS_VALUES};

fn bench_thread_scaling(c: &mut Criterion) {
    // ResNet/VGG-class layer: 64 → 64 channels at 56×56 (Table 4 scale).
    let desc = ConvDesc::new(3, 1, 1, 64, 1, 56, 56, 64);
    let mut rng = StdRng::seed_from_u64(7);
    let input = Tensor4::<f32>::random(1, 64, 56, 56, -1.0, 1.0, &mut rng);
    let filters = Tensor4::<f32>::random(64, 64, 3, 3, -1.0, 1.0, &mut rng);
    let gemm = untuned_point().gemm_config();

    for (label, variant) in [
        ("nonfused-m4", WinogradVariant::NonFused),
        ("fused-m4", WinogradVariant::Fused),
    ] {
        let cfg = WinogradConfig::new(4)
            .with_variant(variant)
            .with_gemm_config(gemm);
        let reference = conv_winograd_rt(&input, &filters, &desc, &cfg, &Runtime::serial())
            .expect("serial reference");

        let mut group = c.benchmark_group(&format!("thread_scaling/{label}"));
        group.warm_up_time(Duration::from_millis(400));
        group.measurement_time(Duration::from_secs(2));
        group.sample_size(10);

        for &threads in &THREADS_VALUES {
            let rt = Runtime::with_threads(threads);
            // The runtime contract: thread count is unobservable in
            // the output bits.
            let probe = conv_winograd_rt(&input, &filters, &desc, &cfg, &rt).expect("parallel run");
            assert!(
                reference
                    .data()
                    .iter()
                    .zip(probe.data())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{label}: {threads}-lane output diverged from serial bits"
            );
            group.bench_function(BenchmarkId::from_parameter(threads), |b| {
                b.iter(|| {
                    conv_winograd_rt(black_box(&input), black_box(&filters), &desc, &cfg, &rt)
                        .unwrap()
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_thread_scaling);
criterion_main!(benches);
