//! Criterion timings of the real CPU convolution engines: the
//! measured (not modelled) counterpart of the paper's engine
//! comparison. Direct vs im2col+GEMM vs Winograd (both variants,
//! small and sweet-spot tile sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;
use wino_conv::{conv_direct_f32, conv_im2col, conv_winograd, WinogradConfig, WinogradVariant};
use wino_tensor::{ConvDesc, Tensor4};

fn bench_engines(c: &mut Criterion) {
    let desc = ConvDesc::new(3, 1, 1, 64, 1, 28, 28, 32);
    let mut rng = StdRng::seed_from_u64(1);
    let input = Tensor4::<f32>::random(1, 32, 28, 28, -1.0, 1.0, &mut rng);
    let filters = Tensor4::<f32>::random(64, 32, 3, 3, -1.0, 1.0, &mut rng);

    let mut group = c.benchmark_group("conv3x3_28x28x32to64");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);

    group.bench_function("direct", |b| {
        b.iter(|| conv_direct_f32(black_box(&input), black_box(&filters), &desc).unwrap())
    });
    group.bench_function("im2col+gemm", |b| {
        b.iter(|| conv_im2col(black_box(&input), black_box(&filters), &desc).unwrap())
    });
    for (label, m, variant) in [
        ("winograd-nonfused-m2", 2, WinogradVariant::NonFused),
        ("winograd-nonfused-m6", 6, WinogradVariant::NonFused),
        ("winograd-fused-m2", 2, WinogradVariant::Fused),
        ("winograd-fused-m6", 6, WinogradVariant::Fused),
    ] {
        let cfg = WinogradConfig::new(m).with_variant(variant);
        group.bench_function(label, |b| {
            b.iter(|| conv_winograd(black_box(&input), black_box(&filters), &desc, &cfg).unwrap())
        });
    }
    group.finish();

    // 5×5 layer — the case vendor Winograd implementations skip.
    let desc5 = ConvDesc::new(5, 1, 2, 32, 1, 28, 28, 16);
    let input5 = Tensor4::<f32>::random(1, 16, 28, 28, -1.0, 1.0, &mut rng);
    let filters5 = Tensor4::<f32>::random(32, 16, 5, 5, -1.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("conv5x5_28x28x16to32");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);
    group.bench_function("im2col+gemm", |b| {
        b.iter(|| conv_im2col(black_box(&input5), black_box(&filters5), &desc5).unwrap())
    });
    group.bench_function(BenchmarkId::new("winograd-nonfused", "m4"), |b| {
        let cfg = WinogradConfig::new(4);
        b.iter(|| conv_winograd(black_box(&input5), black_box(&filters5), &desc5, &cfg).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
