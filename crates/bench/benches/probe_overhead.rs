//! Criterion timings backing EXPERIMENTS.md's claim that the probe's
//! disabled path costs nothing measurable: the same Winograd
//! convolution with tracing off vs. recording (summary mode). The
//! off/baseline pair should agree to within run-to-run noise; summary
//! mode shows the (small) price of actually recording spans.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;
use wino_conv::{conv_winograd, WinogradConfig, WinogradVariant};
use wino_probe::{self as probe, Mode};
use wino_tensor::{ConvDesc, Tensor4};

fn bench_probe_overhead(c: &mut Criterion) {
    let desc = ConvDesc::new(3, 1, 1, 32, 1, 28, 28, 16);
    let mut rng = StdRng::seed_from_u64(9);
    let input = Tensor4::<f32>::random(1, 16, 28, 28, -1.0, 1.0, &mut rng);
    let filters = Tensor4::<f32>::random(32, 16, 3, 3, -1.0, 1.0, &mut rng);
    let cfg = WinogradConfig::new(4).with_variant(WinogradVariant::NonFused);

    let mut group = c.benchmark_group("probe_overhead_conv3x3_28x28x16to32");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);

    probe::set_mode(Mode::Off);
    group.bench_function("tracing-off", |b| {
        b.iter(|| conv_winograd(black_box(&input), black_box(&filters), &desc, &cfg).unwrap())
    });

    probe::set_mode(Mode::Summary);
    group.bench_function("tracing-summary", |b| {
        b.iter(|| conv_winograd(black_box(&input), black_box(&filters), &desc, &cfg).unwrap())
    });
    probe::set_mode(Mode::Off);
    // Drop the recorded spans so the buffers don't grow unbounded.
    probe::reset();

    group.finish();
}

criterion_group!(benches, bench_probe_overhead);
criterion_main!(benches);
