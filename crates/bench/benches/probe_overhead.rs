//! Criterion timings backing EXPERIMENTS.md's claim that the probe's
//! disabled path costs nothing measurable: the same Winograd
//! convolution with tracing off vs. recording (summary mode), plus
//! microbenchmarks of the telemetry primitives themselves — a
//! histogram record with stats off vs. on, and a span completion with
//! the flight recorder armed (one ring append) vs. disarmed. The
//! off/baseline pairs should agree to within run-to-run noise.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;
use wino_conv::{conv_winograd, WinogradConfig, WinogradVariant};
use wino_probe::{self as probe, Mode};
use wino_tensor::{ConvDesc, Tensor4};

fn bench_probe_overhead(c: &mut Criterion) {
    let desc = ConvDesc::new(3, 1, 1, 32, 1, 28, 28, 16);
    let mut rng = StdRng::seed_from_u64(9);
    let input = Tensor4::<f32>::random(1, 16, 28, 28, -1.0, 1.0, &mut rng);
    let filters = Tensor4::<f32>::random(32, 16, 3, 3, -1.0, 1.0, &mut rng);
    let cfg = WinogradConfig::new(4).with_variant(WinogradVariant::NonFused);

    let mut group = c.benchmark_group("probe_overhead_conv3x3_28x28x16to32");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);

    probe::set_mode(Mode::Off);
    group.bench_function("tracing-off", |b| {
        b.iter(|| conv_winograd(black_box(&input), black_box(&filters), &desc, &cfg).unwrap())
    });

    probe::set_mode(Mode::Summary);
    group.bench_function("tracing-summary", |b| {
        b.iter(|| conv_winograd(black_box(&input), black_box(&filters), &desc, &cfg).unwrap())
    });
    probe::set_mode(Mode::Off);
    // Drop the recorded spans so the buffers don't grow unbounded.
    probe::reset();

    group.finish();
}

/// The telemetry primitives in isolation: what one histogram record
/// and one flight-ring append cost, against their disabled paths.
fn bench_telemetry_primitives(c: &mut Criterion) {
    static H: probe::Histogram = probe::Histogram::new("bench.hist_overhead");

    let mut group = c.benchmark_group("probe_primitives");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));

    // Disabled: a relaxed load and a branch, no interning.
    probe::set_mode(Mode::Off);
    probe::set_telemetry(false);
    group.bench_function("hist-record-off", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(977);
            H.record(black_box(v));
        })
    });

    // Enabled: bucket/count/sum fetch_add plus a fetch_max.
    probe::set_telemetry(true);
    group.bench_function("hist-record-on", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(977);
            H.record(black_box(v));
        })
    });
    probe::set_telemetry(false);

    // Span completion with the recorder disarmed (tracing off too, so
    // the span is fully inert) vs. armed (one ring append on drop).
    group.bench_function("span-flight-off", |b| {
        b.iter(|| {
            let s = probe::span(black_box("bench.flight_overhead"));
            drop(s);
        })
    });
    probe::flight::set_enabled(true);
    group.bench_function("span-flight-append", |b| {
        b.iter(|| {
            let s = probe::span(black_box("bench.flight_overhead"));
            drop(s);
        })
    });
    probe::flight::set_enabled(false);
    probe::reset();

    group.finish();
}

criterion_group!(benches, bench_probe_overhead, bench_telemetry_primitives);
criterion_main!(benches);
