//! Static cost descriptors.
//!
//! Every generated kernel carries a [`CostProfile`] derived by the
//! meta-program from the *same* quantities that shaped its source code
//! (recipe op counts, tile counts, unroll factors). The GPU simulator
//! combines the profile with a device model to estimate runtime; see
//! `wino-gpu` and DESIGN.md §2 for why this substitution preserves the
//! paper's relative-performance results.

/// Aggregate work performed by one kernel launch (all threads).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostProfile {
    /// Total scalar floating-point operations (an FMA counts as 2).
    pub flops: u64,
    /// Bytes read from global memory.
    pub global_load_bytes: u64,
    /// Bytes written to global memory.
    pub global_store_bytes: u64,
    /// Bytes moved through shared memory (loads + stores).
    pub shared_bytes: u64,
    /// Efficiency of global accesses in (0, 1]: 1.0 = perfectly
    /// coalesced, lower values model strided/misaligned patterns that
    /// waste bus width.
    pub coalescing: f64,
    /// Multiplier ≥ 1 on compute time modelling loop/branch/control
    /// overhead. Fully unrolled straight-line code approaches 1.0;
    /// tight rolled loops pay more (§3.2.1 — the motivation for
    /// adaptive unrolling).
    pub control_overhead: f64,
}

impl CostProfile {
    /// A profile with nothing but FLOPs (useful as a builder start).
    pub fn compute_only(flops: u64) -> Self {
        CostProfile {
            flops,
            global_load_bytes: 0,
            global_store_bytes: 0,
            shared_bytes: 0,
            coalescing: 1.0,
            control_overhead: 1.0,
        }
    }

    /// Total global-memory traffic in bytes.
    pub fn global_bytes(&self) -> u64 {
        self.global_load_bytes + self.global_store_bytes
    }

    /// Arithmetic intensity in FLOPs per global byte (∞ when no
    /// global traffic).
    pub fn arithmetic_intensity(&self) -> f64 {
        let b = self.global_bytes();
        if b == 0 {
            f64::INFINITY
        } else {
            self.flops as f64 / b as f64
        }
    }

    /// Component-wise sum; coalescing is traffic-weighted and control
    /// overhead flop-weighted so merged profiles stay meaningful.
    pub fn merge(&self, other: &CostProfile) -> CostProfile {
        let gb = self.global_bytes() + other.global_bytes();
        let coalescing = if gb == 0 {
            1.0
        } else {
            (self.coalescing * self.global_bytes() as f64
                + other.coalescing * other.global_bytes() as f64)
                / gb as f64
        };
        let fl = self.flops + other.flops;
        let control_overhead = if fl == 0 {
            1.0
        } else {
            (self.control_overhead * self.flops as f64
                + other.control_overhead * other.flops as f64)
                / fl as f64
        };
        CostProfile {
            flops: fl,
            global_load_bytes: self.global_load_bytes + other.global_load_bytes,
            global_store_bytes: self.global_store_bytes + other.global_store_bytes,
            shared_bytes: self.shared_bytes + other.shared_bytes,
            coalescing,
            control_overhead,
        }
    }

    /// Validates physical plausibility (finite, positive factors).
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.coalescing) || self.coalescing == 0.0 {
            return Err(format!("coalescing {} outside (0, 1]", self.coalescing));
        }
        if !self.control_overhead.is_finite() || self.control_overhead < 1.0 {
            return Err(format!("control overhead {} < 1", self.control_overhead));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity() {
        let c = CostProfile {
            flops: 400,
            global_load_bytes: 80,
            global_store_bytes: 20,
            shared_bytes: 0,
            coalescing: 1.0,
            control_overhead: 1.0,
        };
        assert_eq!(c.arithmetic_intensity(), 4.0);
        assert_eq!(
            CostProfile::compute_only(5).arithmetic_intensity(),
            f64::INFINITY
        );
    }

    #[test]
    fn merge_weights_factors_by_traffic_and_flops() {
        let a = CostProfile {
            flops: 100,
            global_load_bytes: 100,
            global_store_bytes: 0,
            shared_bytes: 0,
            coalescing: 1.0,
            control_overhead: 2.0,
        };
        let b = CostProfile {
            flops: 300,
            global_load_bytes: 300,
            global_store_bytes: 0,
            shared_bytes: 0,
            coalescing: 0.5,
            control_overhead: 1.0,
        };
        let m = a.merge(&b);
        assert_eq!(m.flops, 400);
        assert!((m.coalescing - 0.625).abs() < 1e-12);
        assert!((m.control_overhead - 1.25).abs() < 1e-12);
    }

    #[test]
    fn merge_of_empty_profiles_is_neutral() {
        let z = CostProfile::compute_only(0);
        let m = z.merge(&z);
        assert_eq!(m.coalescing, 1.0);
        assert_eq!(m.control_overhead, 1.0);
    }

    #[test]
    fn validation() {
        let mut c = CostProfile::compute_only(1);
        assert!(c.validate().is_ok());
        c.coalescing = 0.0;
        assert!(c.validate().is_err());
        c.coalescing = 0.5;
        c.control_overhead = 0.9;
        assert!(c.validate().is_err());
    }
}
