//! Kernel descriptors and per-operation execution plans.

use std::fmt;

use wino_tensor::ConvDesc;

use crate::cost::CostProfile;
use crate::launch::{Backend, LaunchConfig};

/// What a generated kernel computes — the functional contract the GPU
/// simulator executes and the code generator renders as source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelKind {
    /// Non-fused Winograd stage 1a: `U = G·g·Gᵀ` for every `(k, c)`
    /// filter slice.
    FilterTransform {
        /// Output tile size.
        m: usize,
        /// Filter size.
        r: usize,
    },
    /// Non-fused Winograd stage 1b: `V = Bᵀ·d·B` for every input tile.
    InputTransform {
        /// Output tile size.
        m: usize,
        /// Filter size.
        r: usize,
    },
    /// Non-fused Winograd stage 2: the α² batched SGEMMs
    /// `M(ξ,ν) = U(ξ,ν) · V(ξ,ν)` (§3.2.2, after Lavin & Gray).
    BatchedGemm {
        /// Number of independent multiplies (α²).
        batches: usize,
        /// Rows of each A (output channels K).
        m_dim: usize,
        /// Columns of each B (tile count P).
        n_dim: usize,
        /// Inner dimension (input channels C).
        k_dim: usize,
    },
    /// Non-fused Winograd stage 3: `Y = Aᵀ·M·A` plus tile placement.
    OutputTransform {
        /// Output tile size.
        m: usize,
        /// Filter size.
        r: usize,
    },
    /// The single-kernel fused Winograd variant (§3.2.2): transforms,
    /// multiplication and output transform share one launch and keep
    /// data in shared memory.
    FusedWinograd {
        /// Output tile size.
        m: usize,
        /// Filter size.
        r: usize,
    },
    /// Straightforward direct convolution (the no-Winograd baseline).
    DirectConv,
    /// Patch-gathering kernel of the im2col + GEMM lowering.
    Im2col,
    /// A single dense SGEMM `C = A·B`.
    Gemm {
        /// Rows of A / C.
        m_dim: usize,
        /// Columns of B / C.
        n_dim: usize,
        /// Inner dimension.
        k_dim: usize,
    },
}

impl KernelKind {
    /// Short stable identifier used in kernel names and reports.
    pub fn tag(&self) -> &'static str {
        match self {
            KernelKind::FilterTransform { .. } => "wg_filt_xform",
            KernelKind::InputTransform { .. } => "wg_in_xform",
            KernelKind::BatchedGemm { .. } => "wg_batched_sgemm",
            KernelKind::OutputTransform { .. } => "wg_out_xform",
            KernelKind::FusedWinograd { .. } => "wg_fused",
            KernelKind::DirectConv => "conv_direct",
            KernelKind::Im2col => "im2col",
            KernelKind::Gemm { .. } => "sgemm",
        }
    }
}

/// A generated GPU kernel: functional contract, launch geometry,
/// static cost, and the emitted source text.
#[derive(Clone, Debug)]
pub struct Kernel {
    /// Unique name within its plan.
    pub name: String,
    /// Programming interface the source targets.
    pub backend: Backend,
    /// Functional contract.
    pub kind: KernelKind,
    /// Launch geometry and per-block resources.
    pub launch: LaunchConfig,
    /// Static cost descriptor.
    pub cost: CostProfile,
    /// Emitted source code.
    pub source: String,
}

impl Kernel {
    /// Structural sanity checks shared by all generators.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("kernel has no name".into());
        }
        if self.launch.total_threads() == 0 {
            return Err(format!("kernel {}: empty launch", self.name));
        }
        self.cost
            .validate()
            .map_err(|e| format!("kernel {}: {e}", self.name))?;
        if self.source.is_empty() {
            return Err(format!("kernel {}: no source emitted", self.name));
        }
        Ok(())
    }
}

/// The ordered kernel sequence implementing one convolution operation
/// on one device, plus its launch-count-dependent fixed overhead.
#[derive(Clone, Debug)]
pub struct KernelPlan {
    /// The convolution this plan implements.
    pub desc: ConvDesc,
    /// Human-readable variant label (e.g. `"winograd-fused m=4"`).
    pub variant: String,
    /// Kernels in launch order.
    pub kernels: Vec<Kernel>,
}

impl KernelPlan {
    /// Merged cost over all kernels.
    pub fn total_cost(&self) -> CostProfile {
        self.kernels
            .iter()
            .map(|k| &k.cost)
            .fold(CostProfile::compute_only(0), |acc, c| acc.merge(c))
    }

    /// Number of kernel launches (each pays the device launch
    /// overhead).
    pub fn launches(&self) -> usize {
        self.kernels.len()
    }

    /// Validates every kernel.
    pub fn validate(&self) -> Result<(), String> {
        if self.kernels.is_empty() {
            return Err(format!("plan {} has no kernels", self.variant));
        }
        for k in &self.kernels {
            k.validate()?;
        }
        Ok(())
    }
}

impl fmt::Display for KernelPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "plan '{}' for {} ({} kernels)",
            self.variant,
            self.desc,
            self.launches()
        )?;
        for k in &self.kernels {
            writeln!(
                f,
                "  {} [{}] grid={} block={} flops={} gbytes={}",
                k.name,
                k.backend,
                k.launch.grid,
                k.launch.block,
                k.cost.flops,
                k.cost.global_bytes()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::Dim3;

    fn sample_kernel(name: &str, flops: u64) -> Kernel {
        Kernel {
            name: name.into(),
            backend: Backend::Cuda,
            kind: KernelKind::DirectConv,
            launch: LaunchConfig::linear(1024, 128),
            cost: CostProfile::compute_only(flops),
            source: "__global__ void k() {}".into(),
        }
    }

    fn sample_desc() -> ConvDesc {
        ConvDesc::new(3, 1, 1, 8, 1, 8, 8, 4)
    }

    #[test]
    fn plan_cost_aggregates() {
        let plan = KernelPlan {
            desc: sample_desc(),
            variant: "test".into(),
            kernels: vec![sample_kernel("a", 100), sample_kernel("b", 50)],
        };
        assert_eq!(plan.total_cost().flops, 150);
        assert_eq!(plan.launches(), 2);
        plan.validate().unwrap();
    }

    #[test]
    fn validation_catches_defects() {
        let mut k = sample_kernel("a", 1);
        k.source.clear();
        assert!(k.validate().unwrap_err().contains("no source"));
        let mut k = sample_kernel("", 1);
        k.name.clear();
        assert!(k.validate().is_err());
        let mut k = sample_kernel("a", 1);
        k.launch.grid = Dim3::linear(1);
        k.launch.block = Dim3 { x: 0, y: 1, z: 1 };
        assert!(k.validate().unwrap_err().contains("empty launch"));
        let empty = KernelPlan {
            desc: sample_desc(),
            variant: "v".into(),
            kernels: vec![],
        };
        assert!(empty.validate().is_err());
    }

    #[test]
    fn kind_tags_are_stable() {
        assert_eq!(KernelKind::FusedWinograd { m: 2, r: 3 }.tag(), "wg_fused");
        assert_eq!(
            KernelKind::BatchedGemm {
                batches: 16,
                m_dim: 8,
                n_dim: 8,
                k_dim: 8
            }
            .tag(),
            "wg_batched_sgemm"
        );
    }

    #[test]
    fn display_summarizes() {
        let plan = KernelPlan {
            desc: sample_desc(),
            variant: "winograd-fused".into(),
            kernels: vec![sample_kernel("wg_fused_k", 10)],
        };
        let s = plan.to_string();
        assert!(s.contains("winograd-fused"));
        assert!(s.contains("wg_fused_k"));
    }
}
