//! Kernel launch configuration.

use std::fmt;

/// Target GPU programming interface for emitted source (§3.2: CUDA on
/// NVIDIA, Vulkan elsewhere, since it "supports a broader range of
/// GPUs, including mobile platforms").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// NVIDIA CUDA C.
    Cuda,
    /// Vulkan compute (GLSL).
    Vulkan,
    /// OpenCL C (legacy fallback).
    OpenCl,
}

impl Backend {
    /// Keyword introducing a kernel entry point in this backend.
    pub fn kernel_qualifier(&self) -> &'static str {
        match self {
            Backend::Cuda => "__global__ void",
            Backend::Vulkan => "void", // GLSL compute: main() with layout qualifiers
            Backend::OpenCl => "__kernel void",
        }
    }

    /// Qualifier for on-chip scratchpad memory.
    pub fn shared_qualifier(&self) -> &'static str {
        match self {
            Backend::Cuda => "__shared__",
            Backend::Vulkan => "shared",
            Backend::OpenCl => "__local",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backend::Cuda => write!(f, "CUDA"),
            Backend::Vulkan => write!(f, "Vulkan"),
            Backend::OpenCl => write!(f, "OpenCL"),
        }
    }
}

/// A 3-component extent (grid or block dimensions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// X extent.
    pub x: usize,
    /// Y extent.
    pub y: usize,
    /// Z extent.
    pub z: usize,
}

impl Dim3 {
    /// 1-D extent.
    pub fn linear(x: usize) -> Self {
        Dim3 { x, y: 1, z: 1 }
    }

    /// 2-D extent.
    pub fn plane(x: usize, y: usize) -> Self {
        Dim3 { x, y, z: 1 }
    }

    /// Total element count.
    pub fn count(&self) -> usize {
        self.x * self.y * self.z
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

/// Launch configuration and per-block resource usage of one kernel —
/// the inputs to the occupancy model in `wino-gpu`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Grid dimensions (thread blocks).
    pub grid: Dim3,
    /// Block dimensions (threads per block).
    pub block: Dim3,
    /// Shared (scratchpad) memory per block, in bytes.
    pub shared_mem_bytes: usize,
    /// Estimated registers per thread.
    pub regs_per_thread: usize,
}

impl LaunchConfig {
    /// Simple 1-D launch helper covering `total` work items with
    /// `block_size` threads per block.
    pub fn linear(total: usize, block_size: usize) -> Self {
        let bs = block_size.max(1);
        LaunchConfig {
            grid: Dim3::linear(total.div_ceil(bs).max(1)),
            block: Dim3::linear(bs),
            shared_mem_bytes: 0,
            regs_per_thread: 32,
        }
    }

    /// Total threads launched.
    pub fn total_threads(&self) -> usize {
        self.grid.count() * self.block.count()
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> usize {
        self.block.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_launch_covers_work() {
        let lc = LaunchConfig::linear(1000, 256);
        assert_eq!(lc.grid.x, 4);
        assert!(lc.total_threads() >= 1000);
        assert_eq!(lc.threads_per_block(), 256);
    }

    #[test]
    fn linear_launch_never_empty() {
        let lc = LaunchConfig::linear(0, 128);
        assert_eq!(lc.grid.count(), 1);
    }

    #[test]
    fn dim3_helpers() {
        assert_eq!(Dim3::plane(4, 8).count(), 32);
        assert_eq!(Dim3::linear(7).count(), 7);
        assert_eq!(Dim3::linear(7).to_string(), "(7, 1, 1)");
    }

    #[test]
    fn backend_qualifiers() {
        assert_eq!(Backend::Cuda.kernel_qualifier(), "__global__ void");
        assert_eq!(Backend::Vulkan.shared_qualifier(), "shared");
        assert_eq!(Backend::OpenCl.kernel_qualifier(), "__kernel void");
    }
}
