//! # wino-ir — kernel descriptors shared by codegen and the simulator
//!
//! The meta-programming layer (`wino-codegen`) produces [`Kernel`]
//! values: a functional contract ([`KernelKind`]), launch geometry
//! ([`LaunchConfig`]), a static cost descriptor ([`CostProfile`])
//! derived from the same quantities that shaped the source, and the
//! emitted source text itself. The GPU simulator (`wino-gpu`) consumes
//! these descriptors to execute plans functionally and to estimate
//! their runtime on modelled devices. Keeping the descriptor model in
//! its own dependency-light crate decouples producer and consumer.

#![warn(missing_docs)]

mod cost;
mod kernel;
mod launch;

pub use cost::CostProfile;
pub use kernel::{Kernel, KernelKind, KernelPlan};
pub use launch::{Backend, Dim3, LaunchConfig};
