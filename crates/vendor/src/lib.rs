//! # wino-vendor — simulated vendor libraries
//!
//! Stand-ins for the closed-source comparators of the paper's
//! evaluation: cuDNN (Figure 7), MIOpen (Figure 8) and the ARM Compute
//! Library (Figure 9). No vendor binaries exist in this environment,
//! so each library is modelled by the *documented properties* the
//! paper itself uses to explain the results:
//!
//! * **Restricted Winograd versatility** — "cuDNN's fused Winograd
//!   implementation only supports 3 × 3 convolutions" (§4.3); both
//!   vendor Winograds run a fixed small output tile rather than a
//!   per-layer tuned one.
//! * **Better GEMM routines** — "cuDNN can achieve better runtimes for
//!   larger convolutions … attributed to more efficient
//!   matrix-multiplication routines"; modelled as a < 1 multiplier on
//!   GEMM-stage time.
//! * **Library dispatch overhead** — a fixed per-call cost for the
//!   heuristic/algorithm-selection layer, which is what lets generated
//!   kernels win big on small convolutions.
//! * **FP16 GEMM in ACL** — "the ARM compute library uses
//!   half-precision floating-point operations in matrix
//!   multiplications" (§4.3).
//!
//! The multipliers are fixed constants chosen once from the vendor
//! libraries' public benchmark reputation — *not* fitted per-figure.

#![warn(missing_docs)]

use wino_codegen::{generate_plan, CodegenOptions, PlanVariant, Unroll};
use wino_gpu::{estimate_kernel, DeviceProfile};
use wino_ir::{KernelKind, KernelPlan};
use wino_tensor::ConvDesc;

/// A modelled vendor library.
#[derive(Clone, Debug)]
pub struct VendorLibrary {
    /// Library name.
    pub name: &'static str,
    /// Fixed per-convolution dispatch/heuristic overhead in µs.
    pub dispatch_overhead_us: f64,
    /// Multiplier (< 1 is faster) on the library's kernel time,
    /// modelling its hand-tuned (often SASS-level) implementations.
    /// Applied to every kernel of the library's own plans; launch
    /// overhead is not reducible.
    pub gemm_time_factor: f64,
    /// Run GEMM stages in FP16 at the device's FP16 rate.
    pub fp16_gemm: bool,
    /// The only Winograd variant the library implements for a given
    /// convolution, if any.
    pub winograd_variant: fn(&ConvDesc) -> Option<PlanVariant>,
    /// The library's hand-picked SGEMM blocking (vendors tune per
    /// architecture generation, not per layer).
    pub mnt: usize,
    /// Thread blocking companion to `mnt`.
    pub mnb: usize,
}

/// Timing results of one vendor library on one convolution.
#[derive(Clone, Copy, Debug)]
pub struct VendorResult {
    /// The library's Winograd algorithm, when it supports the layer.
    pub winograd_ms: Option<f64>,
    /// The library's fastest algorithm (its internal heuristic pick).
    pub fastest_ms: f64,
}

fn cudnn_winograd(desc: &ConvDesc) -> Option<PlanVariant> {
    // cuDNN's fused Winograd: 3×3 stride-1 only, fixed small tile.
    (desc.ksz == 3 && desc.stride == 1).then_some(PlanVariant::WinogradFused { m: 2 })
}

fn miopen_winograd(desc: &ConvDesc) -> Option<PlanVariant> {
    // MIOpen ships single-kernel, hand-written-assembly 3×3 Winograd
    // ("ConvBinWinograd" .s kernels) — modelled as the fused variant.
    (desc.ksz == 3 && desc.stride == 1).then_some(PlanVariant::WinogradFused { m: 2 })
}

fn acl_winograd(desc: &ConvDesc) -> Option<PlanVariant> {
    (desc.ksz == 3 && desc.stride == 1).then_some(PlanVariant::WinogradNonFused { m: 2 })
}

/// The cuDNN stand-in (NVIDIA desktop).
pub fn cudnn() -> VendorLibrary {
    VendorLibrary {
        name: "cuDNN-sim",
        dispatch_overhead_us: 20.0,
        gemm_time_factor: 0.62,
        fp16_gemm: false,
        winograd_variant: cudnn_winograd,
        mnt: 8,
        mnb: 16,
    }
}

/// The MIOpen stand-in (AMD desktop).
pub fn miopen() -> VendorLibrary {
    VendorLibrary {
        name: "MIOpen-sim",
        dispatch_overhead_us: 25.0,
        gemm_time_factor: 0.72,
        fp16_gemm: false,
        winograd_variant: miopen_winograd,
        mnt: 8,
        mnb: 16,
    }
}

/// The ARM Compute Library stand-in (Mali mobile).
pub fn acl() -> VendorLibrary {
    VendorLibrary {
        name: "ACL-sim",
        dispatch_overhead_us: 80.0,
        gemm_time_factor: 0.9,
        fp16_gemm: true,
        winograd_variant: acl_winograd,
        // Mobile register files are small; ACL ships modest blocking.
        mnt: 4,
        mnb: 8,
    }
}

impl VendorLibrary {
    /// Times a plan with the library's GEMM advantage and dispatch
    /// overhead applied.
    fn plan_time_ms(&self, device: &DeviceProfile, plan: &KernelPlan) -> Option<f64> {
        let mut total = self.dispatch_overhead_us * 1e-6;
        for k in &plan.kernels {
            let t = estimate_kernel(device, k).ok()?;
            let is_gemm = matches!(
                k.kind,
                KernelKind::Gemm { .. } | KernelKind::BatchedGemm { .. }
            );
            let mut body = t.compute.max(t.memory);
            if is_gemm && self.fp16_gemm {
                body = (t.compute / device.fp16_speedup).max(t.memory / 2.0);
            }
            total += t.launch + body * self.gemm_time_factor;
        }
        Some(total * 1e3)
    }

    /// Vendor codegen options: hand-tuned, fixed per library (vendors
    /// do not auto-tune per layer).
    fn options(&self) -> CodegenOptions {
        CodegenOptions {
            unroll: Unroll::Full,
            mnt: self.mnt,
            mnb: self.mnb,
            ..CodegenOptions::default()
        }
    }

    /// Benchmarks the library on one convolution.
    ///
    /// Returns `None` only if not a single algorithm of the library
    /// can run the layer (does not happen for the paper's benchmark
    /// set).
    pub fn run(&self, desc: &ConvDesc, device: &DeviceProfile) -> Option<VendorResult> {
        let opts = self.options();
        let mut algos: Vec<f64> = Vec::new();
        let mut winograd_ms = None;
        if let Some(variant) = (self.winograd_variant)(desc) {
            if let Ok(plan) = generate_plan(desc, variant, &opts) {
                if let Some(t) = self.plan_time_ms(device, &plan) {
                    winograd_ms = Some(t);
                    algos.push(t);
                }
            }
        }
        for variant in [PlanVariant::Direct, PlanVariant::Im2col] {
            if let Ok(plan) = generate_plan(desc, variant, &opts) {
                if let Some(t) = self.plan_time_ms(device, &plan) {
                    algos.push(t);
                }
            }
        }
        let fastest = algos.iter().cloned().fold(f64::INFINITY, f64::min);
        if fastest.is_finite() {
            Some(VendorResult {
                winograd_ms,
                fastest_ms: fastest,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_gpu::{gtx_1080_ti, mali_g71, rx_580};

    fn conv3() -> ConvDesc {
        ConvDesc::new(3, 1, 1, 256, 1, 14, 14, 128)
    }

    fn conv5() -> ConvDesc {
        ConvDesc::new(5, 1, 2, 256, 1, 27, 27, 96)
    }

    #[test]
    fn cudnn_supports_winograd_only_for_3x3() {
        let dev = gtx_1080_ti();
        let r3 = cudnn().run(&conv3(), &dev).unwrap();
        assert!(r3.winograd_ms.is_some());
        let r5 = cudnn().run(&conv5(), &dev).unwrap();
        assert!(r5.winograd_ms.is_none(), "cuDNN fused Winograd is 3x3-only");
        assert!(r5.fastest_ms.is_finite());
    }

    #[test]
    fn fastest_never_slower_than_winograd() {
        let dev = rx_580();
        let r = miopen().run(&conv3(), &dev).unwrap();
        assert!(r.fastest_ms <= r.winograd_ms.unwrap());
    }

    #[test]
    fn acl_fp16_beats_fp32_gemm() {
        // Compare on the Winograd path, whose batched-GEMM stage is
        // where ACL's FP16 arithmetic pays off.
        let dev = mali_g71();
        let mut lib = acl();
        let fp16 = lib.run(&conv3(), &dev).unwrap().winograd_ms.unwrap();
        lib.fp16_gemm = false;
        let fp32 = lib.run(&conv3(), &dev).unwrap().winograd_ms.unwrap();
        assert!(fp16 < fp32, "fp16 {fp16} vs fp32 {fp32}");
    }

    #[test]
    fn dispatch_overhead_is_visible_on_small_convs() {
        let dev = gtx_1080_ti();
        let tiny = ConvDesc::new(3, 1, 1, 16, 1, 7, 7, 16);
        let mut lib = cudnn();
        let with = lib.run(&tiny, &dev).unwrap().fastest_ms;
        lib.dispatch_overhead_us = 0.0;
        let without = lib.run(&tiny, &dev).unwrap().fastest_ms;
        assert!((with - without) * 1e3 > 15.0); // ≥ 15 µs difference
    }

    #[test]
    fn strided_convs_still_run() {
        let dev = gtx_1080_ti();
        let d = ConvDesc::new(11, 4, 0, 96, 1, 227, 227, 3);
        let r = cudnn().run(&d, &dev).unwrap();
        assert!(r.winograd_ms.is_none());
        assert!(r.fastest_ms.is_finite());
    }
}
