//! Perf-trajectory comparison: diff two bench-smoke artifacts with
//! per-metric ratio tolerances.
//!
//! `BENCH_baseline.json` is the committed trajectory anchor;
//! bench-smoke writes `BENCH_head.json` on every run. The
//! `wino-bench-compare` binary feeds both through [`compare`] and
//! fails CI when any gated metric regresses beyond its tolerance —
//! or disappears from the head artifact, which is treated as a
//! failure too (a silently vanished metric is how gates rot).
//!
//! Tolerances are deliberately wide: the CI host timeshares with
//! other builds, so run-to-run noise of 2-3x on wall-clock metrics is
//! normal. The gate exists to catch order-of-magnitude trajectory
//! breaks (a kernel silently falling back to scalar, a serve path
//! serializing), not 10% jitter.

use serde::Value;

/// Whether a bigger head value is an improvement or a regression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-like: regression means head fell below baseline.
    HigherBetter,
    /// Latency-like: regression means head rose above baseline.
    LowerBetter,
}

/// One gated metric: where to find it and how much relative
/// regression to tolerate.
#[derive(Clone, Debug)]
pub struct MetricSpec {
    /// `/`-separated path into the artifact (phase names contain
    /// dots, so dots stay literal): e.g. `zoo_layer/speedup` or
    /// `phases/steady/conv.batched_sgemm/gflops`. A path segment
    /// hitting an array selects the element whose `"phase"` field
    /// equals the segment.
    pub key: &'static str,
    /// Which way regressions point.
    pub direction: Direction,
    /// Maximum tolerated relative regression: `HigherBetter` passes
    /// while `head >= baseline * (1 - tol)`, `LowerBetter` while
    /// `head <= baseline * (1 + tol)`.
    pub ratio_tol: f64,
}

/// The default CI gate: speedup, compiled-kernel latency, steady-phase
/// GFLOP/s, and tail latency/throughput for both per-layer and
/// whole-network serving.
pub fn default_specs() -> Vec<MetricSpec> {
    use Direction::*;
    vec![
        MetricSpec {
            key: "zoo_layer/speedup",
            direction: HigherBetter,
            ratio_tol: 0.55,
        },
        MetricSpec {
            key: "zoo_layer/simd_compiled_ms",
            direction: LowerBetter,
            ratio_tol: 1.8,
        },
        MetricSpec {
            key: "phases/steady/conv.input_transform/gflops",
            direction: HigherBetter,
            ratio_tol: 0.80,
        },
        MetricSpec {
            key: "phases/steady/conv.batched_sgemm/gflops",
            direction: HigherBetter,
            ratio_tol: 0.80,
        },
        MetricSpec {
            key: "phases/steady/conv.output_transform/gflops",
            direction: HigherBetter,
            ratio_tol: 0.80,
        },
        MetricSpec {
            key: "serve/p99_ms",
            direction: LowerBetter,
            ratio_tol: 3.0,
        },
        MetricSpec {
            key: "serve/throughput_rps",
            direction: HigherBetter,
            ratio_tol: 0.40,
        },
        MetricSpec {
            key: "serve_network/p50_ms",
            direction: LowerBetter,
            ratio_tol: 3.0,
        },
        MetricSpec {
            key: "serve_network/p99_ms",
            direction: LowerBetter,
            ratio_tol: 3.0,
        },
        MetricSpec {
            key: "serve_network/throughput_rps",
            direction: HigherBetter,
            ratio_tol: 0.40,
        },
    ]
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Resolves a `/`-separated metric path in an artifact. Objects are
/// walked by key; arrays are searched for the element whose `"phase"`
/// field matches the segment.
pub fn lookup(root: &Value, path: &str) -> Option<f64> {
    let mut cur = root;
    for seg in path.split('/') {
        cur = match cur {
            Value::Object(_) => cur.get(seg)?,
            Value::Array(items) => items
                .iter()
                .find(|item| matches!(item.get("phase"), Some(Value::Str(name)) if name == seg))?,
            _ => return None,
        };
    }
    as_f64(cur)
}

/// One compared metric.
#[derive(Clone, Debug)]
pub struct CompareRow {
    /// The metric path.
    pub key: String,
    /// Baseline value.
    pub baseline: f64,
    /// Head value.
    pub head: f64,
    /// `head / baseline` (infinite when the baseline is 0).
    pub ratio: f64,
    /// The spec that gated this row.
    pub direction: Direction,
    /// Tolerated relative regression.
    pub ratio_tol: f64,
    /// Whether the metric stayed within tolerance.
    pub ok: bool,
}

/// The full comparison result.
#[derive(Clone, Debug)]
pub struct CompareReport {
    /// Per-metric outcomes, in spec order.
    pub rows: Vec<CompareRow>,
    /// Metric paths missing from either artifact (always a failure).
    pub missing: Vec<String>,
}

impl CompareReport {
    /// `true` when every gated metric resolved and stayed within
    /// tolerance.
    pub fn pass(&self) -> bool {
        self.missing.is_empty() && self.rows.iter().all(|r| r.ok)
    }

    /// Renders the readable comparison table CI prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let headers = ["metric", "baseline", "head", "ratio", "allowed", "verdict"];
        let mut table: Vec<[String; 6]> = vec![headers.map(String::from)];
        for row in &self.rows {
            let allowed = match row.direction {
                Direction::HigherBetter => format!(">= {:.2}x", 1.0 - row.ratio_tol),
                Direction::LowerBetter => format!("<= {:.2}x", 1.0 + row.ratio_tol),
            };
            table.push([
                row.key.clone(),
                format!("{:.4}", row.baseline),
                format!("{:.4}", row.head),
                format!("{:.2}x", row.ratio),
                allowed,
                if row.ok { "ok" } else { "REGRESSED" }.to_string(),
            ]);
        }
        let mut widths = [0usize; 6];
        for row in &table {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        for (i, row) in table.iter().enumerate() {
            for (col, (cell, w)) in row.iter().zip(widths).enumerate() {
                if col > 0 {
                    out.push_str("  ");
                }
                if col == 0 {
                    out.push_str(&format!("{cell:<w$}"));
                } else {
                    out.push_str(&format!("{cell:>w$}"));
                }
            }
            out.push('\n');
            if i == 0 {
                let total = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
                out.push_str(&"-".repeat(total));
                out.push('\n');
            }
        }
        for key in &self.missing {
            out.push_str(&format!("MISSING: {key} (absent from an artifact)\n"));
        }
        out
    }
}

/// Compares a head artifact against a baseline under the given specs.
pub fn compare(baseline: &Value, head: &Value, specs: &[MetricSpec]) -> CompareReport {
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for spec in specs {
        let (Some(b), Some(h)) = (lookup(baseline, spec.key), lookup(head, spec.key)) else {
            missing.push(spec.key.to_string());
            continue;
        };
        let ratio = if b == 0.0 { f64::INFINITY } else { h / b };
        let ok = match spec.direction {
            Direction::HigherBetter => h >= b * (1.0 - spec.ratio_tol),
            Direction::LowerBetter => h <= b * (1.0 + spec.ratio_tol),
        };
        rows.push(CompareRow {
            key: spec.key.to_string(),
            baseline: b,
            head: h,
            ratio,
            direction: spec.direction,
            ratio_tol: spec.ratio_tol,
            ok,
        });
    }
    CompareReport { rows, missing }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(speedup: f64, sgemm_gflops: f64, p99: f64) -> Value {
        serde_json::from_str(&format!(
            r#"{{
                "zoo_layer": {{"speedup": {speedup}, "simd_compiled_ms": 10.0}},
                "phases": {{
                    "cold": [{{"phase": "conv.filter_transform", "ms": 56.0, "gflops": 0.2}}],
                    "steady": [
                        {{"phase": "conv.input_transform", "ms": 1.5, "gflops": 1.2}},
                        {{"phase": "conv.batched_sgemm", "ms": 9.5, "gflops": {sgemm_gflops}}},
                        {{"phase": "conv.output_transform", "ms": 0.3, "gflops": 2.2}}
                    ]
                }},
                "serve": {{"p99_ms": {p99}, "throughput_rps": 800.0}},
                "serve_network": {{"p50_ms": 60.0, "p99_ms": 70.0, "throughput_rps": 30.0}}
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn lookup_walks_objects_and_phase_arrays() {
        let a = artifact(2.0, 11.9, 6.0);
        assert_eq!(lookup(&a, "zoo_layer/speedup"), Some(2.0));
        assert_eq!(
            lookup(&a, "phases/steady/conv.batched_sgemm/gflops"),
            Some(11.9)
        );
        assert_eq!(lookup(&a, "phases/steady/no.such.phase/gflops"), None);
        assert_eq!(lookup(&a, "serve/nope"), None);
    }

    #[test]
    fn identical_artifacts_pass() {
        let a = artifact(2.0, 11.9, 6.0);
        let report = compare(&a, &a, &default_specs());
        assert!(report.pass(), "{}", report.render());
    }

    #[test]
    fn deep_regression_fails_with_readable_table() {
        let baseline = artifact(2.0, 11.9, 6.0);
        // Speedup collapsed below the 45% floor, sgemm GFLOP/s to a
        // tenth, p99 5x over baseline: three gated metrics regress.
        let head = artifact(0.5, 1.1, 30.0);
        let report = compare(&baseline, &head, &default_specs());
        assert!(!report.pass());
        let bad: Vec<_> = report.rows.iter().filter(|r| !r.ok).collect();
        assert_eq!(bad.len(), 3, "{}", report.render());
        let text = report.render();
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("zoo_layer/speedup"));
    }

    #[test]
    fn missing_metric_is_a_failure() {
        let baseline = artifact(2.0, 11.9, 6.0);
        let head: Value = serde_json::from_str(r#"{"zoo_layer": {"speedup": 2.0}}"#).unwrap();
        let report = compare(&baseline, &head, &default_specs());
        assert!(!report.pass());
        assert!(!report.missing.is_empty());
        assert!(report.render().contains("MISSING"));
    }
}
