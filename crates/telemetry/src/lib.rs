//! # wino-telemetry — the metrics policy layer over `wino-probe`
//!
//! `wino-probe` owns the recording primitives (spans, counters,
//! gauges, histograms, the flight-recorder rings); this crate owns
//! *policy*: when metrics recording is armed, how snapshots are
//! rendered for operators and scrapers, and how one benchmark
//! artifact is judged against another.
//!
//! ## Control
//!
//! `WINO_METRICS=off|summary|text[:path]`, parsed by
//! [`init_from_env`] with the same discipline as `WINO_TRACE`:
//! malformed values warn through `probe::diag` and fall back to
//! `off`. Any active mode arms probe's telemetry gate (counters,
//! gauges, histograms record without span buffers growing) and the
//! flight recorder.
//!
//! - `summary` — compact `name=value` metric lines to stderr on each
//!   [`emit`].
//! - `text` — Prometheus-style text exposition ([`render_prometheus`])
//!   to stdout, or overwriting `path` when given (a scrape file).
//!
//! ## Perf trajectory
//!
//! The [`benchcmp`] module diffs two bench-smoke artifacts
//! (`BENCH_baseline.json` vs `BENCH_head.json`) with per-metric
//! ratio tolerances; `wino-bench-compare` wires it into CI.

#![warn(missing_docs)]

use parking_lot::Mutex;
use std::sync::mpsc;
use std::sync::OnceLock;
use std::time::Duration;

pub mod benchcmp;

/// What the telemetry layer does with metric snapshots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricsMode {
    /// Nothing is armed; [`emit`] is a no-op.
    Off,
    /// Compact `name=value` lines to stderr.
    Summary,
    /// Prometheus-style text to stdout (`None`) or a file (`Some`).
    Text(Option<String>),
}

fn mode_slot() -> &'static Mutex<MetricsMode> {
    static MODE: OnceLock<Mutex<MetricsMode>> = OnceLock::new();
    MODE.get_or_init(|| Mutex::new(MetricsMode::Off))
}

/// Current metrics mode.
pub fn mode() -> MetricsMode {
    mode_slot().lock().clone()
}

/// Switches the metrics mode and arms/disarms probe's telemetry gate
/// and flight recorder accordingly (tests call this directly;
/// binaries use [`init_from_env`]).
pub fn set_mode(mode: MetricsMode) {
    let on = mode != MetricsMode::Off;
    *mode_slot().lock() = mode;
    wino_probe::set_telemetry(on);
    wino_probe::flight::set_enabled(on);
}

/// Parses one `WINO_METRICS` value; `None` means unrecognized — the
/// caller decides how to complain.
pub fn mode_from_value(value: &str) -> Option<MetricsMode> {
    let value = value.trim();
    if value.is_empty() || value == "off" || value == "0" {
        Some(MetricsMode::Off)
    } else if value == "summary" {
        Some(MetricsMode::Summary)
    } else if value == "text" {
        Some(MetricsMode::Text(None))
    } else {
        value
            .strip_prefix("text:")
            .map(|path| MetricsMode::Text(Some(path.to_string())))
    }
}

/// Parses `WINO_METRICS` (`off|summary|text[:path]`) and applies the
/// mode. Unknown values warn through `probe::diag` and leave metrics
/// off, mirroring `WINO_TRACE` handling.
pub fn init_from_env() -> MetricsMode {
    let raw = std::env::var("WINO_METRICS").unwrap_or_default();
    let mode = match mode_from_value(&raw) {
        Some(mode) => mode,
        None => {
            wino_probe::diag(format!(
                "ignoring unknown WINO_METRICS value {:?} (expected off|summary|text[:path])",
                raw.trim()
            ));
            MetricsMode::Off
        }
    };
    set_mode(mode.clone());
    mode
}

/// Rewrites a probe metric name (`serve.queue_wait`) as a
/// Prometheus-compatible identifier (`serve_queue_wait`).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Renders every live probe counter, gauge, and histogram as
/// Prometheus-style text exposition. Counters and gauges appear under
/// their sanitized names; gauges add a `_peak` series; histograms
/// expose `_count`, `_sum_ns`, `{quantile="..."}` estimates, and
/// `_max_ns` (durations are recorded in nanoseconds throughout).
pub fn render_prometheus() -> String {
    let mut out = String::new();
    for (name, value) in wino_probe::counter_values() {
        out.push_str(&format!("{} {}\n", sanitize(&name), value));
    }
    for (name, current, peak) in wino_probe::gauge_values() {
        let name = sanitize(&name);
        out.push_str(&format!("{name} {current}\n"));
        out.push_str(&format!("{name}_peak {peak}\n"));
    }
    for h in wino_probe::hist_values() {
        let name = sanitize(&h.name);
        out.push_str(&format!("{name}_count {}\n", h.count));
        out.push_str(&format!("{name}_sum_ns {}\n", h.sum));
        for (q, label) in [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")] {
            out.push_str(&format!(
                "{name}_ns{{quantile=\"{label}\"}} {}\n",
                h.quantile(q)
            ));
        }
        out.push_str(&format!("{name}_max_ns {}\n", h.max));
    }
    out
}

/// Compact `name=value` rendering for the `summary` mode: one line
/// per counter/gauge, one per histogram with its quantile estimates.
fn render_summary_lines() -> String {
    let mut out = String::new();
    for (name, value) in wino_probe::counter_values() {
        if value > 0 {
            out.push_str(&format!("  {name}={value}\n"));
        }
    }
    for (name, current, peak) in wino_probe::gauge_values() {
        if current != 0 || peak != 0 {
            out.push_str(&format!("  {name}={current} peak={peak}\n"));
        }
    }
    for h in wino_probe::hist_values() {
        if h.count > 0 {
            out.push_str(&format!(
                "  {}: count={} p50={}ns p90={}ns p99={}ns max={}ns\n",
                h.name,
                h.count,
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                h.max,
            ));
        }
    }
    out
}

/// Emits one metrics snapshot according to the current mode. `tag`
/// labels the emission (e.g. `serve.periodic`, `serve.shutdown`).
/// I/O failures diag and are otherwise swallowed — metrics must never
/// take the serving path down.
pub fn emit(tag: &str) {
    match mode() {
        MetricsMode::Off => {}
        MetricsMode::Summary => {
            eprint!("[wino-telemetry] {tag}\n{}", render_summary_lines());
        }
        MetricsMode::Text(None) => {
            print!("{}", render_prometheus());
        }
        MetricsMode::Text(Some(path)) => {
            if let Some(dir) = std::path::Path::new(&path).parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            if let Err(e) = std::fs::write(&path, render_prometheus()) {
                wino_probe::diag(format!("metrics write to {path:?} failed: {e}"));
            }
        }
    }
}

/// A background thread emitting one snapshot per interval until
/// [`PeriodicEmitter::stop`] (or drop). Used by `wino-serve` for the
/// periodic summary emission; each tick calls [`emit`] with the given
/// tag.
pub struct PeriodicEmitter {
    stop_tx: mpsc::Sender<()>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl PeriodicEmitter {
    /// Spawns the emitter thread. With metrics off the thread still
    /// runs but every tick is a no-op (the mode is re-read per tick,
    /// so tests can flip it live).
    pub fn start(interval: Duration, tag: &str) -> Self {
        let (stop_tx, stop_rx) = mpsc::channel::<()>();
        let tag = tag.to_string();
        let handle = std::thread::Builder::new()
            .name("wino-metrics".into())
            .spawn(move || loop {
                match stop_rx.recv_timeout(interval) {
                    Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => return,
                    Err(mpsc::RecvTimeoutError::Timeout) => emit(&tag),
                }
            })
            .expect("spawn metrics emitter");
        PeriodicEmitter {
            stop_tx,
            handle: Some(handle),
        }
    }

    /// Stops the emitter and joins its thread.
    pub fn stop(mut self) {
        let _ = self.stop_tx.send(());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for PeriodicEmitter {
    fn drop(&mut self) {
        let _ = self.stop_tx.send(());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_values_parse() {
        assert_eq!(mode_from_value(""), Some(MetricsMode::Off));
        assert_eq!(mode_from_value("off"), Some(MetricsMode::Off));
        assert_eq!(mode_from_value("0"), Some(MetricsMode::Off));
        assert_eq!(mode_from_value("summary"), Some(MetricsMode::Summary));
        assert_eq!(mode_from_value("text"), Some(MetricsMode::Text(None)));
        assert_eq!(
            mode_from_value("text:/tmp/m.prom"),
            Some(MetricsMode::Text(Some("/tmp/m.prom".into())))
        );
        assert_eq!(mode_from_value(" summary "), Some(MetricsMode::Summary));
        assert!(mode_from_value("json").is_none());
        assert!(mode_from_value("prometheus").is_none());
    }

    #[test]
    fn sanitize_maps_dots_to_underscores() {
        assert_eq!(sanitize("serve.queue_wait"), "serve_queue_wait");
        assert_eq!(sanitize("guard.demote.panic"), "guard_demote_panic");
    }

    #[test]
    fn breaker_state_gauges_render_in_both_expositions() {
        // The serve layer registers one `serve.breaker_state.<layer>`
        // gauge per layer (0 closed / 1 half-open / 2 open); both
        // exposition formats must carry it so operators can see a
        // tripped layer without asking the server.
        wino_probe::set_telemetry(true);
        wino_probe::gauge("serve.breaker_state.ci/layer").set(2);
        let prom = render_prometheus();
        assert!(prom.contains("serve_breaker_state_ci_layer 2\n"), "{prom}");
        assert!(prom.contains("serve_breaker_state_ci_layer_peak 2\n"));
        let summary = render_summary_lines();
        assert!(
            summary.contains("serve.breaker_state.ci/layer=2 peak=2"),
            "{summary}"
        );
    }
}
