//! Property tests: the Winograd identity must hold *exactly* over ℚ
//! for arbitrary distinct rational points and arbitrary inputs — this
//! is the theorem the whole system rests on.

use proptest::prelude::*;
use wino_num::{RatMat, Rational};
use wino_symbolic::{generate_recipe, RecipeOptions};
use wino_transform::{
    correlate_1d, correlate_2d, toom_cook_matrices, winograd_1d_exact, winograd_2d_exact,
    WinogradSpec,
};

fn arb_rational() -> impl Strategy<Value = Rational> {
    (-9i64..=9, 1i64..=9).prop_map(|(a, b)| Rational::from_frac(a, b))
}

/// Distinct rational points of the requested cardinality.
fn arb_points(n: usize) -> impl Strategy<Value = Vec<Rational>> {
    proptest::collection::vec(arb_rational(), n * 4).prop_filter_map(
        "need enough distinct points",
        move |cands| {
            let mut out: Vec<Rational> = Vec::new();
            for c in cands {
                if !out.contains(&c) {
                    out.push(c);
                    if out.len() == n {
                        return Some(out);
                    }
                }
            }
            None
        },
    )
}

fn arb_vec(n: usize) -> impl Strategy<Value = Vec<Rational>> {
    proptest::collection::vec(arb_rational(), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// 1-D: Aᵀ[(G·g) ⊙ (Bᵀ·d)] ≡ correlate(d, g) for random specs,
    /// random distinct points, random inputs.
    #[test]
    fn winograd_identity_1d(
        m in 1usize..=6,
        r in 2usize..=5,
        points in arb_points(9),
        dv in arb_vec(10),
        gv in arb_vec(5),
    ) {
        let spec = WinogradSpec::new(m, r).unwrap();
        let pts = &points[..spec.points_needed()];
        let d = &dv[..spec.alpha()];
        let g = &gv[..r];
        let mats = toom_cook_matrices(spec, pts).unwrap();
        prop_assert_eq!(winograd_1d_exact(&mats, d, g).unwrap(), correlate_1d(d, g));
    }

    /// 2-D: the full tile identity with the paper's F(m², r²) form.
    #[test]
    fn winograd_identity_2d(
        m in 1usize..=4,
        r in 2usize..=4,
        dv in proptest::collection::vec(arb_rational(), 64),
        gv in proptest::collection::vec(arb_rational(), 16),
        points in arb_points(8),
    ) {
        let spec = WinogradSpec::new(m, r).unwrap();
        let alpha = spec.alpha();
        prop_assume!(alpha * alpha <= dv.len() && r * r <= gv.len());
        let pts = &points[..spec.points_needed()];
        let mats = toom_cook_matrices(spec, pts).unwrap();
        let d = RatMat::from_fn(alpha, alpha, |i, j| dv[i * alpha + j].clone());
        let g = RatMat::from_fn(r, r, |i, j| gv[i * r + j].clone());
        prop_assert_eq!(winograd_2d_exact(&mats, &d, &g).unwrap(), correlate_2d(&d, &g));
    }

    /// The generated recipes compute exactly the same linear maps as
    /// the matrices they were derived from, for arbitrary point sets.
    #[test]
    fn recipes_equal_matrices_for_arbitrary_points(
        m in 2usize..=5,
        r in 2usize..=4,
        points in arb_points(9),
        x in proptest::collection::vec(arb_rational(), 12),
        cse in any::<bool>(),
        factorize in any::<bool>(),
        fma in any::<bool>(),
    ) {
        let spec = WinogradSpec::new(m, r).unwrap();
        let pts = &points[..spec.points_needed()];
        let mats = toom_cook_matrices(spec, pts).unwrap();
        let opts = RecipeOptions { cse, factorize, fma };
        for mat in [&mats.g, &mats.b_t, &mats.a_t] {
            let recipe = generate_recipe(mat, &opts);
            recipe.validate().unwrap();
            let input = &x[..mat.cols()];
            prop_assert_eq!(recipe.eval_exact(input), mat.matvec(input).unwrap());
        }
    }
}
