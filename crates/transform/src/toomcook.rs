//! Modified Toom-Cook construction of Winograd transformation
//! matrices over exact rationals (§3.1.2, after Barabasz et al.).
//!
//! For `F(m, r)` with `α = m + r − 1`, choose `n = α − 1` distinct
//! finite points `p₀ … p₍ₙ₋₁₎`; the final evaluation point is the ∞
//! pseudo-point. With the master polynomial `M(x) = Π (x − pᵢ)` and
//! the Lagrange normalizers `Nᵢ = Π_{k≠i} (pᵢ − pₖ)`:
//!
//! * `G (α×r)` — rows `i < n`: `[1, pᵢ, …, pᵢ^{r−1}] / Nᵢ`; row `n`:
//!   `e_{r−1}`.
//! * `Aᵀ (m×α)` — columns `j < n`: `[1, pⱼ, …, pⱼ^{m−1}]ᵀ`; column
//!   `n`: `e_{m−1}`.
//! * `Bᵀ (α×α)` — rows `i < n`: coefficients of `M(x)/(x − pᵢ)`;
//!   row `n`: coefficients of `M(x)`.
//!
//! The defining identity `Aᵀ[(G·g) ⊙ (Bᵀ·d)] = correlate(d, g)` holds
//! *exactly* over ℚ and is property-tested in this crate.

use wino_num::{Poly, RatMat, Rational};

use crate::error::TransformError;
use crate::points::validate_points;
use crate::spec::WinogradSpec;

/// The three exact transformation matrices of a Winograd convolution,
/// together with the spec and points that produced them.
#[derive(Clone, Debug, PartialEq)]
pub struct TransformMatrices {
    /// The specification the matrices implement.
    pub spec: WinogradSpec,
    /// The finite interpolation points used.
    pub points: Vec<Rational>,
    /// Filter transform `G` (α × r): `U = G · g · Gᵀ`.
    pub g: RatMat,
    /// Input transform `Bᵀ` (α × α): `V = Bᵀ · d · B`.
    pub b_t: RatMat,
    /// Output transform `Aᵀ` (m × α): `Y = Aᵀ · M · A`.
    pub a_t: RatMat,
}

impl TransformMatrices {
    /// The internal tile size α.
    pub fn alpha(&self) -> usize {
        self.spec.alpha()
    }
}

/// Builds the transformation matrices for `spec` from the given finite
/// points using the modified Toom-Cook method.
///
/// # Errors
/// Point-set validation failures ([`TransformError::WrongPointCount`],
/// [`TransformError::DuplicatePoint`]).
pub fn toom_cook_matrices(
    spec: WinogradSpec,
    points: &[Rational],
) -> Result<TransformMatrices, TransformError> {
    let alpha = spec.alpha();
    let n = alpha - 1;
    validate_points(points, n)?;

    // Lagrange normalizers N_i = Π_{k≠i} (p_i − p_k). Distinctness is
    // validated above, so every factor is non-zero.
    let normalizers: Vec<Rational> = (0..n)
        .map(|i| {
            let mut acc = Rational::one();
            for k in 0..n {
                if k != i {
                    acc *= &(&points[i] - &points[k]);
                }
            }
            acc
        })
        .collect();

    // G (α × r).
    let g = RatMat::from_fn(alpha, spec.r, |i, j| {
        if i < n {
            let pij = points[i].pow(j as i32).expect("non-negative power");
            &pij / &normalizers[i]
        } else if j == spec.r - 1 {
            Rational::one()
        } else {
            Rational::zero()
        }
    });

    // Aᵀ (m × α).
    let a_t = RatMat::from_fn(spec.m, alpha, |i, j| {
        if j < n {
            points[j].pow(i as i32).expect("non-negative power")
        } else if i == spec.m - 1 {
            Rational::one()
        } else {
            Rational::zero()
        }
    });

    // Bᵀ (α × α): Lagrange numerator polynomials, then M itself.
    let master = Poly::from_roots(points);
    let mut b_t = RatMat::zeros(alpha, alpha);
    for i in 0..n {
        let mi = master
            .div_by_root(&points[i])
            .expect("points are roots of the master polynomial");
        for j in 0..alpha {
            b_t[(i, j)] = mi.coeff(j);
        }
    }
    for j in 0..alpha {
        b_t[(n, j)] = master.coeff(j);
    }

    Ok(TransformMatrices {
        spec,
        points: points.to_vec(),
        g,
        b_t,
        a_t,
    })
}

/// Reference 1-D correlation: `y_k = Σ_j g_j · d_{k+j}` — the ground
/// truth the Winograd identity must reproduce.
pub fn correlate_1d(d: &[Rational], g: &[Rational]) -> Vec<Rational> {
    let m = d.len() + 1 - g.len();
    (0..m)
        .map(|k| {
            let mut acc = Rational::zero();
            for (j, gj) in g.iter().enumerate() {
                acc += &(gj * &d[k + j]);
            }
            acc
        })
        .collect()
}

/// Runs the exact 1-D Winograd algorithm `Aᵀ[(G·g) ⊙ (Bᵀ·d)]`.
///
/// # Errors
/// Shape mismatches from the underlying matrix products.
pub fn winograd_1d_exact(
    mats: &TransformMatrices,
    d: &[Rational],
    g: &[Rational],
) -> Result<Vec<Rational>, TransformError> {
    let u = mats.g.matvec(g)?;
    let v = mats.b_t.matvec(d)?;
    let c: Vec<Rational> = u.iter().zip(&v).map(|(a, b)| a * b).collect();
    Ok(mats.a_t.matvec(&c)?)
}

/// Reference 2-D correlation of an `α×α` tile with an `r×r` filter
/// producing an `m×m` tile.
pub fn correlate_2d(d: &RatMat, g: &RatMat) -> RatMat {
    let m = d.rows() + 1 - g.rows();
    RatMat::from_fn(m, m, |y, x| {
        let mut acc = Rational::zero();
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                acc += &(&g[(i, j)] * &d[(y + i, x + j)]);
            }
        }
        acc
    })
}

/// Runs the exact 2-D Winograd algorithm
/// `Y = Aᵀ[(G·g·Gᵀ) ⊙ (Bᵀ·d·B)]·A`.
///
/// # Errors
/// Shape mismatches from the underlying matrix products.
pub fn winograd_2d_exact(
    mats: &TransformMatrices,
    d: &RatMat,
    g: &RatMat,
) -> Result<RatMat, TransformError> {
    let u = mats.g.matmul(g)?.matmul(&mats.g.transpose())?;
    let v = mats.b_t.matmul(d)?.matmul(&mats.b_t.transpose())?;
    let alpha = mats.alpha();
    let prod = RatMat::from_fn(alpha, alpha, |i, j| &u[(i, j)] * &v[(i, j)]);
    Ok(mats.a_t.matmul(&prod)?.matmul(&mats.a_t.transpose())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::table3_points;

    fn spec(m: usize, r: usize) -> WinogradSpec {
        WinogradSpec::new(m, r).unwrap()
    }

    fn r64(a: i64, b: i64) -> Rational {
        Rational::from_frac(a, b)
    }

    #[test]
    fn f23_matrices_match_the_paper() {
        // F(2,3) with points (0, 1, −1) — Equation 6/7 of the paper up
        // to the documented sign convention (our G row 0 is −1·g0 and
        // Bᵀ rows 0/3 flip correspondingly; the product is identical).
        let mats = toom_cook_matrices(spec(2, 3), &table3_points(4).unwrap()).unwrap();
        assert_eq!(mats.g.rows(), 4);
        assert_eq!(mats.g.cols(), 3);
        assert_eq!(mats.b_t.rows(), 4);
        assert_eq!(mats.a_t.rows(), 2);
        assert_eq!(mats.a_t.cols(), 4);
        // Row 1 of G is the famous (½, ½, ½).
        assert_eq!(mats.g[(1, 0)], r64(1, 2));
        assert_eq!(mats.g[(1, 1)], r64(1, 2));
        assert_eq!(mats.g[(1, 2)], r64(1, 2));
        // Row 2 is (½, −½, ½).
        assert_eq!(mats.g[(2, 1)], r64(-1, 2));
        // ∞ rows.
        assert_eq!(mats.g[(3, 2)], Rational::one());
        assert_eq!(mats.g[(3, 0)], Rational::zero());
    }

    #[test]
    fn winograd_identity_1d_f23() {
        let mats = toom_cook_matrices(spec(2, 3), &table3_points(4).unwrap()).unwrap();
        let d = vec![r64(1, 1), r64(2, 1), r64(3, 1), r64(4, 1)];
        let g = vec![r64(1, 2), r64(-3, 1), r64(5, 7)];
        assert_eq!(
            winograd_1d_exact(&mats, &d, &g).unwrap(),
            correlate_1d(&d, &g)
        );
    }

    #[test]
    fn winograd_identity_2d_f23() {
        let mats = toom_cook_matrices(spec(2, 3), &table3_points(4).unwrap()).unwrap();
        let d = RatMat::from_fn(4, 4, |i, j| r64((i * 4 + j) as i64 + 1, 3));
        let g = RatMat::from_fn(3, 3, |i, j| r64(2 * i as i64 - j as i64, 5));
        assert_eq!(
            winograd_2d_exact(&mats, &d, &g).unwrap(),
            correlate_2d(&d, &g)
        );
    }

    #[test]
    fn winograd_identity_all_table3_specs() {
        // Every (m, r) pair in the paper's sweep whose α has a Table-3
        // point set must satisfy the identity exactly.
        for r in [3usize, 5, 7] {
            for m in 2..=10usize {
                let alpha = m + r - 1;
                if !(4..=16).contains(&alpha) {
                    continue;
                }
                let sp = spec(m, r);
                let mats = toom_cook_matrices(sp, &table3_points(alpha).unwrap())
                    .unwrap_or_else(|e| panic!("F({m},{r}): {e}"));
                let d: Vec<Rational> = (0..alpha).map(|k| r64(3 * k as i64 - 5, 7)).collect();
                let g: Vec<Rational> = (0..r).map(|k| r64(2 * k as i64 + 1, 9)).collect();
                assert_eq!(
                    winograd_1d_exact(&mats, &d, &g).unwrap(),
                    correlate_1d(&d, &g),
                    "1-D identity failed for F({m},{r})"
                );
            }
        }
    }

    #[test]
    fn wrong_point_count_rejected() {
        let err = toom_cook_matrices(spec(4, 3), &table3_points(4).unwrap()).unwrap_err();
        assert!(matches!(
            err,
            TransformError::WrongPointCount {
                required: 5,
                got: 3
            }
        ));
    }

    #[test]
    fn duplicate_points_rejected() {
        let pts = vec![r64(0, 1), r64(1, 1), r64(1, 1)];
        let err = toom_cook_matrices(spec(2, 3), &pts).unwrap_err();
        assert!(matches!(err, TransformError::DuplicatePoint(_)));
    }

    #[test]
    fn correlate_2d_known_value() {
        // 3×3 ones filter over a 4×4 ramp: each output is the sum of a
        // 3×3 window.
        let d = RatMat::from_fn(4, 4, |i, j| Rational::from_int((i * 4 + j) as i64));
        let g = RatMat::from_fn(3, 3, |_, _| Rational::one());
        let y = correlate_2d(&d, &g);
        assert_eq!(y[(0, 0)], Rational::from_int(45));
        assert_eq!(y[(1, 1)], Rational::from_int(90));
    }
}
