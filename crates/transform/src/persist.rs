//! Disk persistence for the recipe database.
//!
//! Figure 2 of the paper shows the transformation-matrices DB as a
//! stored artifact feeding code generation across runs. This module
//! serializes every cached configuration — spec, pipeline options,
//! interpolation points, and the three recipes in the `wino-symbolic`
//! text format — into one human-readable file, and loads it back with
//! an exactness check against freshly constructed matrices (a
//! corrupted or stale database is rejected, never silently used).

use std::io;
use std::path::Path;
use std::str::FromStr;

use wino_num::Rational;
use wino_symbolic::{Recipe, RecipeOptions};

use crate::db::RecipeDb;
use crate::error::TransformError;
use crate::recipes::TransformRecipes;
use crate::spec::WinogradSpec;
use crate::toomcook::toom_cook_matrices;

/// One serialized database entry.
#[derive(Clone, Debug)]
pub struct PersistedEntry {
    /// The specification.
    pub spec: WinogradSpec,
    /// Pipeline options the recipes were generated with.
    pub options: RecipeOptions,
    /// Whether these are the naive dense recipes.
    pub naive: bool,
    /// The interpolation points.
    pub points: Vec<Rational>,
    /// Filter / input / output recipes.
    pub recipes: (Recipe, Recipe, Recipe),
}

fn bool_bit(b: bool) -> u8 {
    u8::from(b)
}

/// Serializes entries to the text format.
pub fn entries_to_text(entries: &[PersistedEntry]) -> String {
    let mut out = String::from("# winograd-meta recipe database v1\n");
    for e in entries {
        out.push_str(&format!(
            "[F {} {} cse={} factorize={} fma={} naive={}]\n",
            e.spec.m,
            e.spec.r,
            bool_bit(e.options.cse),
            bool_bit(e.options.factorize),
            bool_bit(e.options.fma),
            bool_bit(e.naive),
        ));
        let pts: Vec<String> = e.points.iter().map(|p| p.to_string()).collect();
        out.push_str(&format!("points {}\n", pts.join(" ")));
        for (tag, recipe) in [
            ("filter", &e.recipes.0),
            ("input", &e.recipes.1),
            ("output", &e.recipes.2),
        ] {
            out.push_str(&format!("{tag}:\n"));
            out.push_str(&recipe.to_text());
        }
    }
    out
}

/// Parses the text format back into entries.
///
/// # Errors
/// [`TransformError::BadSpec`] describing the first malformed section.
pub fn entries_from_text(text: &str) -> Result<Vec<PersistedEntry>, TransformError> {
    let bad = |msg: String| TransformError::BadSpec(format!("recipe DB parse: {msg}"));
    let mut entries = Vec::new();
    let mut lines = text.lines().peekable();
    while let Some(line) = lines.next() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !line.starts_with('[') {
            return Err(bad(format!("expected section header, got {line:?}")));
        }
        let inner = line.trim_start_matches('[').trim_end_matches(']');
        let toks: Vec<&str> = inner.split_whitespace().collect();
        if toks.len() != 7 || toks[0] != "F" {
            return Err(bad(format!("malformed header {line:?}")));
        }
        let m: usize = toks[1]
            .parse()
            .map_err(|_| bad(format!("bad m in {line:?}")))?;
        let r: usize = toks[2]
            .parse()
            .map_err(|_| bad(format!("bad r in {line:?}")))?;
        let flag = |tok: &str, name: &str| -> Result<bool, TransformError> {
            tok.strip_prefix(&format!("{name}="))
                .and_then(|v| match v {
                    "0" => Some(false),
                    "1" => Some(true),
                    _ => None,
                })
                .ok_or_else(|| bad(format!("bad flag {tok:?}")))
        };
        let options = RecipeOptions {
            cse: flag(toks[3], "cse")?,
            factorize: flag(toks[4], "factorize")?,
            fma: flag(toks[5], "fma")?,
        };
        let naive = flag(toks[6], "naive")?;
        let spec = WinogradSpec::new(m, r)?;

        let pts_line = lines
            .next()
            .ok_or_else(|| bad("missing points line".into()))?
            .trim();
        let pts_str = pts_line
            .strip_prefix("points")
            .ok_or_else(|| bad(format!("expected points line, got {pts_line:?}")))?;
        let points: Result<Vec<Rational>, _> =
            pts_str.split_whitespace().map(Rational::from_str).collect();
        let points = points.map_err(|e| bad(format!("bad point: {e}")))?;

        let mut take_recipe = |tag: &str| -> Result<Recipe, TransformError> {
            let head = lines
                .next()
                .ok_or_else(|| bad(format!("missing {tag} recipe")))?
                .trim();
            if head != format!("{tag}:") {
                return Err(bad(format!("expected '{tag}:', got {head:?}")));
            }
            let mut body = String::new();
            for rl in lines.by_ref() {
                body.push_str(rl);
                body.push('\n');
                if rl.trim() == "end" {
                    break;
                }
            }
            Recipe::from_text(&body).map_err(|e| bad(format!("{tag} recipe: {e}")))
        };
        let filter = take_recipe("filter")?;
        let input = take_recipe("input")?;
        let output = take_recipe("output")?;
        entries.push(PersistedEntry {
            spec,
            options,
            naive,
            points,
            recipes: (filter, input, output),
        });
    }
    Ok(entries)
}

/// Rebuilds a [`TransformRecipes`] from a persisted entry, verifying
/// each recipe *exactly* against freshly constructed matrices.
///
/// # Errors
/// Construction failures, or [`TransformError::BadSpec`] when a recipe
/// does not compute its matrix (corruption / tampering).
pub fn entry_to_recipes(e: &PersistedEntry) -> Result<TransformRecipes, TransformError> {
    let matrices = toom_cook_matrices(e.spec, &e.points)?;
    let (filter, input, output) = e.recipes.clone();
    for (tag, recipe, mat) in [
        ("filter", &filter, &matrices.g),
        ("input", &input, &matrices.b_t),
        ("output", &output, &matrices.a_t),
    ] {
        if recipe.n_in != mat.cols() || recipe.n_out != mat.rows() {
            return Err(TransformError::BadSpec(format!(
                "persisted {tag} recipe arity {}→{} does not match matrix {}x{}",
                recipe.n_in,
                recipe.n_out,
                mat.rows(),
                mat.cols()
            )));
        }
        for j in 0..mat.cols() {
            let mut x = vec![Rational::zero(); mat.cols()];
            x[j] = Rational::one();
            if recipe.eval_exact(&x) != mat.matvec(&x).expect("shape checked") {
                return Err(TransformError::BadSpec(format!(
                    "persisted {tag} recipe for {} is corrupt (column {j} mismatch)",
                    e.spec
                )));
            }
        }
    }
    Ok(TransformRecipes {
        spec: e.spec,
        matrices,
        filter,
        input,
        output,
        options: e.options,
    })
}

impl RecipeDb {
    /// Writes every cached configuration to `path`.
    ///
    /// # Errors
    /// I/O failures.
    pub fn save_to_file(&self, path: &Path) -> io::Result<()> {
        let entries = self.export_entries();
        std::fs::write(path, entries_to_text(&entries))
    }

    /// Loads a database from `path`, exactness-checking every entry.
    ///
    /// # Errors
    /// I/O failures or corrupted entries (as `io::Error` with the
    /// transform error message).
    pub fn load_from_file(path: &Path) -> io::Result<RecipeDb> {
        let text = std::fs::read_to_string(path)?;
        let entries = entries_from_text(&text).map_err(io::Error::other)?;
        let db = RecipeDb::new();
        for e in &entries {
            let recipes = entry_to_recipes(e).map_err(io::Error::other)?;
            db.insert_loaded(e.spec, e.options, e.naive, recipes);
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_symbolic::RecipeOptions;

    fn populated_db() -> RecipeDb {
        let db = RecipeDb::new();
        db.get(WinogradSpec::new(2, 3).unwrap(), RecipeOptions::optimized())
            .unwrap();
        db.get(WinogradSpec::new(4, 3).unwrap(), RecipeOptions::optimized())
            .unwrap();
        db.get_naive(WinogradSpec::new(2, 3).unwrap()).unwrap();
        db
    }

    #[test]
    fn text_round_trip() {
        let db = populated_db();
        let entries = db.export_entries();
        assert_eq!(entries.len(), 3);
        let text = entries_to_text(&entries);
        let parsed = entries_from_text(&text).unwrap();
        assert_eq!(parsed.len(), 3);
        for (a, b) in entries.iter().zip(&parsed) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.options, b.options);
            assert_eq!(a.naive, b.naive);
            assert_eq!(a.points, b.points);
            assert_eq!(a.recipes.0, b.recipes.0);
        }
    }

    #[test]
    fn file_round_trip_with_verification() {
        let db = populated_db();
        let path = std::env::temp_dir().join("wino_recipe_db_test.txt");
        db.save_to_file(&path).unwrap();
        let loaded = RecipeDb::load_from_file(&path).unwrap();
        assert_eq!(loaded.len(), db.len());
        // Loaded entries serve lookups without regeneration.
        let hit = loaded.get(WinogradSpec::new(2, 3).unwrap(), RecipeOptions::optimized());
        assert!(hit.is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corruption_is_detected() {
        let db = populated_db();
        let mut entries = db.export_entries();
        // Flip a constant inside a recipe: semantics change.
        let bad = entries[0].recipes.1.to_text().replace("x1", "x0");
        if let Ok(parsed) = Recipe::from_text(&bad) {
            entries[0].recipes.1 = parsed;
            let err = entry_to_recipes(&entries[0]).unwrap_err();
            assert!(matches!(err, TransformError::BadSpec(_)), "{err}");
        }
    }

    #[test]
    fn malformed_files_rejected() {
        assert!(entries_from_text("not a header").is_err());
        assert!(entries_from_text("[F 2 3 cse=1 factorize=1 fma=1]").is_err());
        assert!(entries_from_text("[F 2 3 cse=1 factorize=1 fma=1 naive=0]\nnope").is_err());
        assert!(entries_from_text("# empty is fine\n").unwrap().is_empty());
    }
}
