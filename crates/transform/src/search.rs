//! Polynomial point search (§3.1.1).
//!
//! The paper begins with the ordered base set `(0, 1, −1)` and, when
//! more points are required, searches the candidate pool
//! `P = {a/b | −9 ≤ a ≤ 9, 1 ≤ b ≤ 9}` by measuring the median
//! relative error of the resulting Winograd convolution over random
//! tensors. The paper also notes that *recomputing the whole sequence*
//! when a point is added beats reusing the previous prefix; we
//! implement the search as a greedy sequence extension where every
//! prefix is itself the best found, and expose the trial count so
//! callers can trade accuracy for time (the paper uses 10 000 trials).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use wino_num::Rational;

use crate::accuracy::measure_tile_error;
use crate::error::TransformError;
use crate::points::{base_points, candidate_pool};
use crate::spec::WinogradSpec;

/// Configuration of the point search.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Error-measurement trials per candidate (paper: 10 000; tests
    /// use far fewer).
    pub trials: usize,
    /// RNG seed for the error measurement (shared across candidates so
    /// they are compared on identical tensors).
    pub seed: u64,
    /// Optional cap on candidates examined per step (sampled uniformly
    /// when the pool is larger); `None` means the full pool, which is
    /// the paper's exhaustive per-step search.
    pub max_candidates_per_step: Option<usize>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            trials: 500,
            seed: 0x5eed,
            max_candidates_per_step: None,
        }
    }
}

/// Result of a point search.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// The selected points, starting with the base set `(0, 1, −1)`.
    pub points: Vec<Rational>,
    /// Median relative error achieved by the full set.
    pub median_error: f64,
    /// Number of candidate evaluations performed.
    pub evaluations: usize,
}

/// Greedily selects interpolation points for `spec`, extending the
/// base set one point at a time with the pool candidate that minimizes
/// the measured median error.
///
/// # Errors
/// Propagates construction failures; returns `BadSpec` if the spec
/// needs fewer points than the base set provides (search is then
/// unnecessary — use the base set directly).
pub fn search_points(
    spec: WinogradSpec,
    config: &SearchConfig,
) -> Result<SearchResult, TransformError> {
    let needed = spec.points_needed();
    let mut points = base_points();
    if needed < points.len() {
        return Err(TransformError::BadSpec(format!(
            "{spec} needs only {needed} points; the base set suffices"
        )));
    }
    points.truncate(needed.min(points.len()));
    let pool = candidate_pool();
    let mut evaluations = 0usize;
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9e3779b97f4a7c15);

    while points.len() < needed {
        let mut candidates: Vec<&Rational> = pool.iter().filter(|c| !points.contains(c)).collect();
        if let Some(cap) = config.max_candidates_per_step {
            if candidates.len() > cap {
                candidates.shuffle(&mut rng);
                candidates.truncate(cap);
            }
        }
        // A prefix of k points defines a smaller Winograd convolution
        // (α = k + 1); candidates are scored on that prefix spec —
        // the conditioning of a point set is essentially independent
        // of how the α budget is split between m and r. When the
        // prefix is too short for the real filter size, a 3-tap proxy
        // spec is used.
        let trial_len = points.len() + 1;
        let eval_spec = prefix_spec(trial_len, spec.r)?;
        let mut best: Option<(f64, &Rational)> = None;
        for cand in candidates {
            let mut trial_points = points.clone();
            trial_points.push(cand.clone());
            // Use a *fixed* seed so every candidate faces identical
            // random tensors.
            let stats =
                match measure_tile_error(eval_spec, &trial_points, config.trials, config.seed) {
                    Ok(s) => s,
                    // A candidate that fails construction (cannot happen
                    // for distinct points, but be defensive) is skipped.
                    Err(_) => continue,
                };
            evaluations += 1;
            let better = match &best {
                None => true,
                Some((err, _)) => stats.median < *err,
            };
            if better {
                best = Some((stats.median, cand));
            }
        }
        let (_, chosen) = best.ok_or_else(|| {
            TransformError::BadSpec(format!("candidate pool exhausted for {spec}"))
        })?;
        points.push(chosen.clone());
    }

    let final_stats = measure_tile_error(spec, &points, config.trials, config.seed)?;
    Ok(SearchResult {
        points,
        median_error: final_stats.median,
        evaluations,
    })
}

/// The spec used to score a point-set prefix of length `len`: the
/// convolution with `α = len + 1` and the real filter size where
/// possible, otherwise a 3-tap proxy.
fn prefix_spec(len: usize, r: usize) -> Result<WinogradSpec, TransformError> {
    let alpha = len + 1;
    if alpha > r {
        WinogradSpec::new(alpha - r + 1, r)
    } else {
        // Trial sets always extend the 3-point base set, so α ≥ 5 here
        // and the 3-tap proxy spec F(α−2, 3) consumes exactly `len`
        // points.
        WinogradSpec::new(alpha - 2, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::table3_points;

    fn cfg(trials: usize) -> SearchConfig {
        SearchConfig {
            trials,
            seed: 99,
            max_candidates_per_step: Some(12),
        }
    }

    #[test]
    fn base_set_needs_no_search() {
        // F(2,3) needs exactly the 3 base points.
        let spec = WinogradSpec::new(2, 3).unwrap();
        let res = search_points(spec, &cfg(30)).unwrap();
        assert_eq!(res.points, base_points());
        assert_eq!(res.evaluations, 0);
    }

    #[test]
    fn finds_a_fourth_point_for_f33() {
        let spec = WinogradSpec::new(3, 3).unwrap();
        let res = search_points(spec, &cfg(40)).unwrap();
        assert_eq!(res.points.len(), 4);
        assert_eq!(&res.points[..3], &base_points()[..]);
        assert!(res.evaluations > 0);
        assert!(res.median_error.is_finite());
    }

    #[test]
    fn searched_points_are_competitive_with_table3() {
        // The greedy search at modest trial counts should land within
        // an order of magnitude of the paper's hand-picked set.
        let spec = WinogradSpec::new(4, 3).unwrap(); // α = 6
        let res = search_points(spec, &cfg(60)).unwrap();
        let table = measure_tile_error(spec, &table3_points(6).unwrap(), 60, 99).unwrap();
        assert!(
            res.median_error < table.median * 10.0,
            "searched {} vs table {}",
            res.median_error,
            table.median
        );
    }

    #[test]
    fn rejects_specs_below_base_set() {
        let spec = WinogradSpec::new(1, 3).unwrap(); // needs 2 points
        assert!(matches!(
            search_points(spec, &cfg(10)),
            Err(TransformError::BadSpec(_))
        ));
    }

    #[test]
    fn deterministic_for_fixed_config() {
        let spec = WinogradSpec::new(3, 3).unwrap();
        let a = search_points(spec, &cfg(30)).unwrap();
        let b = search_points(spec, &cfg(30)).unwrap();
        assert_eq!(a.points, b.points);
    }
}
