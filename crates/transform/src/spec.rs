//! Winograd algorithm specifications.

use std::fmt;

use crate::error::TransformError;

/// A Winograd minimal-filtering specification `F(m, r)`: `m` outputs
/// computed with an `r`-tap filter. The 2-D convolution form
/// `F(m², r²)` uses the same matrices applied along both axes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WinogradSpec {
    /// Output tile size `m` (freely choosable; the paper explores
    /// `2 ≤ m ≤ 10`).
    pub m: usize,
    /// Filter (kernel) size `r` (fixed by the convolution layer; the
    /// paper evaluates `r ∈ {3, 5, 7}`).
    pub r: usize,
}

impl WinogradSpec {
    /// Creates and validates a specification.
    ///
    /// # Errors
    /// Rejects `m < 1` and `r < 2` (a 1-tap filter is a scale, not a
    /// convolution), for which the Winograd construction degenerates.
    pub fn new(m: usize, r: usize) -> Result<Self, TransformError> {
        if m < 1 {
            return Err(TransformError::BadSpec(
                "output tile size m must be >= 1".into(),
            ));
        }
        if r < 2 {
            return Err(TransformError::BadSpec("filter size r must be >= 2".into()));
        }
        Ok(WinogradSpec { m, r })
    }

    /// The internal working tile size `α = m + r − 1`, which fixes the
    /// shapes of all three transformation matrices.
    pub fn alpha(&self) -> usize {
        self.m + self.r - 1
    }

    /// Number of finite interpolation points required: `m + r − 2`
    /// (the remaining point is the ∞ pseudo-point).
    pub fn points_needed(&self) -> usize {
        self.m + self.r - 2
    }

    /// Multiplications needed by the 1-D algorithm (`α = m + r − 1`,
    /// versus `m·r` for the direct method).
    pub fn multiplications_1d(&self) -> usize {
        self.alpha()
    }

    /// Multiplications needed per 2-D output tile: `α²` versus
    /// `m²·r²` direct.
    pub fn multiplications_2d(&self) -> usize {
        self.alpha() * self.alpha()
    }
}

impl fmt::Display for WinogradSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F({}, {})", self.m, self.r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_and_point_count() {
        let s = WinogradSpec::new(2, 3).unwrap();
        assert_eq!(s.alpha(), 4);
        assert_eq!(s.points_needed(), 3);
        assert_eq!(s.to_string(), "F(2, 3)");
    }

    #[test]
    fn multiplication_savings() {
        let s = WinogradSpec::new(2, 3).unwrap();
        assert_eq!(s.multiplications_1d(), 4); // vs 6 direct
        assert_eq!(s.multiplications_2d(), 16); // vs 36 direct
    }

    #[test]
    fn rejects_degenerate_specs() {
        assert!(WinogradSpec::new(0, 3).is_err());
        assert!(WinogradSpec::new(2, 1).is_err());
        assert!(WinogradSpec::new(1, 2).is_ok());
    }

    #[test]
    fn paper_range() {
        for m in 2..=10 {
            for r in [3, 5, 7] {
                let s = WinogradSpec::new(m, r).unwrap();
                assert_eq!(s.alpha(), m + r - 1);
            }
        }
    }
}
