//! Recipe database (§3.1.2: "Since these recipes remain the same for
//! every specific F(m, r), we store them in a database to facilitate
//! their reuse and avoid generating them again").
//!
//! The database is an in-process, thread-safe cache keyed by the
//! specification and pipeline options. Code generation, auto-tuning
//! sweeps and the benchmark harness all hit the same instance, so each
//! recipe is derived exactly once per process.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;
use wino_symbolic::RecipeOptions;

use crate::error::TransformError;
use crate::recipes::TransformRecipes;
use crate::spec::WinogradSpec;

type Key = (WinogradSpec, bool, bool, bool, bool);

fn key(spec: WinogradSpec, opts: RecipeOptions, naive: bool) -> Key {
    (spec, opts.cse, opts.factorize, opts.fma, naive)
}

/// A thread-safe cache of generated transformation recipes.
#[derive(Default)]
pub struct RecipeDb {
    entries: RwLock<HashMap<Key, Arc<TransformRecipes>>>,
}

impl RecipeDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the recipes for `(spec, opts)`, generating and caching
    /// them on first use.
    ///
    /// # Errors
    /// Propagates recipe-generation failures (unsupported α, bad
    /// spec). Failures are not cached.
    pub fn get(
        &self,
        spec: WinogradSpec,
        opts: RecipeOptions,
    ) -> Result<Arc<TransformRecipes>, TransformError> {
        self.get_inner(spec, opts, false)
    }

    /// Returns the *naive dense* recipes for `spec` (the Figure-5/6
    /// baseline), cached separately from the optimized pipelines.
    ///
    /// # Errors
    /// Propagates recipe-generation failures.
    pub fn get_naive(&self, spec: WinogradSpec) -> Result<Arc<TransformRecipes>, TransformError> {
        self.get_inner(spec, RecipeOptions::minimal(), true)
    }

    fn get_inner(
        &self,
        spec: WinogradSpec,
        opts: RecipeOptions,
        naive: bool,
    ) -> Result<Arc<TransformRecipes>, TransformError> {
        let k = key(spec, opts, naive);
        if let Some(hit) = self.entries.read().get(&k) {
            return Ok(Arc::clone(hit));
        }
        let generated = Arc::new(if naive {
            TransformRecipes::generate_naive(spec)?
        } else {
            TransformRecipes::generate(spec, opts)?
        });
        let mut w = self.entries.write();
        // A racing generator may have inserted meanwhile; keep the
        // first entry so callers share one allocation.
        let entry = w.entry(k).or_insert_with(|| Arc::clone(&generated));
        Ok(Arc::clone(entry))
    }

    /// Number of cached configurations.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Returns `true` if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Drops all cached recipes.
    pub fn clear(&self) {
        self.entries.write().clear();
    }

    /// Snapshots every cached configuration for persistence.
    pub fn export_entries(&self) -> Vec<crate::persist::PersistedEntry> {
        let mut out: Vec<crate::persist::PersistedEntry> = self
            .entries
            .read()
            .iter()
            .map(
                |(&(spec, cse, factorize, fma, naive), recipes)| crate::persist::PersistedEntry {
                    spec,
                    options: RecipeOptions {
                        cse,
                        factorize,
                        fma,
                    },
                    naive,
                    points: recipes.matrices.points.clone(),
                    recipes: (
                        recipes.filter.clone(),
                        recipes.input.clone(),
                        recipes.output.clone(),
                    ),
                },
            )
            .collect();
        out.sort_by_key(|e| (e.spec, e.naive));
        out
    }

    /// Inserts an already-verified entry (used by the disk loader).
    pub(crate) fn insert_loaded(
        &self,
        spec: WinogradSpec,
        opts: RecipeOptions,
        naive: bool,
        recipes: TransformRecipes,
    ) {
        self.entries
            .write()
            .insert(key(spec, opts, naive), Arc::new(recipes));
    }
}

/// The process-wide shared database instance.
pub fn recipe_db() -> &'static RecipeDb {
    static DB: OnceLock<RecipeDb> = OnceLock::new();
    DB.get_or_init(RecipeDb::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_returns_shared_instances() {
        let db = RecipeDb::new();
        let spec = WinogradSpec::new(2, 3).unwrap();
        let a = db.get(spec, RecipeOptions::optimized()).unwrap();
        let b = db.get(spec, RecipeOptions::optimized()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn options_are_part_of_the_key() {
        let db = RecipeDb::new();
        let spec = WinogradSpec::new(2, 3).unwrap();
        let opt = db.get(spec, RecipeOptions::optimized()).unwrap();
        let min = db.get(spec, RecipeOptions::minimal()).unwrap();
        let naive = db.get_naive(spec).unwrap();
        assert!(!Arc::ptr_eq(&opt, &min));
        assert_eq!(db.len(), 3);
        assert!(opt.filter.op_count().total() <= min.filter.op_count().total());
        assert!(min.filter.op_count().total() < naive.filter.op_count().total());
    }

    #[test]
    fn failures_are_not_cached() {
        let db = RecipeDb::new();
        // α = 18 has no built-in point set.
        let spec = WinogradSpec::new(12, 7).unwrap();
        assert!(db.get(spec, RecipeOptions::optimized()).is_err());
        assert!(db.is_empty());
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let db = Arc::new(RecipeDb::new());
        let spec = WinogradSpec::new(4, 3).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || db.get(spec, RecipeOptions::optimized()).unwrap().spec)
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), spec);
        }
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn global_instance_is_reused() {
        let spec = WinogradSpec::new(3, 3).unwrap();
        let a = recipe_db().get(spec, RecipeOptions::optimized()).unwrap();
        let b = recipe_db().get(spec, RecipeOptions::optimized()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
