//! # wino-transform — Winograd transformation generation
//!
//! Implements §3.1 of the paper: the **modified Toom-Cook** method
//! constructs the transformation matrices `A`, `G`, `B` of any
//! `F(m, r)` over exact rationals from a set of polynomial
//! interpolation points; the symbolic pipeline of `wino-symbolic` then
//! compiles each matrix into a minimal straight-line recipe, cached in
//! a process-wide [`RecipeDb`].
//!
//! The crate also carries the paper's Table-3 point sets, the
//! candidate pool and greedy search of §3.1.1, and the tile-level
//! accuracy measurement used by the search.
//!
//! ```
//! use wino_symbolic::RecipeOptions;
//! use wino_transform::{TransformRecipes, WinogradSpec};
//!
//! let spec = WinogradSpec::new(6, 3).unwrap(); // α = 8: the sweet spot
//! let recipes = TransformRecipes::generate(spec, RecipeOptions::optimized()).unwrap();
//! let baseline = wino_transform::BaselineOps::for_spec(spec).total();
//! let optimized = recipes.total_transform_ops_2d();
//! assert!(optimized.total_unfused() < baseline.total_unfused() / 2);
//! ```

#![warn(missing_docs)]

pub mod accuracy;
pub mod db;
pub mod error;
pub mod persist;
pub mod points;
pub mod recipes;
pub mod search;
pub mod spec;
pub mod toomcook;

pub use accuracy::{measure_tile_error, ErrorStats};
pub use db::{recipe_db, RecipeDb};
pub use error::TransformError;
pub use persist::{entries_from_text, entries_to_text, entry_to_recipes, PersistedEntry};
pub use points::{base_points, candidate_pool, table3_paper_error, table3_points};
pub use recipes::{elementwise_ops, BaselineOps, TransformRecipes};
pub use search::{search_points, SearchConfig, SearchResult};
pub use spec::WinogradSpec;
pub use toomcook::{
    correlate_1d, correlate_2d, toom_cook_matrices, winograd_1d_exact, winograd_2d_exact,
    TransformMatrices,
};
