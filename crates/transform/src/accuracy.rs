//! Tile-level numerical accuracy measurement (§3.1.1, §4.1).
//!
//! Follows the paper's protocol: random input and filter tensors with
//! a uniform distribution in (−1, 1) — "in practice, the weights of
//! deep neural networks are primarily concentrated in this range" —
//! Winograd evaluated in FP32, direct convolution in FP64, relative
//! error via the L1 matrix norm `‖X‖₁ = max_j Σ_i |a_ij|`, and the
//! median over many trials as the representative value.
//!
//! This module measures a single Winograd tile, which isolates exactly
//! the transform-induced rounding the polynomial points control; the
//! full-convolution variant (whole tensors, channel accumulation)
//! lives in `wino-conv::accuracy` and is what regenerates Table 3 and
//! Figure 4.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wino_num::Rational;

use crate::error::TransformError;
use crate::spec::WinogradSpec;
use crate::toomcook::{toom_cook_matrices, TransformMatrices};

/// Summary statistics of a set of per-trial relative errors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorStats {
    /// Median relative error (the paper's representative value).
    pub median: f64,
    /// First quartile.
    pub q1: f64,
    /// Third quartile.
    pub q3: f64,
    /// Minimum observed error.
    pub min: f64,
    /// Maximum observed error.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl ErrorStats {
    /// Computes the statistics of a non-empty error sample.
    ///
    /// Panics on an empty sample; callers always run ≥ 1 trial.
    pub fn from_samples(mut samples: Vec<f64>) -> ErrorStats {
        assert!(!samples.is_empty(), "error sample must be non-empty");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("errors are finite"));
        let q = |f: f64| -> f64 {
            let pos = f * (samples.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            samples[lo] * (1.0 - frac) + samples[hi] * frac
        };
        ErrorStats {
            median: q(0.5),
            q1: q(0.25),
            q3: q(0.75),
            min: samples[0],
            max: *samples.last().expect("non-empty"),
            mean: samples.iter().sum::<f64>() / samples.len() as f64,
        }
    }
}

/// The paper's L1 matrix norm: maximum absolute column sum.
pub fn l1_matrix_norm(data: &[f64], rows: usize, cols: usize) -> f64 {
    (0..cols)
        .map(|j| (0..rows).map(|i| data[i * cols + j].abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Dense f32 row-major matmul for the tiny transform matrices.
fn matmul_f32(a: &[f32], b: &[f32], n: usize, k: usize, m: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * m];
    for i in 0..n {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            for j in 0..m {
                out[i * m + j] += av * b[p * m + j];
            }
        }
    }
    out
}

fn transpose_f32(a: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * cols];
    for i in 0..rows {
        for j in 0..cols {
            out[j * rows + i] = a[i * cols + j];
        }
    }
    out
}

/// One Winograd tile in FP32 through the transformation matrices:
/// `Y = Aᵀ[(G·g·Gᵀ) ⊙ (Bᵀ·d·B)]·A`.
pub fn winograd_tile_f32(mats: &TransformMatrices, d: &[f32], g: &[f32]) -> Vec<f32> {
    let alpha = mats.alpha();
    let (m, r) = (mats.spec.m, mats.spec.r);
    let gm = mats.g.to_f32_vec();
    let bt = mats.b_t.to_f32_vec();
    let at = mats.a_t.to_f32_vec();
    // U = G g Gᵀ : (α×r)(r×r)(r×α)
    let u = matmul_f32(
        &matmul_f32(&gm, g, alpha, r, r),
        &transpose_f32(&gm, alpha, r),
        alpha,
        r,
        alpha,
    );
    // V = Bᵀ d B : (α×α)(α×α)(α×α)
    let v = matmul_f32(
        &matmul_f32(&bt, d, alpha, alpha, alpha),
        &transpose_f32(&bt, alpha, alpha),
        alpha,
        alpha,
        alpha,
    );
    let prod: Vec<f32> = u.iter().zip(&v).map(|(a, b)| a * b).collect();
    // Y = Aᵀ prod A : (m×α)(α×α)(α×m)
    matmul_f32(
        &matmul_f32(&at, &prod, m, alpha, alpha),
        &transpose_f32(&at, m, alpha),
        m,
        alpha,
        m,
    )
}

/// Direct FP64 correlation of one tile — the reference result.
pub fn direct_tile_f64(d: &[f64], g: &[f64], alpha: usize, r: usize) -> Vec<f64> {
    let m = alpha + 1 - r;
    let mut out = vec![0.0f64; m * m];
    for y in 0..m {
        for x in 0..m {
            let mut acc = 0.0;
            for i in 0..r {
                for j in 0..r {
                    acc += g[i * r + j] * d[(y + i) * alpha + (x + j)];
                }
            }
            out[y * m + x] = acc;
        }
    }
    out
}

/// Relative error of one random tile trial.
pub fn tile_trial_error(mats: &TransformMatrices, rng: &mut StdRng) -> f64 {
    let alpha = mats.alpha();
    let r = mats.spec.r;
    let m = mats.spec.m;
    let d32: Vec<f32> = (0..alpha * alpha)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    let g32: Vec<f32> = (0..r * r).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let d64: Vec<f64> = d32.iter().map(|&v| v as f64).collect();
    let g64: Vec<f64> = g32.iter().map(|&v| v as f64).collect();
    let wino = winograd_tile_f32(mats, &d32, &g32);
    let direct = direct_tile_f64(&d64, &g64, alpha, r);
    let diff: Vec<f64> = wino
        .iter()
        .zip(&direct)
        .map(|(w, d)| *w as f64 - d)
        .collect();
    let denom = l1_matrix_norm(&direct, m, m);
    if denom == 0.0 {
        return 0.0;
    }
    l1_matrix_norm(&diff, m, m) / denom
}

/// Runs `trials` random-tile error measurements for `spec` with the
/// given points and returns the summary statistics.
///
/// # Errors
/// Propagates matrix-construction failures.
pub fn measure_tile_error(
    spec: WinogradSpec,
    points: &[Rational],
    trials: usize,
    seed: u64,
) -> Result<ErrorStats, TransformError> {
    let mats = toom_cook_matrices(spec, points)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let samples: Vec<f64> = (0..trials.max(1))
        .map(|_| tile_trial_error(&mats, &mut rng))
        .collect();
    Ok(ErrorStats::from_samples(samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::table3_points;

    fn spec(m: usize, r: usize) -> WinogradSpec {
        WinogradSpec::new(m, r).unwrap()
    }

    #[test]
    fn stats_quartiles() {
        let s = ErrorStats::from_samples(vec![4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert!((s.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn l1_norm_is_max_column_sum() {
        // [[1, -2], [3, 4]] → columns sums 4 and 6.
        let n = l1_matrix_norm(&[1.0, -2.0, 3.0, 4.0], 2, 2);
        assert_eq!(n, 6.0);
    }

    #[test]
    fn f23_error_is_near_machine_epsilon() {
        let stats = measure_tile_error(spec(2, 3), &table3_points(4).unwrap(), 200, 42).unwrap();
        // Paper: 6.11e-8 for α = 4. Tile-level must be the same order.
        assert!(stats.median < 1e-6, "median = {}", stats.median);
        assert!(stats.median > 0.0);
    }

    #[test]
    fn error_grows_with_alpha() {
        let small = measure_tile_error(spec(2, 3), &table3_points(4).unwrap(), 100, 7).unwrap();
        let large = measure_tile_error(spec(10, 7), &table3_points(16).unwrap(), 100, 7).unwrap();
        assert!(
            large.median > 10.0 * small.median,
            "alpha=16 median {} should dwarf alpha=4 median {}",
            large.median,
            small.median
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = measure_tile_error(spec(4, 3), &table3_points(6).unwrap(), 50, 1).unwrap();
        let b = measure_tile_error(spec(4, 3), &table3_points(6).unwrap(), 50, 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn winograd_tile_f32_matches_direct_closely() {
        let mats = toom_cook_matrices(spec(2, 3), &table3_points(4).unwrap()).unwrap();
        let d: Vec<f32> = (0..16).map(|k| (k as f32) / 16.0 - 0.5).collect();
        let g: Vec<f32> = (0..9).map(|k| (k as f32) / 9.0 - 0.4).collect();
        let wino = winograd_tile_f32(&mats, &d, &g);
        let direct = direct_tile_f64(
            &d.iter().map(|&v| v as f64).collect::<Vec<_>>(),
            &g.iter().map(|&v| v as f64).collect::<Vec<_>>(),
            4,
            3,
        );
        for (w, e) in wino.iter().zip(&direct) {
            assert!((*w as f64 - e).abs() < 1e-5, "wino {w} vs direct {e}");
        }
    }
}
