//! Polynomial interpolation points (§3.1.1 of the paper).
//!
//! The numerical accuracy of a Winograd convolution is governed by the
//! polynomial points from which its transformation matrices are
//! generated. The paper starts from the base set `(0, 1, −1)` —
//! multiplications by 0/±1 are free — and extends it with small
//! rationals `a/b`, `−9 ≤ a ≤ 9`, `1 ≤ b ≤ 9`, chosen by error
//! measurement. This module carries the paper's selected point sets
//! (Table 3) and the candidate pool used by the search in
//! [`crate::search`].

use wino_num::Rational;

use crate::error::TransformError;

/// The base point set `BP = (0, 1, −1)` that every Table-3 entry
/// extends.
pub fn base_points() -> Vec<Rational> {
    vec![
        Rational::from_int(0),
        Rational::from_int(1),
        Rational::from_int(-1),
    ]
}

/// The paper's selected polynomial points for internal tile size
/// `alpha` (Table 3), as the full ordered set including the base
/// points.
///
/// One deviation from the printed table: for `α = 14` the paper lists
/// `−7/9` twice, which would make the Vandermonde system singular —
/// an obvious typo. We use `−9/7` for the final point, consistent with
/// the mirrored-reciprocal pattern of the neighbouring rows.
///
/// # Errors
/// [`TransformError::NoPointsForAlpha`] outside the supported range
/// `4 ..= 16`.
pub fn table3_points(alpha: usize) -> Result<Vec<Rational>, TransformError> {
    let extra: &[(i64, i64)] = match alpha {
        4 => &[],
        5 => &[(2, 1)],
        6 => &[(1, 2), (-2, 1)],
        7 => &[(1, 2), (-2, 1), (2, 1)],
        8 => &[(2, 1), (-1, 2), (1, 2), (-2, 1)],
        9 => &[(2, 1), (-1, 2), (1, 2), (-2, 1), (4, 1)],
        10 => &[(1, 2), (-2, 1), (2, 1), (-1, 2), (4, 3), (-3, 4)],
        11 => &[(1, 2), (-2, 1), (2, 1), (-1, 2), (4, 3), (-3, 4), (-4, 1)],
        12 => &[
            (1, 2),
            (-2, 1),
            (2, 1),
            (-1, 2),
            (3, 4),
            (-4, 3),
            (9, 2),
            (-2, 9),
        ],
        13 => &[
            (1, 2),
            (-2, 1),
            (2, 1),
            (-1, 2),
            (4, 3),
            (-3, 4),
            (1, 4),
            (-4, 1),
            (4, 1),
        ],
        14 => &[
            (1, 2),
            (-2, 1),
            (2, 1),
            (-1, 2),
            (9, 7),
            (-7, 9),
            (1, 4),
            (-4, 1),
            (7, 9),
            (-9, 7),
        ],
        15 => &[
            (1, 2),
            (-2, 1),
            (2, 1),
            (-1, 2),
            (4, 3),
            (-3, 4),
            (1, 4),
            (-4, 1),
            (7, 9),
            (-9, 7),
            (4, 1),
        ],
        16 => &[
            (1, 2),
            (-2, 1),
            (2, 1),
            (-1, 2),
            (4, 3),
            (-3, 4),
            (2, 7),
            (-7, 2),
            (4, 5),
            (-5, 4),
            (4, 1),
            (-1, 4),
        ],
        _ => return Err(TransformError::NoPointsForAlpha(alpha)),
    };
    let mut pts = base_points();
    pts.extend(extra.iter().map(|&(a, b)| Rational::from_frac(a, b)));
    Ok(pts)
}

/// The relative error the paper reports for each Table-3 point set
/// (FP32 Winograd vs. FP64 direct, L1-norm, median of 10 000 trials).
/// Used by the benchmark harness to print paper-vs-measured columns.
pub fn table3_paper_error(alpha: usize) -> Option<f64> {
    Some(match alpha {
        4 => 6.11e-8,
        5 => 2.65e-7,
        6 => 5.59e-7,
        7 => 1.14e-6,
        8 => 1.76e-6,
        9 => 9.93e-6,
        10 => 1.42e-5,
        11 => 8.38e-5,
        12 => 1.83e-4,
        13 => 5.36e-4,
        14 => 9.10e-4,
        15 => 3.45e-3,
        16 => 4.66e-3,
        _ => return None,
    })
}

/// The candidate pool for point search: all distinct reduced rationals
/// `a/b` with `−9 ≤ a ≤ 9`, `1 ≤ b ≤ 9` (the paper's set `P`, §3.1.1).
pub fn candidate_pool() -> Vec<Rational> {
    let mut pool: Vec<Rational> = Vec::new();
    for a in -9i64..=9 {
        for b in 1i64..=9 {
            let r = Rational::from_frac(a, b);
            if !pool.contains(&r) {
                pool.push(r);
            }
        }
    }
    pool.sort();
    pool
}

/// Validates that a point set has the required cardinality and no
/// duplicates.
///
/// # Errors
/// [`TransformError::WrongPointCount`] or
/// [`TransformError::DuplicatePoint`].
pub fn validate_points(points: &[Rational], required: usize) -> Result<(), TransformError> {
    if points.len() != required {
        return Err(TransformError::WrongPointCount {
            required,
            got: points.len(),
        });
    }
    for (i, p) in points.iter().enumerate() {
        if points[..i].contains(p) {
            return Err(TransformError::DuplicatePoint(p.to_string()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_sets_have_correct_cardinality() {
        for alpha in 4..=16 {
            let pts = table3_points(alpha).unwrap();
            // α−1 finite points (the last point is the ∞ pseudo-point
            // added by the matrix construction itself).
            assert_eq!(pts.len(), alpha - 1, "alpha = {alpha}");
        }
    }

    #[test]
    fn table3_sets_are_duplicate_free() {
        for alpha in 4..=16 {
            let pts = table3_points(alpha).unwrap();
            validate_points(&pts, alpha - 1).unwrap_or_else(|e| {
                panic!("alpha = {alpha}: {e}");
            });
        }
    }

    #[test]
    fn unsupported_alpha_is_an_error() {
        assert!(matches!(
            table3_points(3),
            Err(TransformError::NoPointsForAlpha(3))
        ));
        assert!(matches!(
            table3_points(17),
            Err(TransformError::NoPointsForAlpha(17))
        ));
    }

    #[test]
    fn candidate_pool_is_deduplicated_and_bounded() {
        let pool = candidate_pool();
        assert!(pool.windows(2).all(|w| w[0] < w[1]), "sorted & unique");
        assert!(pool.contains(&Rational::from_frac(-9, 1)));
        assert!(pool.contains(&Rational::from_frac(4, 3)));
        assert!(pool.contains(&Rational::from_int(0)));
        // 1/2 == 2/4 == 3/6 == 4/8 must appear once.
        let halves = pool
            .iter()
            .filter(|p| **p == Rational::from_frac(1, 2))
            .count();
        assert_eq!(halves, 1);
    }

    #[test]
    fn validate_points_detects_errors() {
        let pts = base_points();
        assert!(validate_points(&pts, 3).is_ok());
        assert!(matches!(
            validate_points(&pts, 4),
            Err(TransformError::WrongPointCount {
                required: 4,
                got: 3
            })
        ));
        let dup = vec![Rational::from_int(1), Rational::from_int(1)];
        assert!(matches!(
            validate_points(&dup, 2),
            Err(TransformError::DuplicatePoint(_))
        ));
    }

    #[test]
    fn paper_errors_monotonically_grow() {
        let mut prev = 0.0;
        for alpha in 4..=16 {
            let e = table3_paper_error(alpha).unwrap();
            assert!(e > prev, "alpha = {alpha}");
            prev = e;
        }
        assert!(table3_paper_error(3).is_none());
    }
}
