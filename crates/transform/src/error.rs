//! Error type for transform construction.

use std::fmt;

use wino_num::NumError;

/// Errors produced while constructing Winograd transformations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransformError {
    /// Underlying exact-arithmetic failure.
    Num(NumError),
    /// The Winograd specification is invalid (e.g. `m < 2` or even
    /// filter size).
    BadSpec(String),
    /// The point set has the wrong cardinality for the requested
    /// `F(m, r)`: `m + r - 2` finite points are required.
    WrongPointCount {
        /// Points required (`m + r - 2`).
        required: usize,
        /// Points supplied.
        got: usize,
    },
    /// Two interpolation points coincide, making the system singular.
    DuplicatePoint(String),
    /// No built-in point set exists for this internal tile size.
    NoPointsForAlpha(usize),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::Num(e) => write!(f, "exact arithmetic error: {e}"),
            TransformError::BadSpec(msg) => write!(f, "invalid Winograd spec: {msg}"),
            TransformError::WrongPointCount { required, got } => {
                write!(f, "need {required} interpolation points, got {got}")
            }
            TransformError::DuplicatePoint(p) => {
                write!(f, "duplicate interpolation point {p}")
            }
            TransformError::NoPointsForAlpha(alpha) => {
                write!(
                    f,
                    "no built-in point set for alpha = {alpha} (supported: 4..=16)"
                )
            }
        }
    }
}

impl std::error::Error for TransformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransformError::Num(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumError> for TransformError {
    fn from(e: NumError) -> Self {
        TransformError::Num(e)
    }
}
