//! The numeric gate: accuracy screening of `(F(m, r), variant)`.
//!
//! The paper's Table 3 shows accuracy degrading with α = m + r - 1;
//! wino-verify measured the symbolic coefficient growth behind it
//! (4096× at F(9,7)). The tuner must therefore not *select* a
//! configuration purely on modelled speed — a fast-but-wrong variant
//! is not a candidate at all. [`NumericGate`] runs one small trial
//! convolution per `(m, r, variant)` triple, compares it against the
//! FP64 direct reference, and caches the verdict; the tuner consults
//! the gate before admitting a Winograd point into its search space.
//!
//! The trial is sandboxed (`catch_unwind`): a panicking transform
//! yields a rejection verdict, not a crashed sweep.

use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};

use parking_lot::Mutex;
use wino_conv::{conv_direct_f64, conv_winograd, WinogradConfig, WinogradVariant};
use wino_probe::Counter;
use wino_tensor::{relative_error_l1, ConvDesc, Tensor4};

use crate::guardrail::GuardrailPolicy;
use crate::sandbox::payload_to_string;

static GATE_REJECTED: Counter = Counter::new("guard.gate.rejected");

/// The gate's decision for one `(m, r, variant)` triple.
#[derive(Clone, Debug, PartialEq)]
pub enum GateVerdict {
    /// The trial convolution matched the FP64 reference.
    Passed {
        /// Measured L1 relative error of the trial.
        rel_err: f64,
    },
    /// The triple is ineligible for tuning; the reason rendered as a
    /// string (panic message, transform error, or error magnitude).
    Rejected(String),
}

impl GateVerdict {
    /// Whether the triple may enter the tuning space.
    pub fn passed(&self) -> bool {
        matches!(self, GateVerdict::Passed { .. })
    }
}

/// Memoizing accuracy gate for Winograd configurations.
pub struct NumericGate {
    policy: GuardrailPolicy,
    memo: Mutex<BTreeMap<(usize, usize, WinogradVariant), GateVerdict>>,
}

impl Default for NumericGate {
    fn default() -> Self {
        Self::new()
    }
}

impl NumericGate {
    /// A gate with the default (full) guardrail policy.
    pub fn new() -> Self {
        NumericGate {
            policy: GuardrailPolicy::full(),
            memo: Mutex::new(BTreeMap::new()),
        }
    }

    /// A gate with a custom policy. Only `max_rel_err` is consulted
    /// (the trial always scans for non-finite values); a
    /// [`GuardrailPolicy::disabled`] gate passes everything that runs
    /// to completion with finite output.
    pub fn with_policy(policy: GuardrailPolicy) -> Self {
        NumericGate {
            policy,
            memo: Mutex::new(BTreeMap::new()),
        }
    }

    /// The verdict for `(F(m, r), variant)`, computing and caching it
    /// on first use.
    pub fn check(&self, m: usize, r: usize, variant: WinogradVariant) -> GateVerdict {
        if let Some(v) = self.memo.lock().get(&(m, r, variant)) {
            return v.clone();
        }
        let verdict = self.trial(m, r, variant);
        if let GateVerdict::Rejected(reason) = &verdict {
            GATE_REJECTED.add(1);
            wino_probe::diag(format!("gate: rejecting F({m},{r}) {variant:?}: {reason}"));
        }
        self.memo.lock().insert((m, r, variant), verdict.clone());
        verdict
    }

    /// Number of memoized verdicts (test hook).
    pub fn cached(&self) -> usize {
        self.memo.lock().len()
    }

    fn trial(&self, m: usize, r: usize, variant: WinogradVariant) -> GateVerdict {
        // Two tiles per spatial dim, a couple of channels: big enough
        // to exercise gather/scatter and ragged edges, small enough to
        // be negligible next to one real tuning evaluation.
        let side = 2 * m + r - 1;
        let desc = ConvDesc::new(r, 1, 0, 2, 1, side, side, 2);
        let input = Tensor4::from_fn(1, 2, side, side, |n, c, y, x| {
            ((n + 2 * c + 3 * y + 5 * x) % 11) as f32 * 0.125 - 0.625
        });
        let filters = Tensor4::from_fn(2, 2, r, r, |k, c, y, x| {
            ((k + c + 2 * y + 3 * x) % 7) as f32 * 0.25 - 0.75
        });
        let cfg = WinogradConfig::new(m).with_variant(variant);
        let trial = panic::catch_unwind(AssertUnwindSafe(|| {
            conv_winograd(&input, &filters, &desc, &cfg)
        }));
        let out = match trial {
            Err(payload) => {
                return GateVerdict::Rejected(format!("panicked: {}", payload_to_string(payload)))
            }
            Ok(Err(e)) => return GateVerdict::Rejected(e.to_string()),
            Ok(Ok(out)) => out,
        };
        if let Some(bad) = out.data().iter().find(|v| !v.is_finite()) {
            return GateVerdict::Rejected(format!("non-finite output ({bad})"));
        }
        let reference = conv_direct_f64(&input.to_f64(), &filters.to_f64(), &desc)
            .expect("trial shapes are consistent by construction");
        let rel_err = relative_error_l1(&out.to_f64(), &reference);
        if rel_err > self.policy.max_rel_err {
            return GateVerdict::Rejected(format!(
                "relative error {rel_err:.3e} exceeds {:.1e}",
                self.policy.max_rel_err
            ));
        }
        GateVerdict::Passed { rel_err }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_probe::fault;

    #[test]
    fn small_m_passes_both_variants() {
        let _scope = fault::scoped("");
        let gate = NumericGate::new();
        for variant in [WinogradVariant::NonFused, WinogradVariant::Fused] {
            let v = gate.check(2, 3, variant);
            assert!(v.passed(), "F(2,3) {variant:?} rejected: {v:?}");
        }
    }

    #[test]
    fn unsupported_alpha_is_rejected_not_panicking() {
        let _scope = fault::scoped("");
        let gate = NumericGate::new();
        // α = 40 + 3 - 1 is far outside the recipe database.
        let v = gate.check(40, 3, WinogradVariant::NonFused);
        assert!(!v.passed());
    }

    #[test]
    fn verdicts_are_memoized() {
        let _scope = fault::scoped("");
        let gate = NumericGate::new();
        assert_eq!(gate.cached(), 0);
        let first = gate.check(4, 3, WinogradVariant::Fused);
        assert_eq!(gate.cached(), 1);
        let second = gate.check(4, 3, WinogradVariant::Fused);
        assert_eq!(gate.cached(), 1);
        assert_eq!(first, second);
    }

    #[test]
    fn injected_transform_nan_rejects_winograd_triples() {
        let _scope = fault::scoped("transform:nan");
        let gate = NumericGate::new();
        let v = gate.check(4, 3, WinogradVariant::NonFused);
        match v {
            GateVerdict::Rejected(reason) => assert!(reason.contains("non-finite")),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn injected_candidate_panic_rejects_cleanly() {
        let _scope = fault::scoped("transform:panic");
        let gate = NumericGate::new();
        let v = gate.check(4, 3, WinogradVariant::Fused);
        match v {
            GateVerdict::Rejected(reason) => assert!(reason.contains("panic")),
            other => panic!("expected rejection, got {other:?}"),
        }
    }
}
