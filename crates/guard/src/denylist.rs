//! Persistent quarantine of misbehaving tuning candidates.
//!
//! When the sandbox catches a candidate panicking, overrunning its
//! watchdog budget, or producing non-finite numbers, the candidate's
//! `model_key` goes here and every subsequent sweep skips it. The list
//! is string-keyed on purpose: it stores *whatever identity the caller
//! uses* for candidates, so this crate does not need to know the
//! tuner's types (which keeps the dependency arrow pointing
//! tuner → guard, not the reverse).
//!
//! Persistence is tolerant by design: a missing, truncated, or
//! corrupted denylist file loads as an *empty* list with a
//! `probe::diag` note — fault-tolerance metadata must never itself
//! become a crash source.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use parking_lot::Mutex;

/// Why a candidate was quarantined.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DenyCause {
    /// The candidate panicked during evaluation.
    Panic,
    /// The candidate exceeded the sandbox wall-clock budget.
    Timeout,
    /// The candidate produced NaN or ±Inf.
    NonFinite,
    /// The candidate's output failed the accuracy spot-check.
    Inaccurate,
}

impl DenyCause {
    /// Stable serialization tag.
    pub fn as_str(self) -> &'static str {
        match self {
            DenyCause::Panic => "panic",
            DenyCause::Timeout => "timeout",
            DenyCause::NonFinite => "nonfinite",
            DenyCause::Inaccurate => "inaccurate",
        }
    }

    /// Parses a serialization tag; `None` for unknown tags (forward
    /// compatibility — an unknown cause still denies, see
    /// [`Denylist::from_json`]).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "panic" => Some(DenyCause::Panic),
            "timeout" => Some(DenyCause::Timeout),
            "nonfinite" => Some(DenyCause::NonFinite),
            "inaccurate" => Some(DenyCause::Inaccurate),
            _ => None,
        }
    }
}

impl std::fmt::Display for DenyCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Thread-safe set of quarantined candidate keys with JSON
/// persistence.
#[derive(Default)]
pub struct Denylist {
    entries: Mutex<BTreeMap<String, DenyCause>>,
}

impl Denylist {
    /// An empty denylist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `key` is quarantined.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.lock().contains_key(key)
    }

    /// The recorded cause for `key`, if quarantined.
    pub fn cause(&self, key: &str) -> Option<DenyCause> {
        self.entries.lock().get(key).copied()
    }

    /// Quarantines `key`. A later cause overwrites an earlier one
    /// (most recent diagnosis wins).
    pub fn insert(&self, key: impl Into<String>, cause: DenyCause) {
        self.entries.lock().insert(key.into(), cause);
    }

    /// Number of quarantined keys.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether nothing is quarantined.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Sorted snapshot of `(key, cause)` pairs.
    pub fn entries(&self) -> Vec<(String, DenyCause)> {
        self.entries
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Serializes to pretty JSON (`{key: cause_tag}`).
    pub fn to_json(&self) -> String {
        let tags: BTreeMap<String, String> = self
            .entries
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.as_str().to_string()))
            .collect();
        serde_json::to_string_pretty(&tags).unwrap_or_else(|_| "{}".to_string())
    }

    /// Parses a denylist from JSON.
    ///
    /// Unknown cause tags map to [`DenyCause::Panic`] — a key written
    /// by a newer version is still *denied*, just with a degraded
    /// cause, because dropping it would un-quarantine a known-bad
    /// candidate.
    ///
    /// # Errors
    /// Malformed JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let tags: BTreeMap<String, String> = serde_json::from_str(json)?;
        let entries = tags
            .into_iter()
            .map(|(k, tag)| {
                let cause = DenyCause::parse(&tag).unwrap_or(DenyCause::Panic);
                (k, cause)
            })
            .collect();
        Ok(Denylist {
            entries: Mutex::new(entries),
        })
    }

    /// Writes the denylist to `path`.
    ///
    /// # Errors
    /// I/O failures.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads a denylist from `path`, degrading to empty on any
    /// failure.
    ///
    /// A missing file is the normal first-run case (no diagnostic); a
    /// present-but-unreadable or corrupt file emits `probe::diag` and
    /// yields an empty list.
    pub fn load_or_default(path: &Path) -> Self {
        if !path.exists() {
            return Denylist::new();
        }
        match std::fs::read_to_string(path) {
            Err(e) => {
                wino_probe::diag(format!(
                    "denylist: could not read {}: {e}; starting empty",
                    path.display()
                ));
                Denylist::new()
            }
            Ok(json) => match Denylist::from_json(&json) {
                Ok(list) => list,
                Err(e) => {
                    wino_probe::diag(format!(
                        "denylist: corrupt JSON in {}: {e}; starting empty",
                        path.display()
                    ));
                    Denylist::new()
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_cause() {
        let list = Denylist::new();
        assert!(list.is_empty());
        assert!(!list.contains("fused:m9"));
        list.insert("fused:m9", DenyCause::NonFinite);
        assert!(list.contains("fused:m9"));
        assert_eq!(list.cause("fused:m9"), Some(DenyCause::NonFinite));
        list.insert("fused:m9", DenyCause::Panic);
        assert_eq!(list.cause("fused:m9"), Some(DenyCause::Panic));
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn json_round_trip() {
        let list = Denylist::new();
        list.insert("a", DenyCause::Timeout);
        list.insert("b", DenyCause::Inaccurate);
        let loaded = Denylist::from_json(&list.to_json()).unwrap();
        assert_eq!(loaded.entries(), list.entries());
    }

    #[test]
    fn unknown_cause_tag_still_denies() {
        let loaded = Denylist::from_json(r#"{"x": "future-cause"}"#).unwrap();
        assert!(loaded.contains("x"));
        assert_eq!(loaded.cause("x"), Some(DenyCause::Panic));
    }

    #[test]
    fn missing_file_loads_empty_silently() {
        let path = std::env::temp_dir().join("wino_guard_denylist_missing.json");
        let _ = std::fs::remove_file(&path);
        let list = Denylist::load_or_default(&path);
        assert!(list.is_empty());
    }

    #[test]
    fn corrupt_file_loads_empty_with_diag() {
        let path = std::env::temp_dir().join("wino_guard_denylist_corrupt.json");
        std::fs::write(&path, "{ not json").unwrap();
        let list = Denylist::load_or_default(&path);
        assert!(list.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_round_trip() {
        let path = std::env::temp_dir().join("wino_guard_denylist_rt.json");
        let list = Denylist::new();
        list.insert("fused:m7", DenyCause::Timeout);
        list.save(&path).unwrap();
        let loaded = Denylist::load_or_default(&path);
        assert_eq!(loaded.cause("fused:m7"), Some(DenyCause::Timeout));
        let _ = std::fs::remove_file(&path);
    }
}
