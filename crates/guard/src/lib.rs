//! # wino-guard — fault isolation, numeric guardrails, graceful degradation
//!
//! The paper's auto-tuner (§3.3) and serving path assume every kernel
//! variant runs to completion and returns sane numbers. Table 3 and
//! Figure 4 show why that assumption fails in practice: large-α
//! Winograd transforms amplify rounding error catastrophically in f32
//! (wino-verify measured 4096× symbolic coefficient growth at
//! F(9,7)), and a single panicking or NaN-producing candidate can
//! poison a tuning sweep or serve garbage to callers. This crate turns
//! "accuracy must be checked, not assumed" into enforced runtime
//! policy:
//!
//! * [`sandbox`] — run untrusted work (tuner candidates) under
//!   `catch_unwind` with a wall-clock watchdog budget, classifying
//!   panics, overruns, and injected timeouts into a
//!   [`SandboxOutcome`] instead of letting them abort the sweep;
//! * [`guardrail`] — post-run numeric checks: a NaN/Inf scan and a
//!   relative-error spot-check against `conv::direct` on sampled
//!   output positions;
//! * [`GuardedConv`] — the graceful-degradation chain: fused Winograd
//!   → non-fused Winograd → im2col → direct, demoting on panic,
//!   guardrail failure, or unsupported shape, with a `probe::diag`
//!   event and a per-cause counter per demotion;
//! * [`NumericGate`] — the accuracy-vs-α tradeoff as a gate: each
//!   `(F(m,r), variant)` must pass a spot-checked trial convolution
//!   before its tuning points are eligible for selection;
//! * [`Denylist`] — persistent quarantine of candidates that panicked,
//!   timed out, or produced non-finite numbers, so a bad variant is
//!   skipped on every subsequent sweep.
//!
//! Deterministic fault injection (`WINO_FAULT=<site>:<trigger>[:n]`)
//! proves every recovery path fires; the mechanism lives in
//! [`wino_probe::fault`] (hooks must sit *below* the crates they
//! instrument) and is re-exported here as [`fault`].
//!
//! ## Overhead contract
//!
//! With no fault armed and guardrails disabled, the guarded paths add
//! one relaxed atomic load per hook and nothing else — no allocation,
//! no branch beyond the gate. The `guard_overhead` criterion bench
//! holds the disabled path within noise of the raw engines.

#![warn(missing_docs)]

mod denylist;
mod gate;
mod guarded;
pub mod guardrail;
pub mod sandbox;

pub use denylist::{DenyCause, Denylist};
pub use gate::{GateVerdict, NumericGate};
pub use guarded::{Demotion, DemotionCause, Engine, GuardError, GuardedConv, GuardedOutput};
pub use guardrail::{scan_finite, spot_check, GuardrailPolicy, NumericFault};
pub use sandbox::{payload_to_string, run_sandboxed, SandboxBudget, SandboxOutcome};
pub use wino_conv::WinogradVariant;
pub use wino_probe::fault;
