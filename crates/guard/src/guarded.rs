//! The graceful-degradation chain: `GuardedConv`.
//!
//! A caller asking for "the fast engine" should never receive a panic
//! or a tensor full of NaN because the fast engine misbehaved on their
//! shape. [`GuardedConv`] runs a *chain* of engines — by default fused
//! Winograd → non-fused Winograd → im2col → direct — and demotes to
//! the next entry whenever the current one:
//!
//! * panics (caught with `catch_unwind`),
//! * returns a [`wino_conv::ConvError`] (shape/stride/α unsupported),
//! * or produces output the [`guardrail`](crate::guardrail) rejects
//!   (NaN/Inf, or spot-check disagreement with the direct formula).
//!
//! Every demotion emits a `probe::diag` line and bumps a per-cause
//! counter (`guard.demote.panic` / `guard.demote.guardrail` /
//! `guard.demote.unsupported`), so a fleet that is silently riding its
//! fallback shows up in any probe summary. The chain ends at direct
//! convolution, which has no numeric failure mode short of bad inputs;
//! if even it fails, [`GuardError::Exhausted`] reports the full
//! demotion history instead of panicking.

use std::panic::{self, AssertUnwindSafe};

use wino_conv::{
    conv_direct_f32, conv_im2col, conv_winograd, conv_winograd_precomputed, ConvError,
    PrecomputedFilters, WinogradConfig, WinogradVariant,
};
use wino_gemm::GemmConfig;
use wino_probe::Counter;
use wino_tensor::{ConvDesc, Tensor4};

use crate::guardrail::{scan_finite, spot_check, GuardrailPolicy, NumericFault};
use crate::sandbox::payload_to_string;

static DEMOTE_PANIC: Counter = Counter::new("guard.demote.panic");
static DEMOTE_GUARDRAIL: Counter = Counter::new("guard.demote.guardrail");
static DEMOTE_UNSUPPORTED: Counter = Counter::new("guard.demote.unsupported");
static SERVED_FALLBACK: Counter = Counter::new("guard.served_by_fallback");

/// One engine in the degradation chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Fused Winograd with output tile `m`.
    FusedWinograd(usize),
    /// Non-fused (batched-SGEMM) Winograd with output tile `m`.
    NonFusedWinograd(usize),
    /// im2col + blocked SGEMM.
    Im2col,
    /// Direct sliding-window (the terminal fallback).
    Direct,
}

impl Engine {
    fn run(
        &self,
        input: &Tensor4<f32>,
        filters: &Tensor4<f32>,
        desc: &ConvDesc,
        gemm: &GemmConfig,
        warm: Option<&PrecomputedFilters>,
    ) -> Result<Tensor4<f32>, ConvError> {
        let winograd = |m: usize, variant: WinogradVariant| match warm {
            // A warm bank with matching m skips the filter transform.
            // Its values equal the cold transform's (same recipes), so
            // the output is bit-identical either way.
            Some(pre) if pre.spec().m == m => {
                conv_winograd_precomputed(input, pre, desc, variant, gemm)
            }
            _ => {
                let cfg = WinogradConfig::new(m)
                    .with_variant(variant)
                    .with_gemm_config(*gemm);
                conv_winograd(input, filters, desc, &cfg)
            }
        };
        match *self {
            Engine::FusedWinograd(m) => winograd(m, WinogradVariant::Fused),
            Engine::NonFusedWinograd(m) => winograd(m, WinogradVariant::NonFused),
            Engine::Im2col => conv_im2col(input, filters, desc),
            Engine::Direct => conv_direct_f32(input, filters, desc),
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::FusedWinograd(m) => write!(f, "winograd-fused(m={m})"),
            Engine::NonFusedWinograd(m) => write!(f, "winograd-nonfused(m={m})"),
            Engine::Im2col => f.write_str("im2col"),
            Engine::Direct => f.write_str("direct"),
        }
    }
}

/// Why an engine was demoted.
#[derive(Clone, Debug, PartialEq)]
pub enum DemotionCause {
    /// The engine panicked; payload rendered as a string.
    Panic(String),
    /// The output failed a numeric guardrail.
    Guardrail(NumericFault),
    /// The engine refused the convolution (shape/stride/α).
    Unsupported(String),
}

impl std::fmt::Display for DemotionCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DemotionCause::Panic(msg) => write!(f, "panic: {msg}"),
            DemotionCause::Guardrail(fault) => write!(f, "guardrail: {fault}"),
            DemotionCause::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

/// A recorded demotion: which engine failed, and why.
#[derive(Clone, Debug, PartialEq)]
pub struct Demotion {
    /// The engine that was abandoned.
    pub engine: Engine,
    /// What it did wrong.
    pub cause: DemotionCause,
}

/// Every engine in the chain failed.
#[derive(Clone, Debug, PartialEq)]
pub struct GuardError {
    /// The full demotion history, in chain order.
    pub demotions: Vec<Demotion>,
}

impl std::fmt::Display for GuardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "all {} engines in the chain failed:",
            self.demotions.len()
        )?;
        for d in &self.demotions {
            write!(f, " [{}: {}]", d.engine, d.cause)?;
        }
        Ok(())
    }
}

impl std::error::Error for GuardError {}

/// A successful guarded convolution: the output plus the provenance of
/// how it was obtained.
#[derive(Clone, Debug)]
pub struct GuardedOutput {
    /// The convolution result.
    pub output: Tensor4<f32>,
    /// The engine that produced it.
    pub served_by: Engine,
    /// Engines tried and abandoned before `served_by`, in order.
    pub demotions: Vec<Demotion>,
}

/// Convolution with a graceful-degradation chain and numeric
/// guardrails.
pub struct GuardedConv {
    chain: Vec<Engine>,
    policy: GuardrailPolicy,
    gemm: GemmConfig,
}

impl GuardedConv {
    /// The default chain for output tile `m`:
    /// fused Winograd → non-fused Winograd → im2col → direct.
    pub fn new(m: usize) -> Self {
        GuardedConv {
            chain: vec![
                Engine::FusedWinograd(m),
                Engine::NonFusedWinograd(m),
                Engine::Im2col,
                Engine::Direct,
            ],
            policy: GuardrailPolicy::full(),
            gemm: GemmConfig::default(),
        }
    }

    /// Replaces the chain (first entry is tried first).
    pub fn with_chain(mut self, chain: Vec<Engine>) -> Self {
        self.chain = chain;
        self
    }

    /// Replaces the guardrail policy.
    pub fn with_policy(mut self, policy: GuardrailPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the GEMM blocking used by the Winograd engines (e.g. the
    /// tuner's winning `MNt`/`MNb` for this layer).
    pub fn with_gemm_config(mut self, gemm: GemmConfig) -> Self {
        self.gemm = gemm;
        self
    }

    /// The configured chain.
    pub fn chain(&self) -> &[Engine] {
        &self.chain
    }

    /// Runs the chain until an engine completes *and* passes the
    /// guardrails.
    ///
    /// # Errors
    /// [`GuardError`] when every engine in the chain failed; the error
    /// carries the per-engine causes.
    pub fn run(
        &self,
        input: &Tensor4<f32>,
        filters: &Tensor4<f32>,
        desc: &ConvDesc,
    ) -> Result<GuardedOutput, GuardError> {
        self.run_warm(input, filters, desc, None)
    }

    /// [`GuardedConv::run`] with an optional warm filter bank: chain
    /// entries whose Winograd `m` matches `warm` skip the filter
    /// transform (the serving layer's steady state). `filters` is
    /// still required — fallback engines and the spot-check guardrail
    /// consume the raw bank. Output is bit-identical to the cold
    /// [`GuardedConv::run`] as long as `warm` was built with the same
    /// recipes the cold path would resolve (optimized options, the
    /// chain's default).
    ///
    /// # Errors
    /// [`GuardError`] when every engine in the chain failed; the error
    /// carries the per-engine causes.
    pub fn run_warm(
        &self,
        input: &Tensor4<f32>,
        filters: &Tensor4<f32>,
        desc: &ConvDesc,
        warm: Option<&PrecomputedFilters>,
    ) -> Result<GuardedOutput, GuardError> {
        let mut demotions = Vec::new();
        for (i, engine) in self.chain.iter().enumerate() {
            match self.attempt(*engine, input, filters, desc, warm) {
                Ok(output) => {
                    if i > 0 {
                        SERVED_FALLBACK.add(1);
                    }
                    return Ok(GuardedOutput {
                        output,
                        served_by: *engine,
                        demotions,
                    });
                }
                Err(cause) => {
                    let reason = match cause {
                        DemotionCause::Panic(_) => {
                            DEMOTE_PANIC.add(1);
                            "guard.demote.panic"
                        }
                        DemotionCause::Guardrail(_) => {
                            DEMOTE_GUARDRAIL.add(1);
                            "guard.demote.guardrail"
                        }
                        DemotionCause::Unsupported(_) => {
                            DEMOTE_UNSUPPORTED.add(1);
                            "guard.demote.unsupported"
                        }
                    };
                    wino_probe::diag(format!("guard: demoting from {engine}: {cause}"));
                    // With the flight recorder armed, every demotion
                    // dumps the last-N-events context that led to it
                    // (a no-op returning None when disarmed).
                    wino_probe::flight::dump_incident(reason);
                    demotions.push(Demotion {
                        engine: *engine,
                        cause,
                    });
                }
            }
        }
        wino_probe::flight::dump_incident("guard.exhausted");
        Err(GuardError { demotions })
    }

    /// One engine attempt: sandboxed run + guardrails.
    fn attempt(
        &self,
        engine: Engine,
        input: &Tensor4<f32>,
        filters: &Tensor4<f32>,
        desc: &ConvDesc,
        warm: Option<&PrecomputedFilters>,
    ) -> Result<Tensor4<f32>, DemotionCause> {
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            engine.run(input, filters, desc, &self.gemm, warm)
        }));
        let output = match result {
            Err(payload) => return Err(DemotionCause::Panic(payload_to_string(payload))),
            Ok(Err(e)) => return Err(DemotionCause::Unsupported(e.to_string())),
            Ok(Ok(out)) => out,
        };
        if self.policy.check_finite {
            scan_finite(output.data()).map_err(DemotionCause::Guardrail)?;
        }
        spot_check(&output, input, filters, desc, &self.policy)
            .map_err(DemotionCause::Guardrail)?;
        Ok(output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_probe::fault;

    fn fixture() -> (Tensor4<f32>, Tensor4<f32>, ConvDesc) {
        let desc = ConvDesc::new(3, 1, 1, 2, 1, 8, 8, 3);
        let input = Tensor4::from_fn(1, 3, 8, 8, |n, c, y, x| {
            ((n + 2 * c + 3 * y + 5 * x) % 7) as f32 * 0.25 - 0.5
        });
        let filters = Tensor4::from_fn(2, 3, 3, 3, |k, c, y, x| {
            ((k + c + y + 2 * x) % 5) as f32 * 0.125 - 0.25
        });
        (input, filters, desc)
    }

    #[test]
    fn healthy_chain_serves_from_the_head() {
        let _scope = fault::scoped("");
        let (input, filters, desc) = fixture();
        let guarded = GuardedConv::new(4);
        let out = guarded.run(&input, &filters, &desc).unwrap();
        assert_eq!(out.served_by, Engine::FusedWinograd(4));
        assert!(out.demotions.is_empty());
        let reference = conv_direct_f32(&input, &filters, &desc).unwrap();
        for i in 0..reference.len() {
            assert!((out.output.data()[i] - reference.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn unsupported_stride_demotes_to_im2col() {
        let _scope = fault::scoped("");
        // Stride 2: both Winograd engines refuse, im2col serves.
        let desc = ConvDesc::new(3, 2, 1, 2, 1, 8, 8, 3);
        let input = Tensor4::from_fn(1, 3, 8, 8, |_, c, y, x| (c + y + x) as f32 * 0.1);
        let filters = Tensor4::from_fn(2, 3, 3, 3, |k, c, y, x| (k + c + y + x) as f32 * 0.1);
        let guarded = GuardedConv::new(4);
        let out = guarded.run(&input, &filters, &desc).unwrap();
        assert_eq!(out.served_by, Engine::Im2col);
        assert_eq!(out.demotions.len(), 2);
        assert!(out
            .demotions
            .iter()
            .all(|d| matches!(d.cause, DemotionCause::Unsupported(_))));
    }

    #[test]
    fn injected_transform_nan_demotes_past_winograd() {
        let _scope = fault::scoped("transform:nan");
        let (input, filters, desc) = fixture();
        let guarded = GuardedConv::new(4);
        let out = guarded.run(&input, &filters, &desc).unwrap();
        // Both Winograd engines use the tile transformer; im2col does
        // not, so it serves.
        assert_eq!(out.served_by, Engine::Im2col);
        assert_eq!(out.demotions.len(), 2);
        assert!(out
            .demotions
            .iter()
            .all(|d| matches!(d.cause, DemotionCause::Guardrail(_))));
    }

    #[test]
    fn injected_transform_panic_is_caught_and_demoted() {
        let _scope = fault::scoped("transform:panic");
        let (input, filters, desc) = fixture();
        let guarded = GuardedConv::new(4);
        let out = guarded.run(&input, &filters, &desc).unwrap();
        assert_eq!(out.served_by, Engine::Im2col);
        assert!(out
            .demotions
            .iter()
            .all(|d| matches!(d.cause, DemotionCause::Panic(_))));
    }

    #[test]
    fn injected_gemm_fault_reaches_direct() {
        // The GEMM hook poisons every SGEMM: the non-fused engine and
        // im2col both fail, only direct survives. Start the chain at
        // non-fused (the fused engine does its multiply tile-locally
        // and never calls SGEMM).
        let _scope = fault::scoped("gemm:nan");
        let (input, filters, desc) = fixture();
        let guarded = GuardedConv::new(4).with_chain(vec![
            Engine::NonFusedWinograd(4),
            Engine::Im2col,
            Engine::Direct,
        ]);
        let out = guarded.run(&input, &filters, &desc).unwrap();
        assert_eq!(out.served_by, Engine::Direct);
        assert_eq!(out.demotions.len(), 2);
    }

    #[test]
    fn exhausted_chain_reports_all_causes() {
        let _scope = fault::scoped("gemm:panic");
        let (input, filters, desc) = fixture();
        // A chain with no SGEMM-free fallback: everything fails.
        let guarded =
            GuardedConv::new(4).with_chain(vec![Engine::NonFusedWinograd(4), Engine::Im2col]);
        let err = guarded.run(&input, &filters, &desc).unwrap_err();
        assert_eq!(err.demotions.len(), 2);
        assert!(err.to_string().contains("im2col"));
    }

    #[test]
    fn warm_filters_bit_identical_to_cold_run() {
        let _scope = fault::scoped("");
        let (input, filters, desc) = fixture();
        let guarded = GuardedConv::new(4);
        let cold = guarded.run(&input, &filters, &desc).unwrap();
        let pre = PrecomputedFilters::for_config(&filters, &desc, &WinogradConfig::new(4)).unwrap();
        let warm = guarded
            .run_warm(&input, &filters, &desc, Some(&pre))
            .unwrap();
        assert_eq!(warm.served_by, Engine::FusedWinograd(4));
        assert!(warm.demotions.is_empty());
        for (a, b) in warm.output.data().iter().zip(cold.output.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn warm_chain_still_demotes_under_fault() {
        // A poisoned GEMM kills the warm non-fused head; the chain
        // must still land on direct even though warm filters were
        // supplied.
        let (input, filters, desc) = fixture();
        let pre = PrecomputedFilters::for_config(&filters, &desc, &WinogradConfig::new(4)).unwrap();
        let _scope = fault::scoped("gemm:nan");
        let guarded =
            GuardedConv::new(4).with_chain(vec![Engine::NonFusedWinograd(4), Engine::Direct]);
        let out = guarded
            .run_warm(&input, &filters, &desc, Some(&pre))
            .unwrap();
        assert_eq!(out.served_by, Engine::Direct);
        assert_eq!(out.demotions.len(), 1);
    }

    #[test]
    fn disabled_policy_skips_guardrails() {
        let _scope = fault::scoped("transform:nan");
        let (input, filters, desc) = fixture();
        // With guardrails off, the poisoned fused output is served
        // as-is — proving the checks (not the engines) catch NaN.
        let guarded = GuardedConv::new(4).with_policy(GuardrailPolicy::disabled());
        let out = guarded.run(&input, &filters, &desc).unwrap();
        assert_eq!(out.served_by, Engine::FusedWinograd(4));
        assert!(out.output.data().iter().any(|v| v.is_nan()));
    }
}
