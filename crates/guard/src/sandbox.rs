//! Sandboxed execution of untrusted work.
//!
//! Tuner candidates run arbitrary generated plans; a panicking or
//! runaway candidate must cost the sweep one quarantine entry, not the
//! whole run. [`run_sandboxed`] wraps a closure in `catch_unwind` and
//! a wall-clock watchdog: the closure's panic is captured (payload
//! stringified for diagnostics), and a run whose elapsed time exceeds
//! the budget is classified [`SandboxOutcome::TimedOut`].
//!
//! Rust cannot preempt a thread, so the watchdog is *detective*, not
//! preventive: an overrunning candidate finishes, is flagged, and is
//! quarantined so it never runs again — which is the property the
//! tuner needs (no candidate gets a second chance to stall a sweep).
//! Deterministic tests never rely on the clock: the
//! `tuner:timeout[:n]` fault trigger marks the watchdog expired
//! through [`fault::take_injected_timeout`] without sleeping.

use std::panic::{self, AssertUnwindSafe};
use std::time::Instant;

use wino_probe::fault;

/// Wall-clock budget for one sandboxed run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SandboxBudget {
    /// Maximum tolerated wall-clock milliseconds.
    pub wall_ms: f64,
}

impl SandboxBudget {
    /// A budget of `wall_ms` milliseconds.
    pub fn from_ms(wall_ms: f64) -> Self {
        SandboxBudget { wall_ms }
    }
}

impl Default for SandboxBudget {
    /// Generous default (1 s): modelled candidate evaluations take
    /// microseconds, so only a genuinely wedged candidate trips it.
    fn default() -> Self {
        SandboxBudget { wall_ms: 1000.0 }
    }
}

/// Classified result of one sandboxed run.
#[derive(Clone, Debug, PartialEq)]
pub enum SandboxOutcome<T> {
    /// The closure returned within budget.
    Completed(T),
    /// The closure panicked; the payload rendered as a string.
    Panicked(String),
    /// The closure exceeded the wall-clock budget (or an injected
    /// timeout fired inside it).
    TimedOut {
        /// Elapsed milliseconds (0 for injected timeouts observed
        /// before the clock is read).
        elapsed_ms: f64,
        /// The budget that was exceeded.
        budget_ms: f64,
    },
}

impl<T> SandboxOutcome<T> {
    /// The completed value, if any.
    pub fn completed(self) -> Option<T> {
        match self {
            SandboxOutcome::Completed(v) => Some(v),
            _ => None,
        }
    }
}

/// Renders a panic payload the way the default hook would. Public so
/// layers above the guard (`wino-serve` crash containment) can report
/// the same payload text in their own error types.
pub fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` under `catch_unwind` and the watchdog `budget`.
///
/// Outcome precedence: a panic wins over a timeout (the panic is the
/// more actionable diagnosis); an injected timeout wins over the
/// wall clock (tests are deterministic).
pub fn run_sandboxed<T>(budget: &SandboxBudget, f: impl FnOnce() -> T) -> SandboxOutcome<T> {
    let start = Instant::now();
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    match result {
        Err(payload) => SandboxOutcome::Panicked(payload_to_string(payload)),
        Ok(value) => {
            if fault::take_injected_timeout() {
                SandboxOutcome::TimedOut {
                    elapsed_ms: 0.0,
                    budget_ms: budget.wall_ms,
                }
            } else if elapsed_ms > budget.wall_ms {
                SandboxOutcome::TimedOut {
                    elapsed_ms,
                    budget_ms: budget.wall_ms,
                }
            } else {
                SandboxOutcome::Completed(value)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_within_budget() {
        let outcome = run_sandboxed(&SandboxBudget::default(), || 41 + 1);
        assert_eq!(outcome, SandboxOutcome::Completed(42));
    }

    #[test]
    fn panic_is_captured_with_message() {
        let outcome = run_sandboxed(&SandboxBudget::default(), || -> i32 {
            panic!("candidate exploded")
        });
        match outcome {
            SandboxOutcome::Panicked(msg) => assert!(msg.contains("candidate exploded")),
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn injected_timeout_is_deterministic() {
        let _scope = fault::scoped("tuner:timeout:1");
        let outcome = run_sandboxed(&SandboxBudget::default(), || {
            // The candidate body checks its site, as the tuner does.
            let _ = fault::fire(fault::Site::TunerCandidate);
            7
        });
        assert!(matches!(outcome, SandboxOutcome::TimedOut { .. }));
        // Second run: the one-shot fault is spent.
        let outcome = run_sandboxed(&SandboxBudget::default(), || {
            let _ = fault::fire(fault::Site::TunerCandidate);
            7
        });
        assert_eq!(outcome, SandboxOutcome::Completed(7));
    }

    #[test]
    fn wall_clock_overrun_is_flagged() {
        // A zero-millisecond budget: any real work overruns it. This
        // is the only clock-dependent test and it only relies on
        // elapsed > 0.
        let budget = SandboxBudget::from_ms(0.0);
        let outcome = run_sandboxed(&budget, || std::hint::black_box((0..1000).sum::<u64>()));
        assert!(matches!(outcome, SandboxOutcome::TimedOut { .. }));
    }
}
