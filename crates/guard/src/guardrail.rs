//! Numeric guardrails: finite-scan and direct-conv spot-check.
//!
//! A Winograd engine that completes is not necessarily an engine that
//! computed the convolution: large-α transforms can overflow to ±Inf,
//! cancellation can produce NaN, and a mis-tuned recipe can return
//! numbers that are finite but wrong. The guardrails here are the
//! cheap, always-applicable subset of the paper's §4.1 accuracy
//! protocol:
//!
//! * [`scan_finite`] — O(len) sweep rejecting the first NaN/Inf;
//! * [`spot_check`] — recompute a handful of output positions with the
//!   direct sliding-window formula (f64 accumulation) and reject if
//!   the relative error at any sampled position exceeds the policy
//!   threshold.
//!
//! The spot-check recomputes *single output elements* — cost is
//! `samples × C × r²` multiply-adds, independent of output size — so
//! it is safe to leave on in production. [`GuardrailPolicy::disabled`]
//! turns both checks off for overhead-sensitive callers.

use wino_tensor::{ConvDesc, Tensor4};

/// What a guardrail found wrong with an output tensor.
#[derive(Clone, Debug, PartialEq)]
pub enum NumericFault {
    /// A NaN or ±Inf at flat index `index`.
    NonFinite {
        /// Flat index of the first offending element.
        index: usize,
        /// The offending value (as bits survive formatting).
        value: f32,
    },
    /// A sampled position disagreed with the direct reference.
    Inaccurate {
        /// Flat index of the worst sampled position.
        index: usize,
        /// Observed relative error at that position.
        rel_err: f64,
        /// The policy threshold that was exceeded.
        max_rel_err: f64,
    },
}

impl std::fmt::Display for NumericFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NumericFault::NonFinite { index, value } => {
                write!(f, "non-finite value {value} at flat index {index}")
            }
            NumericFault::Inaccurate {
                index,
                rel_err,
                max_rel_err,
            } => write!(
                f,
                "relative error {rel_err:.3e} at flat index {index} exceeds {max_rel_err:.1e}"
            ),
        }
    }
}

/// Which checks run after an engine produces an output.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GuardrailPolicy {
    /// Run the NaN/Inf scan.
    pub check_finite: bool,
    /// Number of output positions to spot-check against the direct
    /// formula (0 disables the spot-check).
    pub spot_samples: usize,
    /// Maximum tolerated relative error at a sampled position.
    pub max_rel_err: f64,
}

impl GuardrailPolicy {
    /// Both checks off: the guarded path adds only its gating branch.
    pub fn disabled() -> Self {
        GuardrailPolicy {
            check_finite: false,
            spot_samples: 0,
            max_rel_err: f64::INFINITY,
        }
    }

    /// NaN/Inf scan only.
    pub fn finite_only() -> Self {
        GuardrailPolicy {
            check_finite: true,
            spot_samples: 0,
            max_rel_err: f64::INFINITY,
        }
    }

    /// Scan + spot-check (the default). The 5e-2 threshold is loose on
    /// purpose: it admits every usable `m` from the paper's Table 3
    /// while rejecting the catastrophic blow-ups the gate exists for.
    pub fn full() -> Self {
        GuardrailPolicy {
            check_finite: true,
            spot_samples: 8,
            max_rel_err: 5e-2,
        }
    }

    /// Whether any check is active.
    pub fn any_enabled(&self) -> bool {
        self.check_finite || self.spot_samples > 0
    }
}

impl Default for GuardrailPolicy {
    fn default() -> Self {
        GuardrailPolicy::full()
    }
}

/// Rejects the first NaN or ±Inf in `data`.
pub fn scan_finite(data: &[f32]) -> Result<(), NumericFault> {
    for (index, &value) in data.iter().enumerate() {
        if !value.is_finite() {
            return Err(NumericFault::NonFinite { index, value });
        }
    }
    Ok(())
}

/// One output element of the direct convolution, accumulated in f64.
fn direct_at(
    input: &Tensor4<f32>,
    filters: &Tensor4<f32>,
    desc: &ConvDesc,
    n: usize,
    k: usize,
    oy: usize,
    ox: usize,
) -> f64 {
    let (ih, iw) = (desc.in_h as isize, desc.in_w as isize);
    let base_y = (oy * desc.stride) as isize - desc.pad as isize;
    let base_x = (ox * desc.stride) as isize - desc.pad as isize;
    let mut acc = 0.0f64;
    for c in 0..desc.in_ch {
        for fy in 0..desc.ksz {
            let y = base_y + fy as isize;
            if y < 0 || y >= ih {
                continue;
            }
            for fx in 0..desc.ksz {
                let x = base_x + fx as isize;
                if x < 0 || x >= iw {
                    continue;
                }
                acc +=
                    input[(n, c, y as usize, x as usize)] as f64 * filters[(k, c, fy, fx)] as f64;
            }
        }
    }
    acc
}

/// Deterministic sample positions: a Weyl-style stride through the
/// flattened output. Knuth's multiplicative constant gives good
/// scatter without any RNG state.
fn sample_indices(total: usize, samples: usize) -> impl Iterator<Item = usize> {
    const STRIDE: usize = 2654435761;
    (0..samples).map(move |s| (s.wrapping_mul(STRIDE).wrapping_add(STRIDE / 2)) % total)
}

/// Spot-checks `output` against the direct formula at
/// `policy.spot_samples` deterministic positions.
///
/// The relative error denominator is clamped at 1e-3 so near-zero
/// reference values (common with symmetric test data) don't turn
/// rounding noise into false rejections.
pub fn spot_check(
    output: &Tensor4<f32>,
    input: &Tensor4<f32>,
    filters: &Tensor4<f32>,
    desc: &ConvDesc,
    policy: &GuardrailPolicy,
) -> Result<(), NumericFault> {
    if policy.spot_samples == 0 || output.is_empty() {
        return Ok(());
    }
    let (_, _, oh, ow) = output.dims();
    let total = output.len();
    for flat in sample_indices(total, policy.spot_samples) {
        let ox = flat % ow;
        let oy = (flat / ow) % oh;
        let k = (flat / (ow * oh)) % desc.out_ch;
        let n = flat / (ow * oh * desc.out_ch);
        let reference = direct_at(input, filters, desc, n, k, oy, ox);
        let got = output[(n, k, oy, ox)] as f64;
        let rel_err = (got - reference).abs() / reference.abs().max(1e-3);
        if rel_err > policy.max_rel_err {
            return Err(NumericFault::Inaccurate {
                index: flat,
                rel_err,
                max_rel_err: policy.max_rel_err,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_conv::conv_direct_f32;

    fn fixture() -> (Tensor4<f32>, Tensor4<f32>, ConvDesc) {
        let desc = ConvDesc::new(3, 1, 1, 2, 1, 6, 6, 3);
        let input = Tensor4::from_fn(1, 3, 6, 6, |n, c, y, x| {
            ((n + 2 * c + 3 * y + 5 * x) % 7) as f32 * 0.25 - 0.5
        });
        let filters = Tensor4::from_fn(2, 3, 3, 3, |k, c, y, x| {
            ((k + c + y + 2 * x) % 5) as f32 * 0.125 - 0.25
        });
        (input, filters, desc)
    }

    #[test]
    fn scan_accepts_finite_rejects_nan_and_inf() {
        assert!(scan_finite(&[0.0, -1.5, 3.0e8]).is_ok());
        let err = scan_finite(&[1.0, f32::NAN, 2.0]).unwrap_err();
        assert!(matches!(err, NumericFault::NonFinite { index: 1, .. }));
        let err = scan_finite(&[1.0, 2.0, f32::NEG_INFINITY]).unwrap_err();
        assert!(matches!(err, NumericFault::NonFinite { index: 2, .. }));
    }

    #[test]
    fn spot_check_accepts_the_true_output() {
        let (input, filters, desc) = fixture();
        let out = conv_direct_f32(&input, &filters, &desc).unwrap();
        spot_check(&out, &input, &filters, &desc, &GuardrailPolicy::full()).unwrap();
    }

    #[test]
    fn spot_check_rejects_a_corrupted_output() {
        let (input, filters, desc) = fixture();
        let mut out = conv_direct_f32(&input, &filters, &desc).unwrap();
        // Corrupt every element so any sample set catches it.
        for v in out.data_mut() {
            *v += 100.0;
        }
        let err = spot_check(&out, &input, &filters, &desc, &GuardrailPolicy::full()).unwrap_err();
        assert!(matches!(err, NumericFault::Inaccurate { .. }));
    }

    #[test]
    fn disabled_policy_checks_nothing() {
        let (input, filters, desc) = fixture();
        let mut out = conv_direct_f32(&input, &filters, &desc).unwrap();
        for v in out.data_mut() {
            *v = f32::NAN;
        }
        let policy = GuardrailPolicy::disabled();
        assert!(!policy.any_enabled());
        spot_check(&out, &input, &filters, &desc, &policy).unwrap();
    }

    #[test]
    fn sample_positions_are_deterministic_and_in_range() {
        let a: Vec<usize> = sample_indices(1000, 8).collect();
        let b: Vec<usize> = sample_indices(1000, 8).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|&i| i < 1000));
    }
}
