//! Degradation-chain properties.
//!
//! Two promises, checked over random shapes:
//!
//! 1. **Transparency** — with no fault armed, `GuardedConv` is
//!    invisible: its output is bit-identical to calling the head
//!    engine directly. The guardrails read the output but never
//!    rewrite it.
//! 2. **Equivalence under demotion** — under each injected fault
//!    class, the guarded output is bit-identical to running the
//!    engine that ends up serving, on its own. Demotion changes the
//!    provenance, never the arithmetic of the survivor.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wino_conv::{conv_direct_f32, conv_im2col, conv_winograd, WinogradConfig, WinogradVariant};
use wino_guard::{fault, Engine, GuardedConv};
use wino_tensor::{ConvDesc, Tensor4};

fn random_case(desc: &ConvDesc, seed: u64) -> (Tensor4<f32>, Tensor4<f32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let input = Tensor4::<f32>::random(
        desc.batch, desc.in_ch, desc.in_h, desc.in_w, -1.0, 1.0, &mut rng,
    );
    let filt = Tensor4::<f32>::random(
        desc.out_ch,
        desc.in_ch,
        desc.ksz,
        desc.ksz,
        -1.0,
        1.0,
        &mut rng,
    );
    (input, filt)
}

fn assert_bits_equal(guarded: &Tensor4<f32>, reference: &Tensor4<f32>) {
    assert_eq!(guarded.dims(), reference.dims());
    let exact = guarded
        .data()
        .iter()
        .zip(reference.data())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(exact, "guarded output diverged from the reference bits");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn no_fault_is_bit_identical_to_the_unguarded_head(
        in_ch in 1usize..5,
        out_ch in 1usize..5,
        hw in 6usize..12,
        m in 2usize..5,
        seed in any::<u64>(),
    ) {
        let _scope = fault::scoped("");
        let desc = ConvDesc::new(3, 1, 1, out_ch, 1, hw, hw, in_ch);
        let (input, filt) = random_case(&desc, seed);
        let out = GuardedConv::new(m).run(&input, &filt, &desc).unwrap();
        prop_assert_eq!(out.served_by, Engine::FusedWinograd(m));
        prop_assert!(out.demotions.is_empty());
        let cfg = WinogradConfig::new(m).with_variant(WinogradVariant::Fused);
        let reference = conv_winograd(&input, &filt, &desc, &cfg).unwrap();
        assert_bits_equal(&out.output, &reference);
    }

    #[test]
    fn transform_nan_serves_exactly_im2col(
        in_ch in 1usize..5,
        out_ch in 1usize..5,
        hw in 6usize..12,
        m in 2usize..5,
        seed in any::<u64>(),
    ) {
        let _scope = fault::scoped("transform:nan");
        let desc = ConvDesc::new(3, 1, 1, out_ch, 1, hw, hw, in_ch);
        let (input, filt) = random_case(&desc, seed);
        let out = GuardedConv::new(m).run(&input, &filt, &desc).unwrap();
        prop_assert_eq!(out.served_by, Engine::Im2col);
        prop_assert_eq!(out.demotions.len(), 2);
        let reference = conv_im2col(&input, &filt, &desc).unwrap();
        assert_bits_equal(&out.output, &reference);
    }

    #[test]
    fn transform_panic_serves_exactly_im2col(
        in_ch in 1usize..5,
        out_ch in 1usize..5,
        hw in 6usize..12,
        m in 2usize..5,
        seed in any::<u64>(),
    ) {
        let _scope = fault::scoped("transform:panic");
        let desc = ConvDesc::new(3, 1, 1, out_ch, 1, hw, hw, in_ch);
        let (input, filt) = random_case(&desc, seed);
        let out = GuardedConv::new(m).run(&input, &filt, &desc).unwrap();
        prop_assert_eq!(out.served_by, Engine::Im2col);
        let reference = conv_im2col(&input, &filt, &desc).unwrap();
        assert_bits_equal(&out.output, &reference);
    }

    #[test]
    fn gemm_nan_serves_exactly_direct(
        in_ch in 1usize..5,
        out_ch in 1usize..5,
        hw in 6usize..12,
        m in 2usize..5,
        seed in any::<u64>(),
    ) {
        // Poisoning SGEMM kills the non-fused engine and im2col; the
        // fused engine never calls SGEMM, so start past it to force
        // the chain all the way down to direct.
        let _scope = fault::scoped("gemm:nan");
        let desc = ConvDesc::new(3, 1, 1, out_ch, 1, hw, hw, in_ch);
        let (input, filt) = random_case(&desc, seed);
        let guarded = GuardedConv::new(m).with_chain(vec![
            Engine::NonFusedWinograd(m),
            Engine::Im2col,
            Engine::Direct,
        ]);
        let out = guarded.run(&input, &filt, &desc).unwrap();
        prop_assert_eq!(out.served_by, Engine::Direct);
        prop_assert_eq!(out.demotions.len(), 2);
        let reference = conv_direct_f32(&input, &filt, &desc).unwrap();
        assert_bits_equal(&out.output, &reference);
    }
}
