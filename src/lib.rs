//! # winograd-meta
//!
//! A from-scratch Rust reproduction of *Accelerating Winograd
//! Convolutions using Symbolic Computation and Meta-programming*
//! (Mazaheri, Beringer, Moskewicz, Wolf, Jannesari — EuroSys '20).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`num`] | `wino-num` | exact big integers, rationals, matrices, polynomials |
//! | [`probe`] | `wino-probe` | zero-overhead-when-off spans, counters, trace exporters |
//! | [`symbolic`] | `wino-symbolic` | expression engine, CSE, factorization, recipes |
//! | [`transform`] | `wino-transform` | modified Toom-Cook, point sets, recipe DB |
//! | [`tensor`] | `wino-tensor` | NCHW tensors, tiling, norms, conv shapes |
//! | [`conv`] | `wino-conv` | direct / im2col / Winograd engines, accuracy protocol |
//! | [`ir`] | `wino-ir` | kernel descriptors: launch config + cost profile |
//! | [`codegen`] | `wino-codegen` | `%(placeholder)` templates, kernel generators |
//! | [`gemm`] | `wino-gemm` | blocked and batched SGEMM |
//! | [`gpu`] | `wino-gpu` | simulated devices, occupancy, timing, plan execution |
//! | [`graph`] | `wino-graph` | compute graph, model zoo (Table 4), variant selection |
//! | [`tuner`] | `wino-tuner` | brute-force auto-tuning over the Table-1 space |
//! | [`vendor`] | `wino-vendor` | cuDNN / MIOpen / ACL simulators |
//!
//! ## Quick start
//!
//! ```
//! use winograd_meta::prelude::*;
//!
//! // 1. Pick a Winograd configuration and generate its recipes.
//! let spec = WinogradSpec::new(6, 3).unwrap(); // F(6,3): α = 8
//! let recipes = TransformRecipes::generate(spec, RecipeOptions::optimized()).unwrap();
//! println!("filter transform in {} ops", recipes.filter.op_count().total());
//!
//! // 2. Run a convolution with them.
//! use rand::SeedableRng;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let desc = ConvDesc::new(3, 1, 1, 8, 1, 16, 16, 4);
//! let input = Tensor4::<f32>::random(1, 4, 16, 16, -1.0, 1.0, &mut rng);
//! let filters = Tensor4::<f32>::random(8, 4, 3, 3, -1.0, 1.0, &mut rng);
//! let out = conv_winograd(&input, &filters, &desc, &WinogradConfig::new(6)).unwrap();
//! assert_eq!(out.dims(), (1, 8, 16, 16));
//! ```

#![warn(missing_docs)]

pub use wino_codegen as codegen;
pub use wino_conv as conv;
pub use wino_gemm as gemm;
pub use wino_gpu as gpu;
pub use wino_graph as graph;
pub use wino_ir as ir;
pub use wino_num as num;
pub use wino_probe as probe;
pub use wino_symbolic as symbolic;
pub use wino_tensor as tensor;
pub use wino_transform as transform;
pub use wino_tuner as tuner;
pub use wino_vendor as vendor;

/// The most common imports in one place.
pub mod prelude {
    pub use wino_codegen::{generate_plan, CodegenOptions, PlanVariant, Unroll};
    pub use wino_conv::{
        conv_direct_f32, conv_direct_f64, conv_im2col, conv_winograd, WinogradConfig,
        WinogradVariant,
    };
    pub use wino_gpu::{estimate_plan_ms, execute_plan, gtx_1080_ti, mali_g71, rx_580};
    pub use wino_graph::{select_engine, table4_convs, ComputeGraph, EngineChoice};
    pub use wino_num::{RatMat, Rational};
    pub use wino_symbolic::{generate_recipe, OpCount, Recipe, RecipeOptions};
    pub use wino_tensor::{ConvDesc, Tensor4};
    pub use wino_transform::{table3_points, toom_cook_matrices, TransformRecipes, WinogradSpec};
    pub use wino_tuner::{tune, TuningCache};
    pub use wino_vendor::{acl, cudnn, miopen};
}
