//! `wino` — command-line front-end for the winograd-meta toolkit.
//!
//! ```text
//! wino matrices <m> <r>                 print exact A/G/B for F(m,r)
//! wino recipe   <m> <r> [--naive]       print the transformation recipes
//! wino kernel   <variant> <m> [conv]    print a generated GPU kernel
//! wino tune     [conv] [--device NAME]  brute-force tune a convolution
//! wino accuracy <alpha> [--trials N]    measure relative error for α
//! wino table4                           list the 31 benchmark convolutions
//! ```
//!
//! `[conv]` is `ksz,stride,pad,out_ch,batch,in_h,in_w,in_ch`
//! (default `3,1,1,64,1,14,14,32`).

use std::process::ExitCode;

use winograd_meta::prelude::*;
use winograd_meta::transform::measure_tile_error;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("matrices") => cmd_matrices(&args[1..]),
        Some("recipe") => cmd_recipe(&args[1..]),
        Some("kernel") => cmd_kernel(&args[1..]),
        Some("tune") => cmd_tune(&args[1..]),
        Some("accuracy") => cmd_accuracy(&args[1..]),
        Some("table4") => cmd_table4(),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}' (try 'wino help')")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "wino — Winograd convolution generator (EuroSys '20 reproduction)\n\n\
         USAGE:\n\
         \x20 wino matrices <m> <r>                 exact A/G/B for F(m,r)\n\
         \x20 wino recipe   <m> <r> [--naive]       transformation recipes + op counts\n\
         \x20 wino kernel   <variant> <m> [conv]    generated GPU kernel source\n\
         \x20                                        variant: fused|nonfused|direct|im2col\n\
         \x20 wino tune     [conv] [--device NAME]  brute-force tune (gtx|rx|mali)\n\
         \x20 wino accuracy <alpha> [--trials N]    relative error for internal tile size\n\
         \x20 wino table4                           the paper's 31 benchmark convolutions\n\n\
         [conv] = ksz,stride,pad,out_ch,batch,in_h,in_w,in_ch  (default 3,1,1,64,1,14,14,32)"
    );
}

fn parse_usize(s: &str, what: &str) -> Result<usize, String> {
    s.parse()
        .map_err(|_| format!("{what}: expected a number, got '{s}'"))
}

fn parse_spec(args: &[String]) -> Result<WinogradSpec, String> {
    let m = parse_usize(args.first().ok_or("missing <m>")?, "m")?;
    let r = parse_usize(args.get(1).ok_or("missing <r>")?, "r")?;
    WinogradSpec::new(m, r).map_err(|e| e.to_string())
}

fn parse_conv(s: &str) -> Result<ConvDesc, String> {
    let parts: Result<Vec<usize>, String> = s
        .split(',')
        .map(|p| parse_usize(p.trim(), "conv field"))
        .collect();
    let parts = parts?;
    if parts.len() != 8 {
        return Err(format!(
            "conv spec needs 8 comma-separated fields, got {}",
            parts.len()
        ));
    }
    Ok(ConvDesc::new(
        parts[0], parts[1], parts[2], parts[3], parts[4], parts[5], parts[6], parts[7],
    ))
}

fn conv_from_args(args: &[String]) -> Result<ConvDesc, String> {
    args.iter()
        .find(|a| a.contains(','))
        .map(|s| parse_conv(s))
        .unwrap_or_else(|| parse_conv("3,1,1,64,1,14,14,32"))
}

fn cmd_matrices(args: &[String]) -> Result<(), String> {
    let spec = parse_spec(args)?;
    let points = table3_points(spec.alpha()).map_err(|e| e.to_string())?;
    let mats = toom_cook_matrices(spec, &points).map_err(|e| e.to_string())?;
    println!(
        "{spec}  (alpha = {}, points {:?})",
        spec.alpha(),
        strs(&points)
    );
    println!("\nG ({}x{}):\n{}", mats.g.rows(), mats.g.cols(), mats.g);
    println!(
        "B^T ({}x{}):\n{}",
        mats.b_t.rows(),
        mats.b_t.cols(),
        mats.b_t
    );
    println!(
        "A^T ({}x{}):\n{}",
        mats.a_t.rows(),
        mats.a_t.cols(),
        mats.a_t
    );
    Ok(())
}

fn strs(points: &[Rational]) -> Vec<String> {
    points.iter().map(|p| p.to_string()).collect()
}

fn cmd_recipe(args: &[String]) -> Result<(), String> {
    let spec = parse_spec(args)?;
    let naive = args.iter().any(|a| a == "--naive");
    let recipes = if naive {
        TransformRecipes::generate_naive(spec)
    } else {
        TransformRecipes::generate(spec, RecipeOptions::optimized())
    }
    .map_err(|e| e.to_string())?;
    for (name, recipe) in [
        ("filter (G)", &recipes.filter),
        ("input (B^T)", &recipes.input),
        ("output (A^T)", &recipes.output),
    ] {
        println!("=== {name}: {} -> {} ===", recipe.n_in, recipe.n_out);
        print!("{recipe}");
        println!("ops: {}\n", recipe.op_count());
    }
    Ok(())
}

fn cmd_kernel(args: &[String]) -> Result<(), String> {
    let variant_name = args.first().ok_or("missing <variant>")?.as_str();
    let desc = conv_from_args(args)?;
    let variant = match variant_name {
        "direct" => PlanVariant::Direct,
        "im2col" => PlanVariant::Im2col,
        "fused" | "nonfused" => {
            let m = args
                .get(1)
                .filter(|a| !a.contains(','))
                .map(|a| parse_usize(a, "m"))
                .transpose()?
                .unwrap_or(6);
            if variant_name == "fused" {
                PlanVariant::WinogradFused { m }
            } else {
                PlanVariant::WinogradNonFused { m }
            }
        }
        other => return Err(format!("unknown variant '{other}'")),
    };
    let plan =
        generate_plan(&desc, variant, &CodegenOptions::default()).map_err(|e| e.to_string())?;
    println!("{plan}");
    for k in &plan.kernels {
        println!("==================== {} ====================", k.name);
        println!("{}", k.source);
    }
    Ok(())
}

fn cmd_tune(args: &[String]) -> Result<(), String> {
    let desc = conv_from_args(args)?;
    let device = match args
        .iter()
        .position(|a| a == "--device")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        None | Some("gtx") => gtx_1080_ti(),
        Some("rx") => rx_580(),
        Some("mali") => mali_g71(),
        Some(other) => return Err(format!("unknown device '{other}' (gtx|rx|mali)")),
    };
    println!("tuning {desc} on {} ...", device.name);
    let report = tune(&desc, &device, 8).map_err(|e| e.to_string())?;
    println!(
        "evaluated {} points ({} rejected as unlaunchable)\n",
        report.evaluated, report.rejected
    );
    println!("best: {:?}", report.best.point);
    println!("      {:.4} ms (modelled)", report.best.time_ms);
    println!("\nper-variant bests:");
    for e in &report.per_variant_best {
        println!("  {:>10.4} ms  {:?}", e.time_ms, e.point);
    }
    Ok(())
}

fn cmd_accuracy(args: &[String]) -> Result<(), String> {
    let alpha = parse_usize(args.first().ok_or("missing <alpha>")?, "alpha")?;
    let trials = args
        .iter()
        .position(|a| a == "--trials")
        .and_then(|i| args.get(i + 1))
        .map(|s| parse_usize(s, "trials"))
        .transpose()?
        .unwrap_or(1000);
    if !(4..=16).contains(&alpha) {
        return Err(format!("alpha {alpha} outside the supported range 4..=16"));
    }
    let spec = WinogradSpec::new(alpha - 2, 3).map_err(|e| e.to_string())?;
    let points = table3_points(alpha).map_err(|e| e.to_string())?;
    let stats = measure_tile_error(spec, &points, trials, 0xACC).map_err(|e| e.to_string())?;
    println!(
        "alpha = {alpha} ({spec}), {trials} trials, points {:?}",
        strs(&points)
    );
    println!("median relative error : {:.3e}", stats.median);
    println!(
        "quartiles             : [{:.3e}, {:.3e}]",
        stats.q1, stats.q3
    );
    println!(
        "range                 : [{:.3e}, {:.3e}]",
        stats.min, stats.max
    );
    if let Some(paper) = winograd_meta::transform::table3_paper_error(alpha) {
        println!("paper (Table 3)       : {paper:.3e}");
    }
    Ok(())
}

fn cmd_table4() -> Result<(), String> {
    println!("The paper's 31 benchmark convolutions (Table 4):\n");
    for (i, d) in table4_convs().iter().enumerate() {
        println!("{:>2}. {:>9.3e} FLOPs  {}", i + 1, d.flops() as f64, d);
    }
    Ok(())
}
