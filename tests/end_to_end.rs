//! End-to-end integration: model → variant → codegen → simulated
//! execution → numerics, across the whole workspace.

use rand::rngs::StdRng;
use rand::SeedableRng;
use winograd_meta::prelude::*;

fn random_case(desc: &ConvDesc, seed: u64) -> (Tensor4<f32>, Tensor4<f32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    (
        Tensor4::random(
            desc.batch, desc.in_ch, desc.in_h, desc.in_w, -1.0, 1.0, &mut rng,
        ),
        Tensor4::random(
            desc.out_ch,
            desc.in_ch,
            desc.ksz,
            desc.ksz,
            -1.0,
            1.0,
            &mut rng,
        ),
    )
}

fn close(a: &Tensor4<f32>, b: &Tensor4<f32>, tol: f32) -> bool {
    a.dims() == b.dims()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + y.abs()))
}

/// Every plan variant the generator emits must execute functionally to
/// the same convolution as the direct reference.
#[test]
fn generated_plans_compute_the_convolution() {
    let desc = ConvDesc::new(3, 1, 1, 8, 2, 12, 12, 4);
    let (input, filters) = random_case(&desc, 1);
    let reference = conv_direct_f32(&input, &filters, &desc).expect("direct runs");
    for variant in [
        PlanVariant::Direct,
        PlanVariant::Im2col,
        PlanVariant::WinogradNonFused { m: 2 },
        PlanVariant::WinogradNonFused { m: 4 },
        PlanVariant::WinogradFused { m: 2 },
        PlanVariant::WinogradFused { m: 6 },
    ] {
        let plan = generate_plan(&desc, variant, &CodegenOptions::default())
            .unwrap_or_else(|e| panic!("{variant:?}: {e}"));
        let out =
            execute_plan(&plan, &input, &filters).unwrap_or_else(|e| panic!("{variant:?}: {e}"));
        assert!(
            close(&out, &reference, 1e-3),
            "{variant:?} diverged from direct"
        );
    }
}

/// 5×5 convolutions — which cuDNN's fused Winograd cannot handle at
/// all — work through the full generated pipeline.
#[test]
fn five_by_five_full_pipeline() {
    let desc = ConvDesc::new(5, 1, 2, 6, 1, 14, 14, 3);
    let (input, filters) = random_case(&desc, 2);
    let reference = conv_direct_f32(&input, &filters, &desc).expect("direct runs");
    let plan = generate_plan(
        &desc,
        PlanVariant::WinogradNonFused { m: 4 },
        &CodegenOptions::default(),
    )
    .expect("F(4,5) generates");
    let out = execute_plan(&plan, &input, &filters).expect("plan executes");
    assert!(close(&out, &reference, 1e-3));
}

/// Every generated kernel's source must be placeholder-free, brace
/// balanced, and every plan must time successfully on the desktop
/// device profiles.
#[test]
fn generated_kernels_are_well_formed_and_timeable() {
    let desc = ConvDesc::new(3, 1, 1, 32, 1, 14, 14, 16);
    for variant in [
        PlanVariant::Direct,
        PlanVariant::Im2col,
        PlanVariant::WinogradNonFused { m: 6 },
        PlanVariant::WinogradFused { m: 4 },
    ] {
        let plan = generate_plan(&desc, variant, &CodegenOptions::default()).expect("generates");
        for k in &plan.kernels {
            assert!(!k.source.contains("%("), "{}: unfilled placeholder", k.name);
            assert_eq!(
                k.source.matches('{').count(),
                k.source.matches('}').count(),
                "{}: unbalanced braces",
                k.name
            );
        }
        for device in [gtx_1080_ti(), rx_580()] {
            let ms = estimate_plan_ms(&device, &plan)
                .unwrap_or_else(|e| panic!("{variant:?} on {}: {e}", device.name));
            assert!(ms.is_finite() && ms > 0.0);
        }
    }
}

/// The full user workflow of the README: graph construction, variant
/// selection, fusion, execution with Winograd engines.
#[test]
fn graph_inference_with_selected_engines() {
    let mut g = ComputeGraph::new();
    let input_node = g.add_input();
    let d1 = ConvDesc::new(3, 1, 1, 8, 1, 16, 16, 4);
    let c1 = g.add_conv(input_node, d1).expect("edge");
    let mut rng = StdRng::seed_from_u64(3);
    g.set_weights(c1, Tensor4::random(8, 4, 3, 3, -1.0, 1.0, &mut rng))
        .expect("dims");
    g.set_engine(c1, select_engine(&d1));
    let relu = g.add_relu(c1).expect("edge");
    let d2 = ConvDesc::new(5, 1, 2, 4, 1, 16, 16, 8);
    let c2 = g.add_conv(relu, d2).expect("edge");
    g.set_weights(c2, Tensor4::random(4, 8, 5, 5, -1.0, 1.0, &mut rng))
        .expect("dims");
    g.set_engine(c2, select_engine(&d2));
    assert_eq!(g.fuse_relu(), 1);

    let input = Tensor4::random(1, 4, 16, 16, -1.0, 1.0, &mut rng);
    let out = g.execute(&input).expect("graph runs");
    assert_eq!(out.dims(), (1, 4, 16, 16));

    // Same graph, all-direct engines: identical up to rounding.
    let mut gd = ComputeGraph::new();
    let i2 = gd.add_input();
    let c1d = gd.add_conv(i2, d1).expect("edge");
    let mut rng = StdRng::seed_from_u64(3);
    gd.set_weights(c1d, Tensor4::random(8, 4, 3, 3, -1.0, 1.0, &mut rng))
        .expect("dims");
    let relu_d = gd.add_relu(c1d).expect("edge");
    let c2d = gd.add_conv(relu_d, d2).expect("edge");
    gd.set_weights(c2d, Tensor4::random(4, 8, 5, 5, -1.0, 1.0, &mut rng))
        .expect("dims");
    let reference = gd.execute(&input).expect("direct graph runs");
    assert!(close(&out, &reference, 1e-3));
}

/// The tuned configuration from the auto-tuner generates, executes
/// correctly, and is at least as fast (in the model) as the defaults.
#[test]
fn tuned_configuration_round_trip() {
    let desc = ConvDesc::new(3, 1, 1, 16, 1, 14, 14, 8);
    let device = gtx_1080_ti();
    let report = tune(&desc, &device, 4).expect("tuning succeeds");
    let point = report.best.point;
    let opts = CodegenOptions {
        unroll: point.unroll,
        mnt: point.mnt,
        mnb: point.mnb,
        ..CodegenOptions::default()
    };
    let plan = generate_plan(&desc, point.variant, &opts).expect("winner regenerates");
    let default_plan = generate_plan(
        &desc,
        PlanVariant::WinogradNonFused { m: 2 },
        &CodegenOptions::default(),
    )
    .expect("default generates");
    let tuned_ms = estimate_plan_ms(&device, &plan).expect("times");
    let default_ms = estimate_plan_ms(&device, &default_plan).expect("times");
    assert!(tuned_ms <= default_ms + 1e-12);

    let (input, filters) = random_case(&desc, 4);
    let out = execute_plan(&plan, &input, &filters).expect("executes");
    let reference = conv_direct_f32(&input, &filters, &desc).expect("direct");
    assert!(close(&out, &reference, 1e-3));
}
