//! The paper's headline claims, checked as integration tests against
//! this reproduction. Each test cites the claim it verifies.

use winograd_meta::prelude::*;
use winograd_meta::transform::BaselineOps;

/// §1/§4.2: "our optimization technique can effectively exploit
/// repetitive patterns, enabling us to reduce the number of arithmetic
/// operations by up to 62%".
#[test]
fn claim_arithmetic_reduction() {
    // Dense-matmul baseline vs optimized recipes at the paper's
    // F(6,3) sweet spot.
    let spec = WinogradSpec::new(6, 3).expect("valid");
    let recipes = TransformRecipes::generate(spec, RecipeOptions::optimized()).expect("ok");
    let optimized = recipes.total_transform_ops_2d().total_unfused() as f64;
    let baseline = BaselineOps::for_spec(spec).total().total_unfused() as f64;
    let reduction = 1.0 - optimized / baseline;
    assert!(
        reduction > 0.6,
        "expected >60% total reduction vs dense baseline at alpha 8, got {:.0}%",
        reduction * 100.0
    );
}

/// §2.1: F(m, r) needs m + r − 1 multiplications instead of m · r —
/// verified on the actual element-wise stage sizes.
#[test]
fn claim_multiplication_savings() {
    let spec = WinogradSpec::new(2, 3).expect("valid");
    assert_eq!(spec.multiplications_1d(), 4); // vs 6 direct
                                              // Lavin & Gray's famous 2.25× for F(2²,3²): 36/16.
    let direct = (spec.m * spec.r) * (spec.m * spec.r);
    assert_eq!(direct as f64 / spec.multiplications_2d() as f64, 2.25);
}

/// §4.1: error rates stay below the 1e-2 threshold that previous
/// studies identify as harmless — "our generated Winograd convolutions
/// can be used during inference without experiencing any instability".
#[test]
fn claim_inference_safe_accuracy() {
    for alpha in [4usize, 8, 12, 16] {
        let spec = WinogradSpec::new(alpha - 2, 3).expect("valid");
        let stats = winograd_meta::conv::measure_conv_error(
            spec,
            &table3_points(alpha).expect("supported"),
            25,
            7,
        )
        .expect("probe runs");
        assert!(
            stats.median < 1e-2,
            "alpha {alpha}: median error {} exceeds the stability threshold",
            stats.median
        );
    }
}

/// §4.1: "we noticed that by recomputing the whole sequence of points,
/// more accurate results could be obtained" — at minimum, the selected
/// points must beat a lazy extension with large integers.
#[test]
fn claim_point_quality_matters() {
    let spec = WinogradSpec::new(6, 3).expect("valid"); // α = 8
    let good = winograd_meta::conv::measure_conv_error(
        spec,
        &table3_points(8).expect("supported"),
        25,
        11,
    )
    .expect("runs")
    .median;
    // Naive extension: 0, ±1, 2, 3, 4, 5 — big integers amplify error.
    let bad_points: Vec<Rational> = [0i64, 1, -1, 2, 3, 4, 5]
        .iter()
        .map(|&v| Rational::from_int(v))
        .collect();
    let bad = winograd_meta::conv::measure_conv_error(spec, &bad_points, 25, 11)
        .expect("runs")
        .median;
    assert!(
        bad > 3.0 * good,
        "integer points ({bad:.2e}) should be much worse than Table-3 points ({good:.2e})"
    );
}

/// §4.3 / Figure 7: the generated Winograd beats the restricted vendor
/// Winograd on small convolutions; the vendor's tuned GEMM catches up
/// on the largest ones.
#[test]
fn claim_vendor_crossover() {
    let device = gtx_1080_ti();
    let lib = cudnn();
    let small = ConvDesc::new(3, 1, 1, 128, 1, 28, 28, 96); // 1.73e8 FLOPs
    let large = ConvDesc::new(3, 1, 1, 192, 5, 56, 56, 64); // 3.47e9 FLOPs
    let mut speedups = Vec::new();
    for desc in [small, large] {
        let vendor_wg = lib
            .run(&desc, &device)
            .expect("vendor runs")
            .winograd_ms
            .expect("3x3 supported");
        let space: Vec<_> = winograd_meta::tuner::reduced_space(&desc)
            .into_iter()
            .filter(|p| p.variant.winograd_m().is_some())
            .collect();
        let ours = winograd_meta::tuner::tune_with_space(&desc, &device, 8, space)
            .expect("tunes")
            .best
            .time_ms;
        speedups.push(vendor_wg / ours);
    }
    assert!(
        speedups[0] > 1.5,
        "expected a clear win on the small conv, got {}",
        speedups[0]
    );
    assert!(
        speedups[1] < speedups[0],
        "advantage must shrink with size: {speedups:?}"
    );
}

/// §4.3 / Figure 9: auto-tuning delivers a large average speedup on
/// the mobile GPU (paper: 1.74×).
#[test]
fn claim_mobile_autotuning_speedup() {
    let device = mali_g71();
    let convs = [
        ConvDesc::new(5, 1, 2, 32, 5, 28, 28, 16),
        ConvDesc::new(3, 1, 1, 256, 1, 14, 14, 128),
        ConvDesc::new(3, 1, 1, 128, 1, 28, 28, 96),
    ];
    let mut product = 1.0f64;
    for desc in &convs {
        let untuned = winograd_meta::tuner::evaluate_untuned(desc, &device)
            .expect("reference runs")
            .time_ms;
        let tuned = winograd_meta::tuner::tune_with_space(
            desc,
            &device,
            8,
            winograd_meta::tuner::reduced_space(desc),
        )
        .expect("tunes")
        .best
        .time_ms;
        product *= untuned / tuned;
    }
    let geomean = product.powf(1.0 / convs.len() as f64);
    assert!(
        geomean > 1.3,
        "expected a strong mobile autotuning gain, got {geomean:.2}x"
    );
}

/// §3.2.2: fused kernels suit small convolutions; for large
/// configurations the shared-memory/register footprint forbids them —
/// reproduced as launch rejections on the mobile device.
#[test]
fn claim_fused_feasibility_is_bounded() {
    let device = mali_g71();
    let desc = ConvDesc::new(3, 1, 1, 64, 1, 28, 28, 32);
    // Small tile: fused launches.
    let small = generate_plan(
        &desc,
        PlanVariant::WinogradFused { m: 2 },
        &CodegenOptions::default(),
    )
    .expect("generates");
    assert!(estimate_plan_ms(&device, &small).is_ok());
    // Large tile: rejected on the mobile part (registers/shared).
    let big = generate_plan(
        &desc,
        PlanVariant::WinogradFused { m: 8 },
        &CodegenOptions::default(),
    );
    // Rejection at generation time is also acceptable.
    if let Ok(plan) = big {
        assert!(
            estimate_plan_ms(&device, &plan).is_err(),
            "F(8,3) fused should not launch on Mali"
        );
    }
}
