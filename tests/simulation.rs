//! Invariants of the simulated-GPU substrate: the device model must
//! behave like the hardware it stands in for, across all three
//! platforms and every plan variant.

use winograd_meta::gpu::{estimate_kernel, occupancy, paper_devices};
use winograd_meta::prelude::*;

fn plans_for(desc: &ConvDesc) -> Vec<winograd_meta::ir::KernelPlan> {
    [
        PlanVariant::Direct,
        PlanVariant::Im2col,
        PlanVariant::WinogradNonFused { m: 2 },
        PlanVariant::WinogradNonFused { m: 6 },
        PlanVariant::WinogradFused { m: 2 },
    ]
    .into_iter()
    .filter_map(|v| generate_plan(desc, v, &CodegenOptions::default()).ok())
    .collect()
}

/// More FLOPs at equal structure must never be faster.
#[test]
fn time_is_monotone_in_work() {
    let small = ConvDesc::new(3, 1, 1, 32, 1, 14, 14, 16);
    let big = ConvDesc::new(3, 1, 1, 128, 5, 28, 28, 64);
    for device in paper_devices() {
        let t_small = generate_plan(&small, PlanVariant::Direct, &CodegenOptions::default())
            .ok()
            .and_then(|p| estimate_plan_ms(&device, &p).ok())
            .expect("small direct plan runs");
        let t_big = generate_plan(&big, PlanVariant::Direct, &CodegenOptions::default())
            .ok()
            .and_then(|p| estimate_plan_ms(&device, &p).ok())
            .expect("big direct plan runs");
        assert!(
            t_big > t_small,
            "{}: {t_big} ms for 40x the work vs {t_small} ms",
            device.name
        );
    }
}

/// The mobile part must be slower than both desktops on every plan it
/// can launch at all.
#[test]
fn device_ordering_holds_across_variants() {
    let desc = ConvDesc::new(3, 1, 1, 64, 1, 14, 14, 32);
    let (nv, _amd, mali) = (gtx_1080_ti(), rx_580(), mali_g71());
    for plan in plans_for(&desc) {
        let t_nv = estimate_plan_ms(&nv, &plan).expect("desktop always launches");
        if let Ok(t_mali) = estimate_plan_ms(&mali, &plan) {
            assert!(
                t_mali > t_nv,
                "plan '{}': Mali {t_mali} ms vs 1080Ti {t_nv} ms",
                plan.variant
            );
        }
    }
}

/// Occupancy is a fraction, and launch rejections only ever come from
/// real resource limits.
#[test]
fn occupancy_is_well_behaved() {
    let desc = ConvDesc::new(3, 1, 1, 64, 1, 14, 14, 32);
    for device in paper_devices() {
        for plan in plans_for(&desc) {
            for k in &plan.kernels {
                match occupancy(&device, &k.launch) {
                    Ok(occ) => assert!(
                        (0.0..=1.0).contains(&occ) && occ > 0.0,
                        "{}: occupancy {occ}",
                        k.name
                    ),
                    Err(rej) => {
                        // A rejection must reference an actual limit.
                        let msg = rej.to_string();
                        assert!(
                            msg.contains("exceeds") || msg.contains("limit") || msg.contains("SM"),
                            "uninformative rejection: {msg}"
                        );
                    }
                }
            }
        }
    }
}

/// Kernel time decomposes sensibly: total ≥ launch overhead, and the
/// compute/memory split is consistent with the max() roofline.
#[test]
fn kernel_time_decomposition() {
    let desc = ConvDesc::new(3, 1, 1, 64, 1, 14, 14, 32);
    let device = gtx_1080_ti();
    for plan in plans_for(&desc) {
        for k in &plan.kernels {
            let t = estimate_kernel(&device, k).expect("desktop launches");
            assert!(t.total() >= t.launch);
            assert!(t.total() - t.launch >= t.compute.max(t.memory) - 1e-15);
            assert!(t.compute >= 0.0 && t.memory >= 0.0);
            assert!(t.occupancy > 0.0 && t.occupancy <= 1.0);
        }
    }
}

/// The functional executor and the cost model accept exactly the same
/// plans (no plan that prices successfully may fail to execute).
#[test]
fn costable_plans_are_executable() {
    use rand::SeedableRng;
    let desc = ConvDesc::new(3, 1, 1, 8, 1, 10, 10, 4);
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let input = Tensor4::random(1, 4, 10, 10, -1.0, 1.0, &mut rng);
    let filters = Tensor4::random(8, 4, 3, 3, -1.0, 1.0, &mut rng);
    let device = gtx_1080_ti();
    for plan in plans_for(&desc) {
        if estimate_plan_ms(&device, &plan).is_ok() {
            execute_plan(&plan, &input, &filters)
                .unwrap_or_else(|e| panic!("plan '{}' prices but fails: {e}", plan.variant));
        }
    }
}
